"""Command-line interface: ``python -m repro <command>``.

Every subcommand is a thin adapter over the session facade of
:mod:`repro.api`: argv is parsed into one typed request object, run
through :meth:`repro.api.Session.run`, and the result rendered —
``result.text`` for humans, the schema-versioned JSON envelope with
``--json``.  Because rendering is uniform, **every** subcommand
supports ``--json`` (bare: print the envelope to stdout; with a path:
write it next to the normal report).

Beyond the experiment registry (``repro list`` enumerates it), the
workflow commands are:

* ``repro delay`` evaluates MIS delays at explicit Δ points;
* ``repro characterize`` sweeps a gate grid through a delay engine
  and writes a serialized :class:`~repro.library.GateLibrary` JSON;
* ``repro library`` inspects (and optionally re-verifies) such a
  file;
* ``repro sta`` runs the MIS-aware static timing analyzer over a
  built-in NOR circuit (report, JSON output, corner sweeps, and the
  STA-vs-event-simulation cross-validation);
* ``repro wire`` reduces a parametric RC wire tree to analytic
  per-sink delays (:mod:`repro.wire`), sweeps R/C corner scale
  factors array-natively, and cross-validates against a transient
  SPICE simulation of the lowered tree with ``--validate``;
* ``repro stats`` runs the statistical delay workloads of
  :mod:`repro.stats`: vectorized Monte-Carlo delay sampling, the
  collocation surrogate, and Monte-Carlo timing yield — seeded, so
  results are byte-identical across processes and engine backends;
* ``repro serve`` runs the long-lived HTTP delay service
  (:mod:`repro.server`): ``POST /v1/run`` plus asynchronous batch
  jobs with a crash-safe on-disk store;
* ``repro metrics`` prints the observability instruments in
  Prometheus text format — the in-process registry, or a running
  server's ``GET /v1/metrics`` with ``--url``;
* ``repro version`` / ``repro --version`` print the package version.

Every workflow subcommand also accepts ``--trace PATH``: the run
executes under the hierarchical span tracer of :mod:`repro.obs` and
the spans are written to *PATH* as JSON lines: a backdated
``cli.startup`` root span covering interpreter + import time, plus
one ``cli.run`` root span covering the whole dispatch with
session/engine/kernel/cache children nested beneath it.

Error contract: unknown gate/engine/library/circuit names and other
bad inputs exit with status 2 and a one-line message on stderr —
never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from collections.abc import Sequence

from ._version import __version__
from .api import (CharacterizeRequest, DelayRequest, DescribeRequest,
                  ExperimentRequest, GATE_CHOICES, LibraryRequest,
                  MultiInputRequest, Request, Session, StaRequest,
                  StatsRequest, SweepRequest, TECHNOLOGIES,
                  VersionRequest, WireRequest)
from .engine import DEFAULT_ENGINE, available_engines
from .errors import ReproError
from .obs import trace as obs_trace
from .units import FF, PS

__all__ = ["main", "build_parser"]

#: Experiments whose model sweeps route through a delay engine.
_ENGINE_COMMANDS = ("fig5", "fig6", "fig8")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def _add_json_flag(cmd: argparse.ArgumentParser) -> None:
    """The uniform ``--json [PATH]`` mode every subcommand carries."""
    cmd.add_argument("--json", nargs="?", const="-", default=None,
                     metavar="PATH",
                     help="emit the result as a schema-versioned "
                          "JSON envelope: bare --json prints it to "
                          "stdout, --json PATH writes it alongside "
                          "the normal report")
    _add_trace_flag(cmd)


def _add_trace_flag(cmd: argparse.ArgumentParser) -> None:
    """The uniform ``--trace PATH`` profiling mode."""
    cmd.add_argument("--trace", default=None, metavar="PATH",
                     help="record a hierarchical span trace of this "
                          "run as JSON lines at PATH (one object per "
                          "span: name, id, parent, start, duration, "
                          "attributes)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (all subcommands)."""
    from .api import EXPERIMENT_DESCRIPTIONS, WORKFLOW_DESCRIPTIONS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'A Simple Hybrid "
                    "Model for Accurate Delay Modeling of a "
                    "Multi-Input Gate' (DATE 2022)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    cmd = sub.add_parser("list", help="list available experiments")
    _add_json_flag(cmd)

    cmd = sub.add_parser("version",
                         help=WORKFLOW_DESCRIPTIONS["version"])
    _add_json_flag(cmd)

    for name, description in EXPERIMENT_DESCRIPTIONS.items():
        cmd = sub.add_parser(name, help=description)
        _add_json_flag(cmd)
        cmd.add_argument("--tech", choices=sorted(TECHNOLOGIES),
                         default="finfet15",
                         help="technology card (analog experiments)")
        if name in _ENGINE_COMMANDS:
            cmd.add_argument("--with-analog", action="store_true",
                             help="also run the analog golden sweep "
                                  "(slower)")
            cmd.add_argument("--engine", choices=available_engines(),
                             default=DEFAULT_ENGINE,
                             help="delay evaluation backend for the "
                                  "model sweeps")
        if name == "engines":
            cmd.add_argument("--points", type=_positive_int,
                             default=4096,
                             help="Δ grid size per direction")
        if name == "library":
            cmd.add_argument("path", nargs="?", default=None,
                             help="characterized library JSON to "
                                  "inspect (omit to run the "
                                  "characterization-accuracy "
                                  "experiment)")
            cmd.add_argument("--engine", choices=available_engines(),
                             default=DEFAULT_ENGINE,
                             help="evaluation backend")
            cmd.add_argument("--cell", default=None,
                             help="restrict inspection to one cell")
            cmd.add_argument("--verify", action="store_true",
                             help="re-measure the interpolation "
                                  "error of every table against the "
                                  "engine")
        if name == "fig7":
            cmd.add_argument("--transitions", type=int, default=60,
                             help="transitions per configuration "
                                  "(paper: 500/250)")
            cmd.add_argument("--repetitions", type=int, default=2,
                             help="random repetitions (paper: 20)")
            cmd.add_argument("--seed", type=int, default=0)
        if name == "multi_input":
            cmd.add_argument("--gate", choices=GATE_CHOICES[1:],
                             default="nor3",
                             help="gate width probed (default: nor3)")
            cmd.add_argument("--engine", choices=available_engines(),
                             default=DEFAULT_ENGINE,
                             help="batched evaluation backend")
            cmd.add_argument("--points", type=_positive_int,
                             default=25,
                             help="per-axis Δ-vector grid size")

    cmd = sub.add_parser("delay", help=WORKFLOW_DESCRIPTIONS["delay"])
    _add_json_flag(cmd)
    cmd.add_argument("--delta", action="append", required=True,
                     metavar="PS[,PS...]", dest="deltas",
                     help="input separation in ps; repeatable; "
                          "comma-separate n-1 sibling offsets for "
                          "nor3/nor4 (use --delta=-10,5 when the "
                          "first offset is negative)")
    cmd.add_argument("--direction", choices=("falling", "rising"),
                     default="falling",
                     help="output transition (default: falling)")
    cmd.add_argument("--gate", choices=GATE_CHOICES, default="nor2",
                     help="gate width (default: nor2)")
    cmd.add_argument("--vn-init", type=float, default=0.0,
                     metavar="V",
                     help="initial internal-node voltage in volts "
                          "(rising direction; default 0.0)")
    cmd.add_argument("--engine", choices=available_engines(),
                     default=DEFAULT_ENGINE,
                     help="delay evaluation backend")

    cmd = sub.add_parser("characterize",
                         help=WORKFLOW_DESCRIPTIONS["characterize"])
    _add_json_flag(cmd)
    cmd.add_argument("--out", default="gate_library.json",
                     help="output JSON path (default: "
                          "gate_library.json)")
    cmd.add_argument("--gate", choices=GATE_CHOICES,
                     default="nor2",
                     help="gate width: nor2 runs the paper's four-"
                          "cell NOR2/NAND2 grid, nor3/nor4 the "
                          "n-input Δ-vector flow")
    cmd.add_argument("--engine", choices=available_engines(),
                     default=DEFAULT_ENGINE,
                     help="delay evaluation backend")
    cmd.add_argument("--tech", choices=sorted(TECHNOLOGIES),
                     default="finfet15",
                     help="technology label (and card, with --fit)")
    cmd.add_argument("--fit", action="store_true",
                     help="fit gate parameters from an analog "
                          "characterization of --tech instead of "
                          "using the paper's Table I (slower)")
    cmd.add_argument("--core-points", type=_positive_int, default=None,
                     help="uniform Δ samples across the MIS core "
                          "(defaults to the library's standard grid)")
    cmd.add_argument("--state-points", type=_positive_int, default=None,
                     help="internal-node voltage grid size (defaults "
                          "to the library's standard grid)")
    cmd.add_argument("--name", default="repro-hybrid",
                     help="library name stored in the JSON header")

    cmd = sub.add_parser("serve", help=WORKFLOW_DESCRIPTIONS["serve"])
    cmd.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    cmd.add_argument("--port", type=int, default=8080,
                     help="bind port; 0 picks a random free port "
                          "(default: 8080)")
    cmd.add_argument("--engine", choices=available_engines(),
                     default=None,
                     help="delay evaluation backend shared by every "
                          "request (default: "
                          f"{DEFAULT_ENGINE}; parallel shards heavy "
                          "requests across the shared-memory worker "
                          "pool)")
    cmd.add_argument("--tech", choices=sorted(TECHNOLOGIES),
                     default="finfet15",
                     help="technology card bound to the session")
    cmd.add_argument("--jobs-dir", default="repro_jobs",
                     metavar="DIR",
                     help="crash-safe batch-job store root; "
                          "incomplete jobs found here resume on "
                          "startup (default: repro_jobs)")
    cmd.add_argument("--run-workers", type=_positive_int, default=8,
                     metavar="N",
                     help="bound on concurrently executing /v1/run "
                          "requests (default: 8)")
    cmd.add_argument("--batch-workers", type=_positive_int, default=2,
                     metavar="N",
                     help="bound on concurrently executing batch "
                          "jobs (default: 2)")
    cmd.add_argument("--timeout", type=float, default=30.0,
                     metavar="S",
                     help="per-request service timeout of /v1/run in "
                          "seconds (default: 30)")
    cmd.add_argument("--access-log", action="store_true",
                     help="emit one structured JSON log line per "
                          "request on stderr")
    _add_trace_flag(cmd)

    cmd = sub.add_parser("metrics",
                         help=WORKFLOW_DESCRIPTIONS["metrics"])
    cmd.add_argument("--url", default=None, metavar="URL",
                     help="scrape GET /v1/metrics of a running repro "
                          "server at this base URL instead of "
                          "rendering the in-process registry")

    cmd = sub.add_parser("stats", help=WORKFLOW_DESCRIPTIONS["stats"])
    _add_json_flag(cmd)
    cmd.add_argument("--method", choices=("mc", "surrogate", "yield"),
                     default="mc",
                     help="statistical method (default: mc)")
    cmd.add_argument("--delta", action="append", default=None,
                     metavar="PS", dest="deltas", type=float,
                     help="input separation in ps, one statistics "
                          "row each; repeatable (default: 0)")
    cmd.add_argument("--samples", type=_positive_int, default=1024,
                     help="Monte-Carlo sample count / surrogate "
                          "resample count (default: 1024)")
    cmd.add_argument("--seed", type=int, default=0,
                     help="draw seed (default: 0)")
    cmd.add_argument("--sigma", action="append", default=None,
                     metavar="NAME=REL",
                     help="relative spread of one parameter, e.g. "
                          "r1=0.1; repeatable (default: all six R/C "
                          "parameters at 0.05)")
    cmd.add_argument("--distribution",
                     choices=("lognormal", "normal"),
                     default="lognormal",
                     help="marginal family (default: lognormal)")
    cmd.add_argument("--correlation", type=float, default=0.0,
                     metavar="RHO",
                     help="equicorrelation between varied "
                          "parameters, 0 <= rho < 1 (default: 0)")
    cmd.add_argument("--direction", choices=("falling", "rising"),
                     default="falling",
                     help="output transition (default: falling)")
    cmd.add_argument("--gate", choices=GATE_CHOICES, default="nor2",
                     help="gate width (default: nor2)")
    cmd.add_argument("--vn-init", type=float, default=0.0,
                     metavar="V",
                     help="initial internal-node voltage in volts "
                          "(rising direction; default 0.0)")
    cmd.add_argument("--percentile", action="append", default=None,
                     metavar="P", dest="percentiles", type=float,
                     help="reported percentile level in percent; "
                          "repeatable (default: 1, 50, 99)")
    cmd.add_argument("--bins", type=int, default=0,
                     help="histogram bins per Δ in the JSON "
                          "envelope (default: 0, disabled)")
    cmd.add_argument("--degree", type=_positive_int, default=3,
                     help="surrogate polynomial degree, 1-5 "
                          "(default: 3)")
    cmd.add_argument("--circuit", default="tree",
                     help="built-in test circuit for --method yield "
                          "(default: tree)")
    cmd.add_argument("--required", type=float, default=None,
                     metavar="PS",
                     help="endpoint requirement in ps for --method "
                          "yield (enables the yield fraction)")
    cmd.add_argument("--arrival-sigma", type=float, default=0.0,
                     metavar="PS",
                     help="Gaussian input-arrival jitter sigma in ps "
                          "for --method yield (default: 0)")
    cmd.add_argument("--per-instance", action="store_true",
                     dest="per_instance",
                     help="draw an independent parameter sample per "
                          "circuit instance for --method yield "
                          "(uncorrelated local variation; default: "
                          "one shared sample per corner)")
    cmd.add_argument("--engine", choices=available_engines(),
                     default=DEFAULT_ENGINE,
                     help="delay evaluation backend (results are "
                          "byte-identical across backends)")

    cmd = sub.add_parser("sta", help=WORKFLOW_DESCRIPTIONS["sta"])
    _add_json_flag(cmd)
    cmd.add_argument("--circuit", default="tree",
                     help="built-in test circuit (see repro.sta."
                          "STA_CIRCUITS; default: tree)")
    cmd.add_argument("--engine", default=None,
                     help="delay evaluation backend (default: "
                          f"{DEFAULT_ENGINE})")
    cmd.add_argument("--library", default=None, metavar="PATH",
                     help="characterized library JSON; gates use "
                          "table lookups instead of direct "
                          "evaluation")
    cmd.add_argument("--cell", default=None,
                     help="cell of --library to drive the gates "
                          "with (required with --library)")
    cmd.add_argument("--required", type=float, default=None,
                     metavar="PS",
                     help="endpoint required arrival time in ps "
                          "(enables slack)")
    cmd.add_argument("--top", type=_positive_int, default=3,
                     help="number of ranked critical paths "
                          "(default: 3)")
    cmd.add_argument("--corners", type=_positive_int, default=None,
                     metavar="N",
                     help="also run an N-corner vectorized sweep "
                          "(random parameter/arrival corners)")
    cmd.add_argument("--seed", type=int, default=0,
                     help="corner-sampling seed (default: 0)")
    cmd.add_argument("--validate", action="store_true",
                     help="run the STA-vs-event-simulation "
                          "cross-validation instead of a report")

    cmd = sub.add_parser("wire", help=WORKFLOW_DESCRIPTIONS["wire"])
    _add_json_flag(cmd)
    cmd.add_argument("--topology", choices=("line", "fanout"),
                     default="line",
                     help="wire tree shape (default: line)")
    cmd.add_argument("--stages", type=_positive_int, default=3,
                     help="segments per line / per fanout branch "
                          "(default: 3)")
    cmd.add_argument("--branches", type=_positive_int, default=2,
                     help="fanout branch count (default: 2)")
    cmd.add_argument("--resistance", type=float, default=2.0,
                     metavar="KOHM",
                     help="per-segment resistance in kΩ "
                          "(default: 2)")
    cmd.add_argument("--capacitance", type=float, default=0.4,
                     metavar="FF",
                     help="per-segment capacitance in fF "
                          "(default: 0.4)")
    cmd.add_argument("--sink-load", type=float, default=0.0,
                     metavar="FF",
                     help="extra lumped load per sink in fF, e.g. "
                          "the receiver's input capacitance "
                          "(default: 0)")
    cmd.add_argument("--model", choices=("elmore", "two_pole"),
                     default="two_pole",
                     help="reduced-order delay model "
                          "(default: two_pole)")
    cmd.add_argument("--corners", type=_positive_int, default=None,
                     metavar="N",
                     help="also sweep N random R/C corner scale "
                          "factors through the vectorized reduction")
    cmd.add_argument("--seed", type=int, default=0,
                     help="corner-sampling seed (default: 0)")
    cmd.add_argument("--validate", action="store_true",
                     help="lower the tree to R/C devices and "
                          "cross-validate the analytic delays "
                          "against transient SPICE")
    return parser


def _parse_delta_vectors(specs: Sequence[str]
                         ) -> tuple[tuple[float, ...], ...]:
    """``--delta`` values (ps, comma-separated) -> Δ-vectors in s."""
    vectors = []
    for spec in specs:
        try:
            vectors.append(tuple(float(part) * PS
                                 for part in spec.split(",")))
        except ValueError:
            raise ValueError(
                f"bad --delta value {spec!r}: expected ps numbers, "
                "comma-separated for sibling offsets") from None
    return tuple(vectors)


def request_from_args(args: argparse.Namespace) -> Request:
    """Map one parsed subcommand invocation to its request object."""
    command = args.command
    if command == "list":
        return DescribeRequest()
    if command == "version":
        return VersionRequest()
    if command == "delay":
        return DelayRequest(direction=args.direction,
                            deltas=_parse_delta_vectors(args.deltas),
                            gate=args.gate,
                            vn_init=args.vn_init)
    if command == "engines":
        return SweepRequest(points=args.points)
    if command == "multi_input":
        return MultiInputRequest(gate=args.gate, points=args.points)
    if command == "characterize":
        return CharacterizeRequest(gate=args.gate, fit=args.fit,
                                   core_points=args.core_points,
                                   state_points=args.state_points,
                                   library_name=args.name)
    if command == "library" and args.path is not None:
        return LibraryRequest(path=args.path, cell=args.cell,
                              verify=args.verify)
    if command == "stats":
        sigma = []
        for spec in (args.sigma or ()):
            name, separator, value = spec.partition("=")
            if not separator:
                raise ValueError(
                    f"bad --sigma value {spec!r}: expected NAME=REL, "
                    "e.g. r1=0.1")
            try:
                sigma.append((name, float(value)))
            except ValueError:
                raise ValueError(
                    f"bad --sigma value {spec!r}: {value!r} is not "
                    "a number") from None
        return StatsRequest(
            method=args.method,
            gate=args.gate,
            direction=args.direction,
            deltas=tuple(value * PS
                         for value in (args.deltas or [0.0])),
            samples=args.samples,
            seed=args.seed,
            sigma=tuple(sigma),
            distribution=args.distribution,
            correlation=args.correlation,
            vn_init=args.vn_init,
            percentiles=(tuple(args.percentiles)
                         if args.percentiles else (1.0, 50.0, 99.0)),
            bins=args.bins,
            degree=args.degree,
            circuit=args.circuit,
            required=(args.required * PS
                      if args.required is not None else None),
            arrival_sigma=args.arrival_sigma * PS,
            per_instance=args.per_instance)
    if command == "sta":
        required = (args.required * PS if args.required is not None
                    else None)
        return StaRequest(circuit=args.circuit,
                          library_path=args.library,
                          cell=args.cell,
                          required=required,
                          top=args.top,
                          corners=args.corners,
                          seed=args.seed,
                          validate=args.validate)
    if command == "wire":
        return WireRequest(topology=args.topology,
                           stages=args.stages,
                           branches=args.branches,
                           resistance=args.resistance * 1e3,
                           capacitance=args.capacitance * FF,
                           sink_load=args.sink_load * FF,
                           model=args.model,
                           corners=args.corners or 0,
                           seed=args.seed,
                           validate=args.validate)
    return ExperimentRequest(
        name=command,
        with_analog=getattr(args, "with_analog", False),
        transitions=getattr(args, "transitions", None),
        repetitions=getattr(args, "repetitions", None),
        seed=getattr(args, "seed", 0))


def _metrics_command(args: argparse.Namespace) -> int:
    """``repro metrics``: print Prometheus text exposition."""
    if args.url is None:
        from .obs import metrics as obs_metrics
        sys.stdout.write(obs_metrics.render_prometheus(
            obs_metrics.registry()))
        return 0
    import urllib.request
    url = args.url.rstrip("/") + "/v1/metrics"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            sys.stdout.write(response.read().decode("utf-8"))
    except (OSError, UnicodeDecodeError) as error:
        print(f"repro metrics: {url}: {error}", file=sys.stderr)
        return 2
    return 0


def _startup_span_bounds() -> "tuple[float, float]":
    """(wall-clock start, duration) of the process-startup phase.

    The baseline is the import-time stamp taken at the top of the
    package (numpy/scipy import dominates CLI startup); on Linux it
    is widened to the kernel's process start time from
    ``/proc/self/stat``, so interpreter bootstrap is covered too.
    """
    from . import _BOOT_T0, _BOOT_TS
    duration_s = time.perf_counter() - _BOOT_T0
    start_ts = _BOOT_TS
    try:
        with open("/proc/self/stat") as handle:
            start_ticks = float(
                handle.read().rsplit(") ", 1)[1].split()[19])
        with open("/proc/uptime") as handle:
            uptime_s = float(handle.read().split()[0])
        ticks_per_s = os.sysconf("SC_CLK_TCK")
        since_exec = uptime_s - start_ticks / ticks_per_s
    except (OSError, ValueError, IndexError):
        return start_ts, duration_s
    if duration_s < since_exec < duration_s + 60.0:
        start_ts -= since_exec - duration_s
        duration_s = since_exec
    return start_ts, duration_s


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Bad inputs (unknown gate/engine/library/circuit names, malformed
    values) exit with status 2 and a one-line message on stderr.
    With ``--trace PATH`` the whole dispatch runs under a ``cli.run``
    root span and the span records are written to *PATH* as JSON
    lines before exit.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_spec = getattr(args, "trace", None)
    if trace_spec is None:
        return _execute(args)
    tracer = obs_trace.configure(trace_spec)
    try:
        if tracer is not None:
            # Backdate a root span over interpreter bootstrap and
            # package import, so the trace accounts for the whole
            # process wall time rather than just post-parse work.
            start_ts, duration_s = _startup_span_bounds()
            tracer.record("cli.startup", start_ts, duration_s)
        with obs_trace.span("cli.run", command=args.command):
            code = _execute(args)
        tracer = obs_trace.active_tracer()
        if tracer is not None:
            tracer.flush()
            if tracer.sink is not None:
                print(f"repro: wrote trace spans to {tracer.sink}",
                      file=sys.stderr)
        return code
    finally:
        obs_trace.unconfigure()


def _execute(args: argparse.Namespace) -> int:
    """Run one parsed subcommand (the body of :func:`main`)."""
    if args.command == "metrics":
        return _metrics_command(args)
    if args.command == "serve":
        from .server import serve
        try:
            return serve(host=args.host, port=args.port,
                         tech=args.tech, engine=args.engine,
                         job_dir=args.jobs_dir,
                         run_workers=args.run_workers,
                         batch_workers=args.batch_workers,
                         request_timeout=args.timeout,
                         log_stream=(sys.stderr if args.access_log
                                     else None))
        except (ReproError, ValueError) as error:
            print(f"repro serve: {error}", file=sys.stderr)
            return 2
    json_spec = getattr(args, "json", None)
    try:
        session = Session(tech=getattr(args, "tech", "finfet15"),
                          engine=getattr(args, "engine", None))
        request = request_from_args(args)
        result = session.run(request)
        extra_lines = []
        if args.command == "characterize":
            from .library import GateLibrary
            out = GateLibrary.from_dict(result.library).save(args.out)
            extra_lines.append(f"wrote {out}")
        if json_spec not in (None, "-"):
            with open(json_spec, "w") as handle:
                handle.write(result.to_json(indent=2) + "\n")
            extra_lines.append(f"wrote {json_spec}")
    except (ReproError, ValueError) as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    if json_spec == "-":
        print(result.to_json(indent=2))
        # Keep stdout pure JSON; file-write notices (e.g. the
        # characterize --out library) go to stderr.
        for line in extra_lines:
            print(line, file=sys.stderr)
        return 0
    print("\n".join([result.text, *extra_lines]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
