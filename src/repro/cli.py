"""Command-line interface: ``python -m repro <experiment>``.

Runs one of the paper's experiments and prints its rendered rows.
``python -m repro list`` enumerates the registry.  Beyond the
experiments, three workflow commands exist:

* ``repro characterize`` sweeps a gate grid through a delay engine
  and writes a serialized :class:`~repro.library.GateLibrary` JSON;
* ``repro library`` inspects (and optionally re-verifies) such a
  file;
* ``repro sta`` runs the MIS-aware static timing analyzer over a
  built-in NOR circuit (report, JSON output, corner sweeps, and the
  STA-vs-event-simulation cross-validation).

Error contract: unknown gate/engine/library/circuit names and other
bad inputs exit with a non-zero status and a one-line message on
stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis import experiments as exp
from .engine import DEFAULT_ENGINE, available_engines
from .errors import ReproError
from .spice.technology import BULK65, FINFET15, TechnologyCard

__all__ = ["main", "build_parser"]

_TECH_CARDS: dict[str, TechnologyCard] = {
    "finfet15": FINFET15,
    "bulk65": BULK65,
}

_DESCRIPTIONS = {
    "fig2": "analog MIS characterization (delay vs input separation)",
    "fig4": "mode-system trajectories",
    "fig5": "model vs analog falling MIS delays",
    "fig6": "model rising MIS delays for VN in {GND, VDD/2, VDD}",
    "fig7": "normalized deviation areas on random traces",
    "fig8": "falling matching with/without the pure delay",
    "table1": "least-squares parametrization (Table I)",
    "analytic": "eqs. (8)-(12) vs exact crossings",
    "engines": "delay-engine backends: parity and sweep throughput",
    "library": "batch library characterization accuracy",
    "multi_input": "n-input NOR generalization: Δ-vector batch vs "
                   "scalar, n=2 reduction",
    "runtime": "digital-simulation runtime comparison",
    "faithfulness": "short-pulse filtration probe",
}

#: Gate widths ``repro characterize --gate`` / ``multi_input --gate``
#: accept (the n-input flow covers NOR3/NOR4; ``nor2`` runs the
#: paper's four-cell grid).
_GATE_CHOICES = ("nor2", "nor3", "nor4")

#: Non-experiment workflow commands listed by ``repro list``.
_WORKFLOWS = {
    "characterize": "characterize a gate library into a JSON file",
    "library": "inspect / verify a characterized library JSON "
               "(with a path)",
    "sta": "MIS-aware static timing analysis (report, corner "
           "sweeps, cross-validation)",
}

#: Experiments whose model sweeps route through a delay engine.
_ENGINE_COMMANDS = ("fig5", "fig6", "fig8")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'A Simple Hybrid "
                    "Model for Accurate Delay Modeling of a "
                    "Multi-Input Gate' (DATE 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for name, description in _DESCRIPTIONS.items():
        cmd = sub.add_parser(name, help=description)
        cmd.add_argument("--tech", choices=sorted(_TECH_CARDS),
                         default="finfet15",
                         help="technology card (analog experiments)")
        if name in _ENGINE_COMMANDS:
            cmd.add_argument("--with-analog", action="store_true",
                             help="also run the analog golden sweep "
                                  "(slower)")
            cmd.add_argument("--engine", choices=available_engines(),
                             default=DEFAULT_ENGINE,
                             help="delay evaluation backend for the "
                                  "model sweeps")
        if name == "engines":
            cmd.add_argument("--points", type=_positive_int,
                             default=4096,
                             help="Δ grid size per direction")
        if name == "library":
            cmd.add_argument("path", nargs="?", default=None,
                             help="characterized library JSON to "
                                  "inspect (omit to run the "
                                  "characterization-accuracy "
                                  "experiment)")
            cmd.add_argument("--engine", choices=available_engines(),
                             default=DEFAULT_ENGINE,
                             help="evaluation backend")
            cmd.add_argument("--cell", default=None,
                             help="restrict inspection to one cell")
            cmd.add_argument("--verify", action="store_true",
                             help="re-measure the interpolation "
                                  "error of every table against the "
                                  "engine")
        if name == "fig7":
            cmd.add_argument("--transitions", type=int, default=60,
                             help="transitions per configuration "
                                  "(paper: 500/250)")
            cmd.add_argument("--repetitions", type=int, default=2,
                             help="random repetitions (paper: 20)")
            cmd.add_argument("--seed", type=int, default=0)
        if name == "multi_input":
            cmd.add_argument("--gate", choices=_GATE_CHOICES[1:],
                             default="nor3",
                             help="gate width probed (default: nor3)")
            cmd.add_argument("--engine", choices=available_engines(),
                             default=DEFAULT_ENGINE,
                             help="batched evaluation backend")
            cmd.add_argument("--points", type=_positive_int,
                             default=25,
                             help="per-axis Δ-vector grid size")

    cmd = sub.add_parser("characterize",
                         help=_WORKFLOWS["characterize"])
    cmd.add_argument("--out", default="gate_library.json",
                     help="output JSON path (default: "
                          "gate_library.json)")
    cmd.add_argument("--gate", choices=_GATE_CHOICES,
                     default="nor2",
                     help="gate width: nor2 runs the paper's four-"
                          "cell NOR2/NAND2 grid, nor3/nor4 the "
                          "n-input Δ-vector flow")
    cmd.add_argument("--engine", choices=available_engines(),
                     default=DEFAULT_ENGINE,
                     help="delay evaluation backend")
    cmd.add_argument("--tech", choices=sorted(_TECH_CARDS),
                     default="finfet15",
                     help="technology label (and card, with --fit)")
    cmd.add_argument("--fit", action="store_true",
                     help="fit gate parameters from an analog "
                          "characterization of --tech instead of "
                          "using the paper's Table I (slower)")
    cmd.add_argument("--core-points", type=_positive_int, default=None,
                     help="uniform Δ samples across the MIS core "
                          "(defaults to the library's standard grid)")
    cmd.add_argument("--state-points", type=_positive_int, default=None,
                     help="internal-node voltage grid size (defaults "
                          "to the library's standard grid)")
    cmd.add_argument("--name", default="repro-hybrid",
                     help="library name stored in the JSON header")

    cmd = sub.add_parser("sta", help=_WORKFLOWS["sta"])
    cmd.add_argument("--circuit", default="tree",
                     help="built-in test circuit (see repro.sta."
                          "STA_CIRCUITS; default: tree)")
    cmd.add_argument("--engine", default=None,
                     help="delay evaluation backend (default: "
                          f"{DEFAULT_ENGINE})")
    cmd.add_argument("--library", default=None, metavar="PATH",
                     help="characterized library JSON; gates use "
                          "table lookups instead of direct "
                          "evaluation")
    cmd.add_argument("--cell", default=None,
                     help="cell of --library to drive the gates "
                          "with (required with --library)")
    cmd.add_argument("--required", type=float, default=None,
                     metavar="PS",
                     help="endpoint required arrival time in ps "
                          "(enables slack)")
    cmd.add_argument("--top", type=_positive_int, default=3,
                     help="number of ranked critical paths "
                          "(default: 3)")
    cmd.add_argument("--corners", type=_positive_int, default=None,
                     metavar="N",
                     help="also run an N-corner vectorized sweep "
                          "(random parameter/arrival corners)")
    cmd.add_argument("--seed", type=int, default=0,
                     help="corner-sampling seed (default: 0)")
    cmd.add_argument("--json", default=None, metavar="PATH",
                     help="write the full result as JSON")
    cmd.add_argument("--validate", action="store_true",
                     help="run the STA-vs-event-simulation "
                          "cross-validation instead of a report")
    return parser


def _run_characterize(args: argparse.Namespace) -> str:
    """Build, verify and save a gate library (``repro characterize``)."""
    import dataclasses

    from .core.multi_input import paper_generalized
    from .core.parameters import PAPER_TABLE_I
    from .library import (characterize_library, default_delta_grid,
                          default_state_grid,
                          default_vector_delta_grid, generalized_jobs,
                          paper_jobs, verify_table)
    from .library.characterize import (DEFAULT_CORE_POINTS,
                                       DEFAULT_STATE_POINTS,
                                       DEFAULT_VECTOR_CORE_POINTS)
    from .units import to_ps

    if args.fit:
        from .analysis.characterization import characterize_nor
        from .analysis.fitting import fit_from_characterization
        tech = _TECH_CARDS[args.tech]
        params = fit_from_characterization(
            characterize_nor(tech)).params
        suffix = args.tech
    else:
        params, suffix = PAPER_TABLE_I, "paper"
    if args.gate != "nor2":
        if args.state_points is not None:
            raise ValueError(
                f"--state-points applies to the 2-input grid; "
                f"{args.gate} surfaces record one worst-case chain "
                "state")
        num_inputs = int(args.gate[len("nor"):])
        wide = paper_generalized(num_inputs, params)
        jobs = generalized_jobs(num_inputs, wide,
                                technology=args.tech, suffix=suffix)
        if args.core_points is not None:
            deltas = tuple(default_vector_delta_grid(
                wide, core_points=args.core_points))
            jobs = tuple(dataclasses.replace(job, deltas=deltas)
                         for job in jobs)
    else:
        jobs = paper_jobs(params, technology=args.tech, suffix=suffix)
        if (args.core_points is not None
                or args.state_points is not None):
            deltas = tuple(default_delta_grid(
                params,
                core_points=args.core_points or DEFAULT_CORE_POINTS))
            states = tuple(default_state_grid(
                params,
                points=args.state_points or DEFAULT_STATE_POINTS))
            jobs = tuple(dataclasses.replace(job, deltas=deltas,
                                             state_grid=states)
                         for job in jobs)

    library = characterize_library(jobs, engine=args.engine,
                                   name=args.name)
    path = library.save(args.out)
    lines = [f"characterized {len(library)} cells via "
             f"'{args.engine}':"]
    worst = 0.0
    for cell in library.cells:
        accuracy = verify_table(library[cell], engine=args.engine)
        worst = max(worst, accuracy.max_error)
        lines.append(f"  {library[cell].describe()}")
        lines.append(f"    interpolation error: falling "
                     f"{to_ps(accuracy.falling_error) * 1000.0:.2f} "
                     f"fs, rising "
                     f"{to_ps(accuracy.rising_error) * 1000.0:.2f} fs")
    if args.gate == "nor2":
        lines.append(f"worst interpolation error "
                     f"{to_ps(worst) * 1000.0:.2f} fs "
                     "(acceptance: <= 100 fs)")
    else:
        lines.append(f"worst interpolation error "
                     f"{to_ps(worst) * 1000.0:.2f} fs "
                     "(multilinear on the tensor grid; raise "
                     "--core-points to tighten)")
    lines.append(f"wrote {path}")
    return "\n".join(lines)


def _run_library(args: argparse.Namespace) -> str:
    """Inspect/verify a library JSON (``repro library <path>``)."""
    import json

    from .errors import ParameterError
    from .library import GateLibrary, verify_table
    from .units import to_ps

    try:
        library = GateLibrary.load(args.path)
    except FileNotFoundError:
        raise ValueError(f"no such file: {args.path}") from None
    except (ParameterError, json.JSONDecodeError) as error:
        raise ValueError(
            f"cannot read {args.path}: {error}") from None
    lines = [f"library '{library.name}' "
             f"({len(library)} cells)"]
    if library.description:
        lines.append(f"  {library.description}")
    cells = [args.cell] if args.cell else list(library.cells)
    for cell in cells:
        try:
            table = library[cell]
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        lines.append(f"  {table.describe()}")
        if args.cell:
            from .library import VectorDelaySurface
            if isinstance(table.falling, VectorDelaySurface):
                zero = [0.0] * table.falling.num_siblings
                for direction in ("falling", "rising"):
                    surface = getattr(table, direction)
                    lo, hi = surface.delta_ranges[0]
                    lines.append(
                        f"    {direction}: {surface.num_siblings}-D "
                        f"Δ-vector surface, axes "
                        f"[{to_ps(lo):.0f}, {to_ps(hi):.0f}] ps, "
                        f"δ(0) {to_ps(surface.delay_at(zero)):.2f} "
                        f"ps")
            else:
                fall = table.falling.characteristic()
                rise = table.rising.characteristic()
                lines.append("    " + fall.describe("delta_fall"))
                lines.append("    " + rise.describe("delta_rise"))
            lines.append(f"    characterized by engine "
                         f"'{table.engine}'")
        if args.verify:
            accuracy = verify_table(table, engine=args.engine)
            lines.append(
                f"    verify vs '{args.engine}': max "
                f"{to_ps(accuracy.max_error) * 1000.0:.2f} fs")
    return "\n".join(lines)


def _run_sta(args: argparse.Namespace) -> str:
    """MIS-aware static timing analysis (``repro sta``)."""
    import json

    from .engine import get_engine
    from .sta import (TableArcModel, analyze, build_timing_graph,
                      demo_corners, render_report,
                      render_sweep_summary, result_to_json,
                      sta_circuit, sweep_corners)
    from .units import PS

    if args.validate:
        return exp.experiment_sta(engine=args.engine).text

    engine = get_engine(args.engine)  # fail fast on unknown names
    circuit = sta_circuit(args.circuit)
    models = None
    if args.library is not None:
        from .errors import ParameterError
        from .library import GateLibrary
        if args.cell is None:
            raise ValueError("--library needs --cell to pick the "
                             "table driving the gates")
        try:
            library = GateLibrary.load(args.library)
        except FileNotFoundError:
            raise ValueError(
                f"no such file: {args.library}") from None
        except (ParameterError, json.JSONDecodeError) as error:
            raise ValueError(
                f"cannot read {args.library}: {error}") from None
        try:
            table = library[args.cell]
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        models = {instance.name: TableArcModel(table)
                  for instance in circuit.instances}
    graph = build_timing_graph(circuit, models=models, engine=engine)
    required = (args.required * PS if args.required is not None
                else None)
    result = analyze(graph, required=required, top_paths=args.top)
    lines = [render_report(result,
                           title=f"STA report: circuit "
                                 f"'{args.circuit}' via "
                                 f"'{engine.name}'")]
    sweep = None
    if args.corners is not None:
        params_axis, corner_arrivals = demo_corners(
            args.corners, [graph.inputs[0]], seed=args.seed)
        if models is not None:
            # Table arcs are characterized for one parameter set;
            # sweep only the arrival axis for library-backed runs.
            params_axis = None
        sweep = sweep_corners(graph, params=params_axis,
                              arrivals=corner_arrivals,
                              required=required)
        lines.append("")
        lines.append(render_sweep_summary(sweep))
    if args.json is not None:
        payload = result_to_json(result, sweep)
        with open(args.json, "w") as handle:
            # allow_nan=False: the payload must stay strict-JSON
            # (non-finite times are serialized as null upstream).
            json.dump(payload, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        lines.append(f"wrote {args.json}")
    return "\n".join(lines)


def _run_experiment(args: argparse.Namespace) -> str:
    tech = _TECH_CARDS[getattr(args, "tech", "finfet15")]
    name = args.command
    if name == "characterize":
        return _run_characterize(args)
    if name == "sta":
        return _run_sta(args)
    if name == "library":
        if args.path is not None:
            return _run_library(args)
        return exp.experiment_library(engine=args.engine).text
    if name == "fig2":
        return exp.experiment_fig2(tech).text
    if name == "fig4":
        return exp.experiment_fig4().text
    if name in _ENGINE_COMMANDS:
        characterization = (exp.characterize_nor(tech)
                            if args.with_analog else None)
        runner = {"fig5": exp.experiment_fig5,
                  "fig6": exp.experiment_fig6,
                  "fig8": exp.experiment_fig8}[name]
        return runner(characterization=characterization,
                      engine=args.engine).text
    if name == "engines":
        return exp.experiment_engines(points=args.points).text
    if name == "multi_input":
        return exp.experiment_multi_input(
            num_inputs=int(args.gate[len("nor"):]),
            grid_points=args.points, engine=args.engine).text
    if name == "fig7":
        return exp.experiment_fig7(tech,
                                   transitions=args.transitions,
                                   repetitions=args.repetitions,
                                   seed=args.seed).text
    if name == "table1":
        return exp.experiment_table1().text
    if name == "analytic":
        return exp.experiment_analytic().text
    if name == "runtime":
        return exp.experiment_runtime(tech).text
    if name == "faithfulness":
        return exp.experiment_faithfulness().text
    raise SystemExit(f"unknown experiment {name!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Bad inputs (unknown gate/engine/library/circuit names, malformed
    values) exit with status 2 and a one-line message on stderr.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        entries = dict(_DESCRIPTIONS)
        entries["characterize"] = _WORKFLOWS["characterize"]
        entries["library"] = (_DESCRIPTIONS["library"] + "; "
                              + _WORKFLOWS["library"])
        entries["sta"] = _WORKFLOWS["sta"]
        width = max(len(name) for name in entries)
        for name, description in entries.items():
            print(f"{name:<{width}}  {description}")
        return 0
    try:
        print(_run_experiment(args))
    except (ReproError, ValueError) as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
