"""Command-line interface: ``python -m repro <experiment>``.

Runs one of the paper's experiments and prints its rendered rows.
``python -m repro list`` enumerates the registry.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis import experiments as exp
from .engine import DEFAULT_ENGINE, available_engines
from .spice.technology import BULK65, FINFET15, TechnologyCard

__all__ = ["main", "build_parser"]

_TECH_CARDS: dict[str, TechnologyCard] = {
    "finfet15": FINFET15,
    "bulk65": BULK65,
}

_DESCRIPTIONS = {
    "fig2": "analog MIS characterization (delay vs input separation)",
    "fig4": "mode-system trajectories",
    "fig5": "model vs analog falling MIS delays",
    "fig6": "model rising MIS delays for VN in {GND, VDD/2, VDD}",
    "fig7": "normalized deviation areas on random traces",
    "fig8": "falling matching with/without the pure delay",
    "table1": "least-squares parametrization (Table I)",
    "analytic": "eqs. (8)-(12) vs exact crossings",
    "engines": "delay-engine backends: parity and sweep throughput",
    "runtime": "digital-simulation runtime comparison",
    "faithfulness": "short-pulse filtration probe",
}

#: Experiments whose model sweeps route through a delay engine.
_ENGINE_COMMANDS = ("fig5", "fig6", "fig8")


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'A Simple Hybrid "
                    "Model for Accurate Delay Modeling of a "
                    "Multi-Input Gate' (DATE 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for name, description in _DESCRIPTIONS.items():
        cmd = sub.add_parser(name, help=description)
        cmd.add_argument("--tech", choices=sorted(_TECH_CARDS),
                         default="finfet15",
                         help="technology card (analog experiments)")
        if name in _ENGINE_COMMANDS:
            cmd.add_argument("--with-analog", action="store_true",
                             help="also run the analog golden sweep "
                                  "(slower)")
            cmd.add_argument("--engine", choices=available_engines(),
                             default=DEFAULT_ENGINE,
                             help="delay evaluation backend for the "
                                  "model sweeps")
        if name == "engines":
            cmd.add_argument("--points", type=_positive_int,
                             default=4096,
                             help="Δ grid size per direction")
        if name == "fig7":
            cmd.add_argument("--transitions", type=int, default=60,
                             help="transitions per configuration "
                                  "(paper: 500/250)")
            cmd.add_argument("--repetitions", type=int, default=2,
                             help="random repetitions (paper: 20)")
            cmd.add_argument("--seed", type=int, default=0)
    return parser


def _run_experiment(args: argparse.Namespace) -> str:
    tech = _TECH_CARDS[getattr(args, "tech", "finfet15")]
    name = args.command
    if name == "fig2":
        return exp.experiment_fig2(tech).text
    if name == "fig4":
        return exp.experiment_fig4().text
    if name in _ENGINE_COMMANDS:
        characterization = (exp.characterize_nor(tech)
                            if args.with_analog else None)
        runner = {"fig5": exp.experiment_fig5,
                  "fig6": exp.experiment_fig6,
                  "fig8": exp.experiment_fig8}[name]
        return runner(characterization=characterization,
                      engine=args.engine).text
    if name == "engines":
        return exp.experiment_engines(points=args.points).text
    if name == "fig7":
        return exp.experiment_fig7(tech,
                                   transitions=args.transitions,
                                   repetitions=args.repetitions,
                                   seed=args.seed).text
    if name == "table1":
        return exp.experiment_table1().text
    if name == "analytic":
        return exp.experiment_analytic().text
    if name == "runtime":
        return exp.experiment_runtime(tech).text
    if name == "faithfulness":
        return exp.experiment_faithfulness().text
    raise SystemExit(f"unknown experiment {name!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in _DESCRIPTIONS)
        for name, description in _DESCRIPTIONS.items():
            print(f"{name:<{width}}  {description}")
        return 0
    print(_run_experiment(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
