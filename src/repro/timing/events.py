"""Event queue for the discrete-event timing simulator.

A thin, deterministic wrapper around :mod:`heapq`: events carry a
monotonically increasing sequence number so simultaneous events fire in
scheduling order, and cancellation is handled with the standard
tombstone technique (events are flagged and skipped at pop time — the
pattern every event-driven circuit simulator uses for transaction
preemption).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from collections.abc import Callable

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclasses.dataclass(order=False)
class Event:
    """A scheduled callback.

    Attributes:
        time: firing time, seconds.
        seq: tie-breaking sequence number (scheduling order).
        action: callable invoked with the firing time.
        cancelled: tombstone flag; cancelled events are skipped.
    """

    time: float
    seq: int
    action: Callable[[float], None]
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event as cancelled (O(1), lazily removed)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """A time-ordered queue of cancellable events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, time: float,
                 action: Callable[[float], None]) -> Event:
        """Schedule *action* at *time* and return a cancellable handle.

        Scheduling into the past (before the last popped event) is an
        error — it would violate causality.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time "
                f"{self._now}")
        event = Event(time=float(time), seq=next(self._counter),
                      action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the next live event (None when empty)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            return event
        return None

    def run_until(self, t_stop: float,
                  max_events: int | None = None) -> int:
        """Fire events up to and including ``t_stop``.

        Args:
            t_stop: simulation end time.
            max_events: safety valve against runaway oscillation.

        Returns:
            The number of events fired.
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > t_stop:
                break
            event = self.pop()
            if event is None:  # pragma: no cover - race-free here
                break
            event.action(event.time)
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events "
                    f"before t = {t_stop}); oscillating circuit?")
        return fired
