"""Digital timing simulation (the Involution Tool's core loop).

For feed-forward circuits the exact simulation is a topological sweep:
compute each gate's zero-time output trace from its (already computed)
input traces, then push it through the gate's delay channel.  Hybrid
two-input instances transform their input traces directly.

This mirrors what the Involution Tool does inside QuestaSim, minus the
VHDL/FLI plumbing — see DESIGN.md §2.
"""

from __future__ import annotations

from ..errors import NetlistError
from .channels.base import SingleInputChannel
from .circuit import (GateInstance, HybridInstance,
                      MultiInputInstance, TimingCircuit)
from .gates import zero_time_gate
from .trace import DigitalTrace

__all__ = ["simulate", "simulate_single_channel"]


def simulate(circuit: TimingCircuit,
             input_traces: dict[str, DigitalTrace]
             ) -> dict[str, DigitalTrace]:
    """Simulate a timing circuit.

    Args:
        circuit: the gate/channel netlist.
        input_traces: one :class:`DigitalTrace` per primary input.

    Returns:
        A mapping signal name -> trace for *all* signals (inputs
        included).
    """
    missing = [name for name in circuit.inputs if name not in input_traces]
    if missing:
        raise NetlistError(f"missing input traces for {missing}")
    extra = [name for name in input_traces if name not in circuit.inputs]
    if extra:
        raise NetlistError(f"traces given for non-input signals {extra}")

    traces: dict[str, DigitalTrace] = dict(input_traces)
    for instance in circuit.topological_order():
        if isinstance(instance, (HybridInstance, MultiInputInstance)):
            traces[instance.output] = instance.channel.simulate(
                *(traces[name] for name in instance.inputs))
        else:
            gate_out = zero_time_gate(
                instance.function,
                [traces[name] for name in instance.inputs])
            traces[instance.output] = instance.channel.apply(gate_out)
    return traces


def simulate_single_channel(channel: SingleInputChannel,
                            trace: DigitalTrace) -> DigitalTrace:
    """Convenience wrapper: one channel, one trace."""
    return channel.apply(trace)
