"""Digitization of analog waveforms (the Involution Tool's front-end).

The paper compares digital delay models against *digitized* SPICE
traces: the analog output is reduced to the times it crosses
``Vth = VDD/2``.  :func:`digitize` performs this reduction, with an
optional hysteresis band to suppress chattering on noisy waveforms.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from ..spice.transient import TransientResult
from .trace import DigitalTrace

__all__ = ["digitize", "digitize_result"]


def digitize(times, volts, threshold: float,
             hysteresis: float = 0.0) -> DigitalTrace:
    """Reduce an analog waveform to a digital trace.

    Args:
        times: sample times, strictly increasing.
        volts: voltages at the sample times.
        threshold: logic threshold (``VDD/2``).
        hysteresis: full width of the hysteresis band; a transition to 1
            requires crossing ``threshold + hysteresis/2``, a transition
            to 0 crossing ``threshold − hysteresis/2``.  Zero gives
            plain threshold crossings.

    Returns:
        The digitized :class:`DigitalTrace`; crossing times are linearly
        interpolated between samples.
    """
    times = np.asarray(times, dtype=float)
    volts = np.asarray(volts, dtype=float)
    if times.shape != volts.shape or times.ndim != 1:
        raise TraceError("times and volts must be 1-D arrays of equal "
                         "length")
    if times.size == 0:
        raise TraceError("cannot digitize an empty waveform")
    if hysteresis < 0.0:
        raise TraceError("hysteresis must be non-negative")

    high = threshold + hysteresis / 2.0
    low = threshold - hysteresis / 2.0
    state = 1 if volts[0] >= threshold else 0
    initial = state
    transitions: list[tuple[float, int]] = []
    for i in range(times.size - 1):
        v0, v1 = volts[i], volts[i + 1]
        if state == 0 and v1 >= high and v0 < high:
            t = times[i] + (high - v0) / (v1 - v0) * (times[i + 1]
                                                      - times[i])
            state = 1
            transitions.append((float(t), 1))
        elif state == 1 and v1 <= low and v0 > low:
            t = times[i] + (low - v0) / (v1 - v0) * (times[i + 1]
                                                     - times[i])
            state = 0
            transitions.append((float(t), 0))
    # Guard against numerically coincident crossing times.
    cleaned: list[tuple[float, int]] = []
    for t, v in transitions:
        if cleaned and t <= cleaned[-1][0]:
            t = np.nextafter(cleaned[-1][0], np.inf)
        cleaned.append((t, v))
    return DigitalTrace(initial, cleaned)


def digitize_result(result: TransientResult, node: str,
                    threshold: float,
                    hysteresis: float = 0.0) -> DigitalTrace:
    """Digitize one node of a transient simulation result."""
    return digitize(result.times, result.voltage(node), threshold,
                    hysteresis)
