"""Digital timing framework (the Involution Tool substitute).

Traces, digitization, deviation-area metrics, delay channels, random
trace generation and the topological timing simulator — see DESIGN.md §2
for the mapping to the paper's toolchain.

The runtime/accuracy experiments that exercise these channels are
reachable through the session facade
(:class:`repro.api.Session` running ``ExperimentRequest("runtime")``
/ ``ExperimentRequest("fig7")``) as well as directly.
"""

from .channels import (
    Channel,
    ExpChannel,
    HybridNorChannel,
    InertialDelayChannel,
    PureDelayChannel,
    SingleInputChannel,
    SumExpChannel,
    TableDelayChannel,
    WaveformChannel,
)
from .circuit import (GateInstance, HybridInstance,
                      MultiInputInstance, TimingCircuit,
                      WireInstance)
from .digitize import digitize, digitize_result
from .event_simulator import EventDrivenSimulator, simulate_events
from .events import Event, EventQueue
from .power import (PowerReport, dynamic_energy, glitch_count,
                    power_report, transition_count,
                    transition_count_error)
from .gates import GATE_FUNCTIONS, gate_function, zero_time_gate
from .metrics import AccuracyReport, deviation_area, normalized_deviation
from .simulator import simulate, simulate_single_channel
from .trace import DigitalTrace
from .tracegen import PAPER_CONFIGS, WaveformConfig, generate_traces

__all__ = [
    "AccuracyReport",
    "Channel",
    "DigitalTrace",
    "Event",
    "EventDrivenSimulator",
    "EventQueue",
    "ExpChannel",
    "GATE_FUNCTIONS",
    "GateInstance",
    "HybridInstance",
    "HybridNorChannel",
    "InertialDelayChannel",
    "MultiInputInstance",
    "PAPER_CONFIGS",
    "PowerReport",
    "PureDelayChannel",
    "SingleInputChannel",
    "SumExpChannel",
    "TableDelayChannel",
    "TimingCircuit",
    "WaveformChannel",
    "WaveformConfig",
    "WireInstance",
    "deviation_area",
    "digitize",
    "digitize_result",
    "gate_function",
    "generate_traces",
    "dynamic_energy",
    "glitch_count",
    "normalized_deviation",
    "power_report",
    "simulate",
    "simulate_events",
    "transition_count",
    "transition_count_error",
    "simulate_single_channel",
    "zero_time_gate",
]
