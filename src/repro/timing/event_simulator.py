"""Discrete-event timing simulation (feedback-capable engine).

The topological engine of :mod:`repro.timing.simulator` computes whole
traces gate by gate — exact and fast, but restricted to feed-forward
circuits.  This module provides the general engine: a classic
discrete-event loop with cancellable scheduled transitions, equivalent
to what the Involution Tool runs inside QuestaSim.  It handles

* arbitrary circuit graphs, including feedback (SR latches built from
  two cross-coupled hybrid NOR channels, ring oscillators, ...);
* the same channel semantics as the trace-transform engine — the
  equivalence on feed-forward circuits is part of the test-suite;
* the hybrid NOR channel as a true hybrid automaton: the continuous
  state ``(V_N, V_O)`` advances between (δ_min-deferred) mode-switch
  events, and scheduled output crossings are cancelled and recomputed
  whenever a new switch arrives first.
"""

from __future__ import annotations

import math

from ..core.modes import Mode
from ..core.solutions import ModeSolution, solve_mode
from ..core.trajectory import all_crossings
from ..errors import SimulationError
from .channels.base import SingleInputChannel
from .circuit import (GateInstance, HybridInstance,
                      MultiInputInstance, TimingCircuit)
from .events import EventQueue
from .trace import DigitalTrace

__all__ = ["EventDrivenSimulator", "simulate_events"]

#: Default cap on fired events per run (guards against oscillators
#: driven far beyond their period count).
DEFAULT_MAX_EVENTS = 1_000_000


class _SignalState:
    """Current value and recorded transition history of one signal."""

    __slots__ = ("value", "history", "consumers")

    def __init__(self, value: int):
        self.value = int(value)
        self.history: list[tuple[float, int]] = []
        self.consumers: list[object] = []


class _ChannelRuntime:
    """Incremental (event-by-event) execution of a single-input channel.

    Reimplements exactly the scheduling semantics of
    :meth:`SingleInputChannel.apply`, but with future output transitions
    as cancellable events.
    """

    def __init__(self, simulator: "EventDrivenSimulator",
                 instance: GateInstance):
        self.simulator = simulator
        self.instance = instance
        self.channel: SingleInputChannel = instance.channel
        self.gate_value: int | None = None
        #: pending (time, value, event) output transitions.
        self.pending: list[tuple[float, int, object]] = []
        self.last_output_time = -math.inf
        self.drop_next = False

    def initialize(self, value: int) -> None:
        self.gate_value = value

    def on_gate_value(self, time: float, value: int) -> None:
        """The zero-time gate output switched to *value* at *time*."""
        if value == self.gate_value:
            return
        self.gate_value = value
        if self.drop_next:
            self.drop_next = False
            return
        last_time = (self.pending[-1][0] if self.pending
                     else self.last_output_time)
        history = time - last_time
        delay = self.channel.delay(value, history)
        if delay is None:
            if self.pending:
                _t, _v, event = self.pending.pop()
                event.cancel()
            else:  # pragma: no cover - unreachable for sane channels
                self.drop_next = True
            return
        candidate = time + delay
        if self.pending and self.channel.cancels(candidate, time,
                                                 self.pending[-1][0]):
            _t, _v, event = self.pending.pop()
            event.cancel()
            return
        event = self.simulator.queue.schedule(
            candidate,
            lambda t, v=value: self._fire(t, v))
        self.pending.append((candidate, value, event))

    def _fire(self, time: float, value: int) -> None:
        # Events fire in time order and cancellation always removes the
        # newest pending entry, so the firing event is pending[0].
        if self.pending:
            self.pending.pop(0)
        self.last_output_time = time
        self.simulator.set_signal(self.instance.output, time, value)


class _HybridRuntime:
    """Incremental hybrid automaton for a two-input NOR instance."""

    def __init__(self, simulator: "EventDrivenSimulator",
                 instance: HybridInstance):
        self.simulator = simulator
        self.instance = instance
        self.params = instance.channel.params
        self.inputs: dict[str, int] = {}
        self.mode: Mode | None = None
        self.solution: ModeSolution | None = None
        self.segment_start = 0.0
        self.crossing_events: list[object] = []

    def initialize(self, a_value: int, b_value: int) -> None:
        self.inputs = {self.instance.input_a: a_value,
                       self.instance.input_b: b_value}
        self.mode = Mode.from_inputs(a_value, b_value)
        params = self.params
        if self.mode is Mode.BOTH_LOW:
            state = (params.vdd, params.vdd)
        elif self.mode is Mode.A_LOW_B_HIGH:
            state = (params.vdd, 0.0)
        else:
            state = (0.0, 0.0)
        self.solution = solve_mode(self.mode, params, *state)
        self.segment_start = 0.0

    def on_input(self, signal: str, time: float, value: int) -> None:
        """Input transition: defer the mode switch by δ_min."""
        self.inputs[signal] = value
        new_mode = Mode.from_inputs(self.inputs[self.instance.input_a],
                                    self.inputs[self.instance.input_b])
        self.simulator.queue.schedule(
            time + self.params.delta_min,
            lambda t, m=new_mode: self._switch(t, m))

    def _switch(self, time: float, new_mode: Mode) -> None:
        if new_mode is self.mode:
            return
        state = self.solution.state_at(time - self.segment_start)
        self.mode = new_mode
        self.solution = solve_mode(new_mode, self.params, *state)
        self.segment_start = time
        self._reschedule_crossings(time)

    def _reschedule_crossings(self, time: float) -> None:
        for event in self.crossing_events:
            event.cancel()
        self.crossing_events = []
        vo = self.solution.vo
        derivative = vo.derivative()
        for local_t in all_crossings(vo, self.params.vth, 0.0, None):
            global_t = self.segment_start + local_t
            if global_t <= time:
                continue
            value = 1 if derivative(local_t) > 0 else 0
            event = self.simulator.queue.schedule(
                global_t, lambda t, v=value: self._cross(t, v))
            self.crossing_events.append(event)

    def _cross(self, time: float, value: int) -> None:
        self.simulator.set_signal(self.instance.output, time, value)


class EventDrivenSimulator:
    """Discrete-event simulation of a :class:`TimingCircuit`.

    Args:
        circuit: the netlist; feedback loops are allowed.
        initial_values: optional initial logic values for signals that
            cannot be derived feed-forward (latch outputs etc.).  The
            remaining signals are initialized by fixpoint relaxation of
            the zero-time gate functions.
    """

    def __init__(self, circuit: TimingCircuit,
                 initial_values: dict[str, int] | None = None):
        self.circuit = circuit
        self.queue = EventQueue()
        self.signals: dict[str, _SignalState] = {}
        self._initial_overrides = dict(initial_values or {})
        self._runtimes: list[_ChannelRuntime | _HybridRuntime] = []

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------

    def _relaxed_initial_values(
            self, input_traces: dict[str, DigitalTrace]
    ) -> dict[str, int]:
        values: dict[str, int] = {name: trace.initial
                                  for name, trace in
                                  input_traces.items()}
        values.update(self._initial_overrides)
        for name in self.circuit.signals:
            values.setdefault(name, 0)
        # Fixpoint relaxation of the zero-time logic.
        for _ in range(3 * max(1, len(self.circuit.instances))):
            changed = False
            for instance in self.circuit.instances:
                if instance.output in self._initial_overrides:
                    continue
                if isinstance(instance, (HybridInstance,
                                         MultiInputInstance)):
                    new = instance.channel.initial_output(
                        *(values[s] for s in instance.inputs))
                else:
                    new = instance.function(
                        *(values[s] for s in instance.inputs))
                if new != values[instance.output]:
                    values[instance.output] = new
                    changed = True
            if not changed:
                break
        return values

    def _build(self, input_traces: dict[str, DigitalTrace]) -> None:
        values = self._relaxed_initial_values(input_traces)
        for name in self.circuit.signals:
            self.signals[name] = _SignalState(values[name])

        bootstrap: list[tuple[_ChannelRuntime, int]] = []
        for instance in self.circuit.instances:
            if isinstance(instance, MultiInputInstance):
                raise SimulationError(
                    f"instance {instance.name!r}: the event-driven "
                    "engine runs the paper's two-input hybrid "
                    "automaton; n-input MIS gates are served by the "
                    "feed-forward simulator (repro.timing.simulator"
                    ".simulate)")
            if isinstance(instance, HybridInstance):
                if not hasattr(instance.channel, "params"):
                    raise SimulationError(
                        f"instance {instance.name!r}: the event-driven "
                        "engine runs the hybrid ODE automaton; table-"
                        "backed MIS gates are served by the "
                        "feed-forward simulator (repro.timing."
                        "simulator.simulate)")
                runtime = _HybridRuntime(self, instance)
                runtime.initialize(values[instance.input_a],
                                   values[instance.input_b])
                runtime._reschedule_crossings(0.0)
                self.signals[instance.input_a].consumers.append(
                    (runtime, instance.input_a))
                self.signals[instance.input_b].consumers.append(
                    (runtime, instance.input_b))
            else:
                runtime = _ChannelRuntime(self, instance)
                # Anchor the channel at the *signal* value; if the
                # zero-time logic disagrees (unresolved feedback, e.g.
                # a ring oscillator), a bootstrap transition at t = 0
                # starts the dynamics.
                runtime.initialize(values[instance.output])
                zero_time = instance.function(
                    *(values[s] for s in instance.inputs))
                if zero_time != values[instance.output]:
                    bootstrap.append((runtime, zero_time))
                for signal in instance.inputs:
                    self.signals[signal].consumers.append(
                        (runtime, signal))
            self._runtimes.append(runtime)
        for runtime, zero_time in bootstrap:
            runtime.on_gate_value(0.0, zero_time)

        # Bootstrap events: primary input transitions.
        for name, trace in input_traces.items():
            for time, value in trace.transitions:
                self.queue.schedule(
                    time,
                    lambda t, n=name, v=value: self.set_signal(n, t, v))

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------

    def set_signal(self, name: str, time: float, value: int) -> None:
        """Apply a signal transition and notify consumers."""
        state = self.signals[name]
        if value == state.value:
            return
        state.value = value
        state.history.append((time, value))
        for runtime, signal in state.consumers:
            if isinstance(runtime, _HybridRuntime):
                runtime.on_input(signal, time, value)
            else:
                inputs = [self.signals[s].value
                          for s in runtime.instance.inputs]
                runtime.on_gate_value(
                    time, runtime.instance.function(*inputs))

    def run(self, input_traces: dict[str, DigitalTrace],
            t_stop: float,
            max_events: int = DEFAULT_MAX_EVENTS
            ) -> dict[str, DigitalTrace]:
        """Simulate until *t_stop* and return all signal traces."""
        missing = [name for name in self.circuit.inputs
                   if name not in input_traces]
        if missing:
            raise SimulationError(f"missing input traces for {missing}")
        self._build(input_traces)
        self.queue.run_until(t_stop, max_events=max_events)
        out: dict[str, DigitalTrace] = {}
        for name, state in self.signals.items():
            initial = (state.history[0][1] ^ 1 if state.history
                       else state.value)
            out[name] = DigitalTrace(initial, state.history)
        return out


def simulate_events(circuit: TimingCircuit,
                    input_traces: dict[str, DigitalTrace],
                    t_stop: float,
                    initial_values: dict[str, int] | None = None,
                    max_events: int = DEFAULT_MAX_EVENTS
                    ) -> dict[str, DigitalTrace]:
    """One-shot convenience wrapper around :class:`EventDrivenSimulator`."""
    simulator = EventDrivenSimulator(circuit,
                                     initial_values=initial_values)
    return simulator.run(input_traces, t_stop, max_events=max_events)
