"""Delay channels: pure, inertial, IDM involution, and the hybrid NOR."""

from .base import Channel, SingleInputChannel
from .hybrid import HybridNorChannel
from .inertial import InertialDelayChannel
from .involution import ExpChannel, SumExpChannel, WaveformChannel
from .pure import PureDelayChannel

__all__ = [
    "Channel",
    "ExpChannel",
    "HybridNorChannel",
    "InertialDelayChannel",
    "PureDelayChannel",
    "SingleInputChannel",
    "SumExpChannel",
    "WaveformChannel",
]
