"""Delay channels: pure, inertial, IDM involution, hybrid NOR (two-
and n-input), and characterized-table gates."""

from .base import Channel, SingleInputChannel
from .hybrid import HybridNorChannel
from .inertial import InertialDelayChannel
from .involution import ExpChannel, SumExpChannel, WaveformChannel
from .multi_input import GeneralizedNorChannel
from .pure import PureDelayChannel
from .table import TableDelayChannel

__all__ = [
    "Channel",
    "ExpChannel",
    "GeneralizedNorChannel",
    "HybridNorChannel",
    "InertialDelayChannel",
    "PureDelayChannel",
    "SingleInputChannel",
    "SumExpChannel",
    "TableDelayChannel",
    "WaveformChannel",
]
