"""Involution delay model (IDM) channels.

An IDM channel is characterized by a pair of switching waveforms: after
a rising input the (conceptual) analog output follows a rising waveform
``f↑`` starting from wherever the previous falling waveform ``f↓`` left
off; the digital output transition is the ``1/2``-crossing.  This
construction yields the delay function

.. math::  δ↑(T) = f↑^{-1}(1/2) − f↑^{-1}\\bigl(f↓(f↓^{-1}(1/2) + T)\\bigr)

(and symmetrically for ``δ↓``), which satisfies the *involution
property* ``−δ↓(−δ↑(T)) = T`` — the defining axiom of the IDM and the
key to its faithfulness results.  A pure delay ``δp`` may be composed
in front: ``δ̂(T) = δp + δ(T + δp)``; the composite is again an
involution.

Channels provided:

* :class:`ExpChannel` — single-exponential waveforms, closed-form
  ``δ↑(T) = δp + τ↑ ln(2 − e^{−(T+δp)/τ↓})``.  This is the channel the
  paper uses to represent the IDM in Fig. 7 (with an empirically chosen
  ``δp = δ_min = 20 ps``).
* :class:`WaveformChannel` — arbitrary waveforms, numeric inversion.
* :class:`SumExpChannel` — sum-of-exponentials waveforms (the "SumExp"
  channel whose tedious VHDL implementation motivated the paper's FLI
  escape hatch); built on :class:`WaveformChannel`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from scipy.optimize import brentq

from ...errors import ParameterError
from .base import SingleInputChannel

__all__ = ["ExpChannel", "WaveformChannel", "SumExpChannel"]

_LN2 = math.log(2.0)


class ExpChannel(SingleInputChannel):
    """IDM channel with exponential switching waveforms.

    Args:
        delay_up_inf: SIS delay ``δ↑(∞)`` (including the pure part).
        delay_down_inf: SIS delay ``δ↓(∞)`` (defaults to *delay_up_inf*).
        pure_delay: pure-delay component ``δp`` (the paper's ``δ_min``).

    The time constants follow from ``δ(∞) = δp + τ ln 2``.
    """

    def __init__(self, delay_up_inf: float,
                 delay_down_inf: float | None = None,
                 pure_delay: float = 0.0,
                 label: str = "exp"):
        if delay_down_inf is None:
            delay_down_inf = delay_up_inf
        if pure_delay < 0.0:
            raise ParameterError("pure_delay must be non-negative")
        if delay_up_inf <= pure_delay or delay_down_inf <= pure_delay:
            raise ParameterError("δ(∞) must exceed the pure delay")
        self.pure_delay = float(pure_delay)
        self.tau_up = (delay_up_inf - pure_delay) / _LN2
        self.tau_down = (delay_down_inf - pure_delay) / _LN2
        self.label = label

    def delay_up(self, history: float) -> float | None:
        """``δ↑(T)``; ``None`` outside the involution domain."""
        if math.isinf(history):
            return self.pure_delay + self.tau_up * _LN2
        argument = 2.0 - math.exp(-(history + self.pure_delay)
                                  / self.tau_down)
        if argument <= 0.0:
            return None
        return self.pure_delay + self.tau_up * math.log(argument)

    def delay_down(self, history: float) -> float | None:
        """``δ↓(T)``; ``None`` outside the involution domain."""
        if math.isinf(history):
            return self.pure_delay + self.tau_down * _LN2
        argument = 2.0 - math.exp(-(history + self.pure_delay)
                                  / self.tau_up)
        if argument <= 0.0:
            return None
        return self.pure_delay + self.tau_down * math.log(argument)

    def delay(self, value: int, history: float) -> float | None:
        return (self.delay_up(history) if value == 1
                else self.delay_down(history))


class WaveformChannel(SingleInputChannel):
    """IDM channel for arbitrary switching waveforms.

    Args:
        f_up: rising waveform, strictly increasing from ``f_up(0) >= 0``
            towards 1 on ``[0, ∞)``.
        f_down: falling waveform, strictly decreasing from
            ``f_down(0) <= 1`` towards 0.
        pure_delay: composed pure delay ``δp``.
        horizon: time after which the waveforms are considered settled
            (bracket for the numeric inversion).

    Inversion uses Brent's method; waveform values outside ``(0, 1)``
    mark the out-of-domain region (delay ``None``).
    """

    def __init__(self, f_up: Callable[[float], float],
                 f_down: Callable[[float], float],
                 pure_delay: float = 0.0,
                 horizon: float = 1.0,
                 label: str = "waveform"):
        if pure_delay < 0.0:
            raise ParameterError("pure_delay must be non-negative")
        self.f_up = f_up
        self.f_down = f_down
        self.pure_delay = float(pure_delay)
        self.horizon = float(horizon)
        self.label = label
        self._anchor_up = self._invert(f_up, 0.5, increasing=True)
        self._anchor_down = self._invert(f_down, 0.5, increasing=False)

    def _invert(self, waveform: Callable[[float], float], value: float,
                increasing: bool) -> float:
        lo, hi = 0.0, self.horizon
        v_lo, v_hi = waveform(lo), waveform(hi)
        in_range = (v_lo <= value <= v_hi if increasing
                    else v_hi <= value <= v_lo)
        if not in_range:
            raise ParameterError(
                f"waveform does not reach {value} within the horizon")
        if v_lo == value:
            return lo
        if v_hi == value:
            return hi
        return float(brentq(lambda t: waveform(t) - value, lo, hi,
                            xtol=1e-18, rtol=8.9e-16))

    def _raw_delay(self, value: int, history: float) -> float | None:
        if value == 1:
            start, settled = self.f_down, self.f_up
            anchor_from, anchor_to = self._anchor_down, self._anchor_up
            if math.isinf(history):
                return anchor_to
            position = anchor_from + history
            level = self.f_down(position) if position >= 0.0 else 1.0
            if level >= 1.0 or self.f_up(self.horizon) < level:
                return None
            if level <= 0.0:
                return anchor_to
            return anchor_to - self._invert(self.f_up, level,
                                            increasing=True)
        anchor_from, anchor_to = self._anchor_up, self._anchor_down
        if math.isinf(history):
            return anchor_to
        position = anchor_from + history
        level = self.f_up(position) if position >= 0.0 else 0.0
        if level <= 0.0 or self.f_down(self.horizon) > level:
            return None
        if level >= 1.0:
            return anchor_to
        return anchor_to - self._invert(self.f_down, level,
                                        increasing=False)

    def delay(self, value: int, history: float) -> float | None:
        if math.isinf(history):
            raw = self._raw_delay(value, history)
        else:
            raw = self._raw_delay(value, history + self.pure_delay)
        if raw is None:
            return None
        return self.pure_delay + raw


class SumExpChannel(WaveformChannel):
    """IDM channel with sum-of-exponentials switching waveforms.

    Args:
        taus_up: time constants of the rising waveform.
        weights_up: positive weights (normalized internally).
        taus_down / weights_down: falling waveform (default: mirrored).
        pure_delay: composed pure delay.

    Waveforms: ``f↑(t) = 1 − Σ wᵢ e^{−t/τᵢ}`` and
    ``f↓(t) = Σ wᵢ e^{−t/τᵢ}``.
    """

    def __init__(self, taus_up: Sequence[float],
                 weights_up: Sequence[float] | None = None,
                 taus_down: Sequence[float] | None = None,
                 weights_down: Sequence[float] | None = None,
                 pure_delay: float = 0.0,
                 label: str = "sumexp"):
        taus_up = [float(t) for t in taus_up]
        if not taus_up or any(t <= 0 for t in taus_up):
            raise ParameterError("taus_up must be positive")
        if weights_up is None:
            weights_up = [1.0] * len(taus_up)
        weights_up = [float(w) for w in weights_up]
        if len(weights_up) != len(taus_up) or any(w <= 0
                                                  for w in weights_up):
            raise ParameterError("weights_up must be positive and match "
                                 "taus_up")
        total = sum(weights_up)
        weights_up = [w / total for w in weights_up]

        if taus_down is None:
            taus_down, weights_down = taus_up, weights_up
        else:
            taus_down = [float(t) for t in taus_down]
            if weights_down is None:
                weights_down = [1.0] * len(taus_down)
            weights_down = [float(w) for w in weights_down]
            total = sum(weights_down)
            weights_down = [w / total for w in weights_down]

        def f_up(t: float, taus=tuple(taus_up),
                 weights=tuple(weights_up)) -> float:
            return 1.0 - sum(w * math.exp(-t / tau)
                             for w, tau in zip(weights, taus))

        def f_down(t: float, taus=tuple(taus_down),
                   weights=tuple(weights_down)) -> float:
            return sum(w * math.exp(-t / tau)
                       for w, tau in zip(weights, taus))

        horizon = 60.0 * max(max(taus_up), max(taus_down))
        super().__init__(f_up, f_down, pure_delay=pure_delay,
                         horizon=horizon, label=label)
        self.taus_up = tuple(taus_up)
        self.weights_up = tuple(weights_up)
        self.taus_down = tuple(taus_down)
        self.weights_down = tuple(weights_down)
