"""Event-driven channel for the generalized n-input NOR model.

:class:`GeneralizedNorChannel` is the n-input sibling of
:class:`~repro.timing.channels.hybrid.HybridNorChannel`: a fused MIS
element that consumes all n input traces directly and produces the
digitized output of the exact eigen-solved hybrid automaton of
:class:`~repro.core.multi_input.GeneralizedNorModel`.  For ``n = 2``
it reproduces the paper's closed-form channel to solver precision
(the test-suite asserts it), and it is the event-simulation ground
truth the n-input STA arcs of :mod:`repro.sta` cross-validate
against.

The channel runs under the feed-forward trace-transform simulator
(:func:`repro.timing.simulator.simulate`); the incremental
discrete-event engine keeps its scope at the paper's two-input
automaton and rejects n-input instances cleanly.
"""

from __future__ import annotations

from ...core.multi_input import (GeneralizedNorParameters,
                                 generalized_model)
from ...errors import TraceError
from ..trace import DigitalTrace
from .base import Channel

__all__ = ["GeneralizedNorChannel"]


class GeneralizedNorChannel(Channel):
    """MIS-aware n-input NOR channel over the generalized hybrid model.

    Parameters
    ----------
    params : GeneralizedNorParameters
        Electrical parameters of the n-input gate (``δ_min``
        included).
    label : str, optional
        Reporting label.
    """

    def __init__(self, params: GeneralizedNorParameters,
                 label: str = "generalized-nor"):
        self.params = params
        self.model = generalized_model(params)
        self.label = label

    @property
    def inputs(self) -> int:
        """Number of gate inputs."""
        return self.params.num_inputs

    def initial_output(self, *values: int) -> int:
        """Steady-state output for the initial input values."""
        if len(values) != self.params.num_inputs:
            raise TraceError(
                f"{self.label}: expected {self.params.num_inputs} "
                f"initial values, got {len(values)}")
        return int(not any(values))

    def simulate(self, *traces: DigitalTrace,
                 t_max: float | None = None) -> DigitalTrace:
        """Output trace of the NOR gate for the given input traces.

        Parameters
        ----------
        *traces : DigitalTrace
            One digital trace per input (events at ``t >= 0``).
        t_max : float, optional
            Stop looking for output crossings after this time
            (defaults to "until settled").

        Returns
        -------
        DigitalTrace
            The digitized gate output.

        Raises
        ------
        TraceError
            On a wrong trace count or events at negative times.
        """
        if len(traces) != self.params.num_inputs:
            raise TraceError(
                f"{self.label}: expected {self.params.num_inputs} "
                f"input traces, got {len(traces)}")
        for trace in traces:
            if trace.times and trace.times[0] < 0.0:
                raise TraceError(
                    f"{self.label}: expects events at t >= 0")
        crossings = self.model.output_crossings_for_inputs(
            [trace.transitions for trace in traces],
            initial_inputs=[trace.initial for trace in traces],
            t_max=t_max)
        initial = self.initial_output(*(t.initial for t in traces))
        cleaned: list[tuple[float, int]] = []
        value = initial
        for t, v in crossings:
            if v == value:  # pragma: no cover - defensive
                continue
            cleaned.append((t, v))
            value = v
        return DigitalTrace(initial, cleaned)

    def __repr__(self) -> str:
        return (f"GeneralizedNorChannel(n={self.params.num_inputs}, "
                f"label={self.label!r})")
