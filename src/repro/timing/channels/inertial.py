"""Inertial delay channel.

Constant delay plus short-pulse removal: an input pulse shorter than the
channel delay produces no output at all.  This is the classic delay
model of digital simulators (and the *baseline* of the paper's Fig. 7 —
all deviation areas are normalized to the inertial channel's).

The cancellation trigger differs from the IDM rule: a pulse is removed
when the *input* reverses before the pending output transition has
fired, i.e. when the input pulse is shorter than the delay.
"""

from __future__ import annotations

from ...errors import ParameterError
from .base import SingleInputChannel

__all__ = ["InertialDelayChannel"]


class InertialDelayChannel(SingleInputChannel):
    """Constant delay + suppression of pulses shorter than the delay.

    Args:
        delay_up: delay of transitions to 1, seconds.
        delay_down: delay of transitions to 0 (defaults to *delay_up*).
    """

    def __init__(self, delay_up: float, delay_down: float | None = None,
                 label: str = "inertial"):
        if delay_down is None:
            delay_down = delay_up
        if delay_up < 0.0 or delay_down < 0.0:
            raise ParameterError("inertial delays must be non-negative")
        self.delay_up = float(delay_up)
        self.delay_down = float(delay_down)
        self.label = label

    def delay(self, value: int, history: float) -> float:
        return self.delay_up if value == 1 else self.delay_down

    def cancels(self, candidate_time: float, input_time: float,
                pending_time: float) -> bool:
        # Input reversed before the pending output fired (short pulse),
        # or the candidate would reorder outputs (unequal delays).
        return input_time < pending_time or candidate_time <= pending_time
