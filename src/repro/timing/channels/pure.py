"""Pure (constant) delay channel.

The simplest delay model: every transition is shifted by a constant
delay; no pulses are ever removed (as long as the rise and fall delays
are equal — unequal delays can make transitions collide, in which case
the standard annihilation applies).
"""

from __future__ import annotations

from ...errors import ParameterError
from .base import SingleInputChannel

__all__ = ["PureDelayChannel"]


class PureDelayChannel(SingleInputChannel):
    """Constant input-to-output delay.

    Args:
        delay_up: delay of transitions to 1, seconds.
        delay_down: delay of transitions to 0 (defaults to *delay_up*).
    """

    def __init__(self, delay_up: float, delay_down: float | None = None,
                 label: str = "pure"):
        if delay_down is None:
            delay_down = delay_up
        if delay_up < 0.0 or delay_down < 0.0:
            raise ParameterError("pure delays must be non-negative")
        self.delay_up = float(delay_up)
        self.delay_down = float(delay_down)
        self.label = label

    def delay(self, value: int, history: float) -> float:
        return self.delay_up if value == 1 else self.delay_down
