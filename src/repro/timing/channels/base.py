"""Delay-channel interface and single-history scheduling semantics.

In the involution delay model (IDM) a circuit is zero-time boolean gates
plus *channels*: single-input single-output delay elements characterized
by a delay function ``δ(T)`` whose argument ``T`` is the
*previous-output-to-input delay* — the time from the channel's last
output transition to the current input transition.  (The paper's
reference [3] proves a dependence of this kind is necessary for
faithfulness.)

Scheduling semantics (matching the Involution Tool): every input
transition at time ``t`` produces a candidate output transition at
``t + δ(T)``.  If the candidate does not occur strictly after the last
still-pending output transition, the two *annihilate* (both are
removed) — this is how too-short pulses vanish.  Inertial channels use a
stricter trigger (input reversal before the pending output fired),
implemented by overriding :meth:`SingleInputChannel.cancels`.

:class:`SingleInputChannel.apply` runs these semantics over a whole
:class:`~repro.timing.trace.DigitalTrace` — the workloads of this study
are feed-forward, so traces can be transformed channel by channel in
topological order (see :mod:`repro.timing.simulator`).
"""

from __future__ import annotations

import math

from ...errors import TraceError
from ..trace import DigitalTrace

__all__ = ["Channel", "SingleInputChannel"]


class Channel:
    """Marker base class for all delay channels."""

    label: str = "channel"


class SingleInputChannel(Channel):
    """A channel with one input and one output.

    Subclasses implement :meth:`delay`; the scheduling/cancellation
    machinery lives here.
    """

    # ------------------------------------------------------------------
    # to be provided by subclasses
    # ------------------------------------------------------------------

    def delay(self, value: int, history: float) -> float | None:
        """Input-to-output delay for a transition *to* ``value``.

        Args:
            value: target logic value of the transition (0 or 1).
            history: previous-output-to-input delay ``T`` (``math.inf``
                when the output has been stable forever).

        Returns:
            The delay in seconds, or ``None`` if the transition cannot
            produce an output crossing at all (involution argument out
            of domain) — the caller then annihilates it against the
            pending output transition.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # scheduling semantics
    # ------------------------------------------------------------------

    def cancels(self, candidate_time: float, input_time: float,
                pending_time: float) -> bool:
        """Does the new candidate annihilate with the last pending event?

        The IDM rule: annihilate when the candidate would not occur
        strictly after the pending transition.
        """
        return candidate_time <= pending_time

    def apply(self, trace: DigitalTrace) -> DigitalTrace:
        """Transform an input trace into the channel's output trace."""
        out: list[tuple[float, int]] = []
        dropped_unpaired = False

        for t, value in trace.transitions:
            if dropped_unpaired:
                # The previous candidate vanished without a partner; this
                # transition restores parity by vanishing with it.
                dropped_unpaired = False
                continue
            last_time = out[-1][0] if out else -math.inf
            history = t - last_time
            delay = self.delay(value, history)
            if delay is None:
                if out:
                    out.pop()
                else:  # pragma: no cover - unreachable for sane δ
                    dropped_unpaired = True
                continue
            candidate = t + delay
            if out and self.cancels(candidate, t, out[-1][0]):
                out.pop()
                continue
            if out and out[-1][1] == value:  # pragma: no cover - guard
                raise TraceError("channel produced non-alternating output")
            out.append((candidate, value))
        return DigitalTrace(trace.initial, out)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"
