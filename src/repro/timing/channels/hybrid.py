"""The paper's two-input hybrid NOR channel.

Unlike the single-input channels, the hybrid channel *is* the gate: it
consumes both input traces and produces the output trace by running the
four-mode ODE automaton of :class:`repro.core.hybrid_model.HybridNorModel`
forward through the (δ_min-deferred) input events.  Glitch behaviour
needs no explicit cancellation rules — a pulse that is too short simply
never drives the continuous output voltage across ``Vth``.

This is what the paper integrated into the Involution Tool through the
QuestaSim FLI → C → Python bridge; here it is a native channel.
"""

from __future__ import annotations

from ...core.hybrid_model import HybridNorModel
from ...core.parameters import NorGateParameters
from ...errors import TraceError
from ..trace import DigitalTrace
from .base import Channel

__all__ = ["HybridNorChannel"]


class HybridNorChannel(Channel):
    """MIS-aware NOR gate channel based on the hybrid ODE model.

    Args:
        params: electrical parameters (``δ_min`` included; use
            ``params.without_delta_min()`` for the paper's
            "HM without δ_min" variant).
        label: reporting label.
    """

    inputs = 2

    def __init__(self, params: NorGateParameters, label: str = "hybrid"):
        self.params = params
        self.model = HybridNorModel(params)
        self.label = label

    def initial_output(self, a_initial: int, b_initial: int) -> int:
        """Steady-state output for the initial input values."""
        return int(not (a_initial or b_initial))

    def simulate(self, trace_a: DigitalTrace, trace_b: DigitalTrace,
                 t_max: float | None = None) -> DigitalTrace:
        """Output trace of the NOR gate for the given input traces.

        Args:
            trace_a: digital trace of input A.
            trace_b: digital trace of input B.
            t_max: stop looking for output crossings after this time
                (defaults to "until settled").

        The continuous state starts at the equilibrium of the initial
        input combination; for the (1,1) start this means ``V_N = 0``,
        the paper's worst-case choice.
        """
        if trace_a.times and trace_a.times[0] < 0.0 or \
                trace_b.times and trace_b.times[0] < 0.0:
            raise TraceError("hybrid channel expects events at t >= 0")
        crossings = self.model.output_crossings_for_inputs(
            trace_a.transitions, trace_b.transitions, t_max=t_max,
            a_initial=trace_a.initial, b_initial=trace_b.initial)
        initial = self.initial_output(trace_a.initial, trace_b.initial)
        # Crossings alternate by construction; drop any leading crossing
        # that does not change the value (defensive).
        cleaned: list[tuple[float, int]] = []
        value = initial
        for t, v in crossings:
            if v == value:
                continue
            cleaned.append((t, v))
            value = v
        return DigitalTrace(initial, cleaned)
