"""Event-driven gate channel backed by a characterized delay table.

:class:`TableDelayChannel` is the consumer side of the library
subsystem (:mod:`repro.library`): instead of integrating the hybrid
ODE automaton per event like
:class:`~repro.timing.channels.hybrid.HybridNorChannel`, it replays a
characterized :class:`~repro.library.tables.GateDelayTable` — exactly
how standard-cell flows consume NLDM-style libraries, with the
input-separation axis ``Δ`` added.

Scheduling semantics
--------------------
Every transition of the gate's boolean output value schedules a
candidate output crossing from a table lookup:

* the **parallel-network** transition (NOR falling / NAND rising) is
  triggered by a *single* controlling input.  It is first scheduled
  with the SIS edge value ``δ(±∞)``; if the other input also switches
  to its controlling value before the pending crossing fires, the
  candidate is *rescheduled* with the true MIS separation — the
  event-driven equivalent of reading the interior of the MIS curve;
* the **series-network** transition (NOR rising / NAND falling) needs
  both inputs, so the triggering (last) input knows the separation
  immediately and one lookup suffices.

Cancellation is *inertial*: a transition whose trigger arrives while
the previous output transition is still pending annihilates with it —
the continuous output never reached the threshold, so the pulse
vanishes, mirroring the ODE channel's short-pulse filtration (a pure
table lookup has no output-history axis, so the involution rule of
:mod:`repro.timing.channels.base` is not expressible here).  Delay
references follow the paper's conventions: parallel transitions are
referenced to the *earlier* controlling input, series transitions to
the *later* one.

The channel's accuracy is the table's: for well-separated events it
matches the closed-form model to the interpolation error (< 0.1 ps
with default grids); dense glitch trains keep the qualitative
cancellation behaviour but not the continuous-state memory of the
ODE channel.
"""

from __future__ import annotations

import math

from ...errors import TraceError
from ...library.tables import GateDelayTable
from ..trace import DigitalTrace
from .base import Channel

__all__ = ["TableDelayChannel"]


class TableDelayChannel(Channel):
    """Two-input NOR/NAND channel driven by table lookups.

    Parameters
    ----------
    table : GateDelayTable
        Characterized delay surfaces; ``table.gate`` selects the
        boolean function (``"nor2"`` or ``"nand2"``) and the delay
        conventions.
    state : float, optional
        Internal-node voltage in volts used for state-dependent
        surface lookups (default 0.0 for NOR — the paper's GND worst
        case; for NAND the mirrored worst case is ``VDD``, applied
        automatically when *state* is ``None``).
    label : str, optional
        Reporting label (defaults to the table's cell name).
    """

    inputs = 2

    def __init__(self, table: GateDelayTable,
                 state: float | None = None, label: str = ""):
        self.table = table
        if state is None:
            state = table.params.vdd if table.gate == "nand2" else 0.0
        self.state = float(state)
        self.label = label or table.cell
        # Boolean function and which transition is parallel-driven.
        if table.gate == "nor2":
            self._function = lambda a, b: int(not (a or b))
            #: input value that activates the parallel network
            self._controlling = 1
            #: output value reached through the parallel network
            self._parallel_target = 0
        else:
            self._function = lambda a, b: int(not (a and b))
            self._controlling = 0
            self._parallel_target = 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def _parallel_delay(self, delta: float) -> float:
        """Delay of the single-input-triggered transition."""
        if self.table.gate == "nor2":
            return self.table.delay_falling(delta, self.state)
        return self.table.delay_rising(delta, self.state)

    def _series_delay(self, delta: float) -> float:
        """Delay of the both-inputs-required transition."""
        if self.table.gate == "nor2":
            return self.table.delay_rising(delta, self.state)
        return self.table.delay_falling(delta, self.state)

    def initial_output(self, a_initial: int, b_initial: int) -> int:
        """Steady-state output for the initial input values."""
        return self._function(a_initial, b_initial)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def simulate(self, trace_a: DigitalTrace, trace_b: DigitalTrace,
                 t_max: float | None = None) -> DigitalTrace:
        """Output trace of the gate for the given input traces.

        Parameters
        ----------
        trace_a, trace_b : DigitalTrace
            Input traces; events must sit at ``t >= 0``.
        t_max : float, optional
            Drop output transitions after this time.

        Returns
        -------
        DigitalTrace
            The digitized gate output.

        Raises
        ------
        TraceError
            If an input trace carries events at negative times.
        """
        for trace in (trace_a, trace_b):
            if trace.times and trace.times[0] < 0.0:
                raise TraceError("table channel expects events at "
                                 "t >= 0")
        a, b = trace_a.initial, trace_b.initial
        initial = self._function(a, b)

        merged = sorted(
            [(t, 0, v) for t, v in trace_a.transitions] +
            [(t, 1, v) for t, v in trace_b.transitions])
        values = [a, b]
        # Time each input last switched *to* its controlling value;
        # -inf means "has been controlling forever" (SIS edge).
        controlling_since = [
            -math.inf if values[0] == self._controlling else math.nan,
            -math.inf if values[1] == self._controlling else math.nan,
        ]
        # Time each input last *left* its controlling value; -inf
        # means "never was controlling" or "never released" — either
        # way the separation is the SIS edge.
        was_controlling = [values[0] == self._controlling,
                           values[1] == self._controlling]
        released_at = [-math.inf, -math.inf]

        out: list[tuple[float, int]] = []
        #: True while out[-1] is a parallel-driven candidate that may
        #: still be rescheduled by the partner input.
        pending_parallel = False

        def cancel_or_append(t_event: float, candidate: float,
                             value: int) -> bool:
            """Inertial rule; returns True if the candidate survived.

            A new transition whose trigger arrives while the previous
            output transition is still pending annihilates with it —
            the continuous output never crossed the threshold, so the
            pulse vanishes (matching the ODE channel's filtration).
            """
            if out and (out[-1][0] > t_event
                        or candidate <= out[-1][0]):
                out.pop()
                return False
            out.append((candidate, value))
            return True

        for t, which, value in merged:
            values[which] = value
            if value == self._controlling:
                controlling_since[which] = t
                was_controlling[which] = True
            elif was_controlling[which]:
                released_at[which] = t
            current = out[-1][1] if out else initial
            target = self._function(values[0], values[1])

            if target == current:
                if (pending_parallel and value == self._controlling
                        and out and out[-1][0] > t):
                    # Second controlling input arrived while the
                    # parallel transition is still pending:
                    # reschedule with the true MIS separation.
                    t_a, t_b = controlling_since
                    reference = min(t_a, t_b)
                    candidate = (reference
                                 + self._parallel_delay(t_b - t_a))
                    out.pop()
                    pending_parallel = cancel_or_append(t, candidate,
                                                        current)
                continue

            if target == self._parallel_target:
                # Parallel-driven transition: this input alone flips
                # the output; the partner is (still) non-controlling.
                edge = math.inf if which == 0 else -math.inf
                candidate = t + self._parallel_delay(edge)
                pending_parallel = cancel_or_append(t, candidate,
                                                    target)
            else:
                # Series-driven transition: both inputs are
                # non-controlling now, and this event is the later of
                # the two releases by construction.
                t_a, t_b = released_at
                cancel_or_append(t, t + self._series_delay(t_b - t_a),
                                 target)
                pending_parallel = False

        if t_max is not None:
            out = [(t, v) for t, v in out if t <= t_max]

        # Defensive: alternation must hold after annihilations.
        cleaned: list[tuple[float, int]] = []
        current = initial
        for t, v in out:
            if v == current:  # pragma: no cover - defensive guard
                continue
            cleaned.append((t, v))
            current = v
        return DigitalTrace(initial, cleaned)

    def __repr__(self) -> str:
        return (f"TableDelayChannel({self.table.cell!r}, "
                f"gate={self.table.gate!r})")
