"""Event-driven gate channel backed by a characterized delay table.

:class:`TableDelayChannel` is the consumer side of the library
subsystem (:mod:`repro.library`): instead of integrating the hybrid
ODE automaton per event like
:class:`~repro.timing.channels.hybrid.HybridNorChannel`, it replays a
characterized :class:`~repro.library.tables.GateDelayTable` — exactly
how standard-cell flows consume NLDM-style libraries, with the
input-separation axis ``Δ`` added.

Scheduling semantics
--------------------
Every transition of the gate's boolean output value schedules a
candidate output crossing from a table lookup:

* the **parallel-network** transition (NOR falling / NAND rising) is
  triggered by a *single* controlling input.  It is first scheduled
  with the SIS edge value ``δ(±∞)``; if the other input also switches
  to its controlling value before the pending crossing fires, the
  candidate is *rescheduled* with the true MIS separation — the
  event-driven equivalent of reading the interior of the MIS curve;
* the **series-network** transition (NOR rising / NAND falling) needs
  both inputs, so the triggering (last) input knows the separation
  immediately and one lookup suffices.

Cancellation is *inertial*: a transition whose trigger arrives while
the previous output transition is still pending annihilates with it —
the continuous output never reached the threshold, so the pulse
vanishes, mirroring the ODE channel's short-pulse filtration (a pure
table lookup has no output-history axis, so the involution rule of
:mod:`repro.timing.channels.base` is not expressible here).  Delay
references follow the paper's conventions: parallel transitions are
referenced to the *earlier* controlling input, series transitions to
the *later* one.

The channel's accuracy is the table's: for well-separated events it
matches the closed-form model to the interpolation error (< 0.1 ps
with default grids); dense glitch trains keep the qualitative
cancellation behaviour but not the continuous-state memory of the
ODE channel.
"""

from __future__ import annotations

import math

from ...core.multi_input import sibling_offsets
from ...errors import TraceError
from ...library.tables import (GateDelayTable, VectorDelaySurface,
                               mis_gate_inputs)
from ..trace import DigitalTrace
from .base import Channel

__all__ = ["TableDelayChannel"]


class TableDelayChannel(Channel):
    """n-input NOR / 2-input NAND channel driven by table lookups.

    Parameters
    ----------
    table : GateDelayTable
        Characterized delay surfaces; ``table.gate`` selects the
        boolean function (``"nor2"``, ``"nand2"``, or ``"nor<n>"``)
        and the delay conventions.  n-input NOR tables replay their
        :class:`~repro.library.tables.VectorDelaySurface` pairs with
        full Δ-vector MIS rescheduling.
    state : float, optional
        Internal-node voltage in volts used for state-dependent
        surface lookups (default 0.0 for NOR — the paper's GND worst
        case; for NAND the mirrored worst case is ``VDD``, applied
        automatically when *state* is ``None``).  n-input tables
        record their characterized ``internal_state`` instead.
    label : str, optional
        Reporting label (defaults to the table's cell name).
    """

    def __init__(self, table: GateDelayTable,
                 state: float | None = None, label: str = ""):
        self.table = table
        if state is None:
            state = table.params.vdd if table.gate == "nand2" else 0.0
        self.state = float(state)
        self.label = label or table.cell
        self._vector = isinstance(table.falling, VectorDelaySurface)
        # Boolean function and which transition is parallel-driven.
        if table.gate == "nand2":
            self._function = lambda *values: int(not all(values))
            #: input value that activates the parallel network
            self._controlling = 0
            #: output value reached through the parallel network
            self._parallel_target = 1
        else:
            self._function = lambda *values: int(not any(values))
            self._controlling = 1
            self._parallel_target = 0

    @property
    def inputs(self) -> int:
        """Number of gate inputs the channel consumes."""
        return mis_gate_inputs(self.table.gate)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def _parallel_delay(self, delta) -> float:
        """Delay of the single-controlling-input transition.

        Clamped lookups by design: the channel deliberately reads
        the SIS plateau edges for separations beyond the
        characterized grids.
        """
        if self.table.gate == "nand2":
            return self.table.delay_rising(delta, self.state,
                                           clamp=True)
        return self.table.delay_falling(delta, self.state,
                                        clamp=True)

    def _series_delay(self, delta) -> float:
        """Delay of the all-inputs-required transition (clamped)."""
        if self.table.gate == "nand2":
            return self.table.delay_falling(delta, self.state,
                                            clamp=True)
        return self.table.delay_rising(delta, self.state,
                                       clamp=True)

    def _parallel_candidate(self, times: list[float]) -> float:
        """Output-crossing candidate of a parallel-driven transition.

        *times* holds, per input, when it last turned controlling
        (``+inf`` for inputs that are not controlling) — referenced
        to the *earliest* controlling input per the paper's
        convention.
        """
        reference = min(times)
        if self._vector:
            delta = sibling_offsets(times, reference)
        else:
            delta = times[1] - times[0]
        return reference + self._parallel_delay(delta)

    def _series_candidate(self, released: list[float]) -> float:
        """Output-crossing candidate of a series-driven transition.

        *released* holds, per input, when it last left its
        controlling value (``−inf`` for "released long ago / never
        was controlling") — the trigger is the *latest* release.
        """
        reference = max(released)
        if self._vector:
            delta = sibling_offsets(released, reference)
        else:
            delta = released[1] - released[0]
        return reference + self._series_delay(delta)

    def initial_output(self, *values: int) -> int:
        """Steady-state output for the initial input values."""
        if len(values) != self.inputs:
            raise TraceError(
                f"{self.label}: expected {self.inputs} initial "
                f"values, got {len(values)}")
        return self._function(*values)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def simulate(self, *traces: DigitalTrace,
                 t_max: float | None = None) -> DigitalTrace:
        """Output trace of the gate for the given input traces.

        Parameters
        ----------
        *traces : DigitalTrace
            One input trace per gate input; events must sit at
            ``t >= 0``.
        t_max : float, optional
            Drop output transitions after this time.

        Returns
        -------
        DigitalTrace
            The digitized gate output.

        Raises
        ------
        TraceError
            On a wrong trace count or events at negative times.
        """
        n = self.inputs
        if len(traces) != n:
            raise TraceError(
                f"{self.label}: expected {n} input traces, got "
                f"{len(traces)}")
        for trace in traces:
            if trace.times and trace.times[0] < 0.0:
                raise TraceError("table channel expects events at "
                                 "t >= 0")
        values = [trace.initial for trace in traces]
        initial = self._function(*values)

        merged = sorted(
            (t, index, v)
            for index, trace in enumerate(traces)
            for t, v in trace.transitions)
        # Time each input last switched *to* its controlling value;
        # -inf means "has been controlling forever" (SIS edge).
        controlling_since = [
            -math.inf if value == self._controlling else math.nan
            for value in values]
        # Time each input last *left* its controlling value; -inf
        # means "never was controlling" or "never released" — either
        # way the separation is the SIS edge.
        was_controlling = [value == self._controlling
                           for value in values]
        released_at = [-math.inf] * n

        out: list[tuple[float, int]] = []
        #: True while out[-1] is a parallel-driven candidate that may
        #: still be rescheduled by further controlling inputs.
        pending_parallel = False

        def controlling_times() -> list[float]:
            """Per-input controlling onsets (+inf: not controlling)."""
            return [controlling_since[i]
                    if values[i] == self._controlling else math.inf
                    for i in range(n)]

        def cancel_or_append(t_event: float, candidate: float,
                             value: int) -> bool:
            """Inertial rule; returns True if the candidate survived.

            A new transition whose trigger arrives while the previous
            output transition is still pending annihilates with it —
            the continuous output never crossed the threshold, so the
            pulse vanishes (matching the ODE channel's filtration).
            """
            if out and (out[-1][0] > t_event
                        or candidate <= out[-1][0]):
                out.pop()
                return False
            out.append((candidate, value))
            return True

        for t, which, value in merged:
            values[which] = value
            if value == self._controlling:
                controlling_since[which] = t
                was_controlling[which] = True
            elif was_controlling[which]:
                released_at[which] = t
            current = out[-1][1] if out else initial
            target = self._function(*values)

            if target == current:
                if (pending_parallel and value == self._controlling
                        and out and out[-1][0] > t):
                    # A further controlling input arrived while the
                    # parallel transition is still pending:
                    # reschedule with the true MIS separations.
                    candidate = self._parallel_candidate(
                        controlling_times())
                    out.pop()
                    pending_parallel = cancel_or_append(t, candidate,
                                                        current)
                continue

            if target == self._parallel_target:
                # Parallel-driven transition: this input alone flips
                # the output; the siblings are (still)
                # non-controlling.
                candidate = self._parallel_candidate(
                    controlling_times())
                pending_parallel = cancel_or_append(t, candidate,
                                                    target)
            else:
                # Series-driven transition: every input is
                # non-controlling now, and this event is the latest
                # release by construction.
                cancel_or_append(
                    t, self._series_candidate(list(released_at)),
                    target)
                pending_parallel = False

        if t_max is not None:
            out = [(t, v) for t, v in out if t <= t_max]

        # Defensive: alternation must hold after annihilations.
        cleaned: list[tuple[float, int]] = []
        current = initial
        for t, v in out:
            if v == current:  # pragma: no cover - defensive guard
                continue
            cleaned.append((t, v))
            current = v
        return DigitalTrace(initial, cleaned)

    def __repr__(self) -> str:
        return (f"TableDelayChannel({self.table.cell!r}, "
                f"gate={self.table.gate!r})")
