"""Digital signal traces.

A :class:`DigitalTrace` is the digital-timing twin of an analog
waveform: an initial logic value plus a strictly-increasing sequence of
``(time, value)`` transitions with alternating values.  All delay models
in :mod:`repro.timing.channels` consume and produce these traces, and
the deviation-area metric of the paper's Section VI is defined on them.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Sequence

from ..errors import TraceError

__all__ = ["DigitalTrace"]


class DigitalTrace:
    """An immutable digital waveform.

    Args:
        initial: logic value (0/1) before the first transition.
        transitions: ``(time, value)`` pairs; times strictly increasing,
            values alternating and starting with ``1 - initial``.
    """

    __slots__ = ("initial", "times", "values")

    def __init__(self, initial: int,
                 transitions: Iterable[tuple[float, int]] = ()):
        if initial not in (0, 1):
            raise TraceError(f"initial value must be 0 or 1, got "
                             f"{initial!r}")
        times: list[float] = []
        values: list[int] = []
        previous = initial
        for time, value in transitions:
            time = float(time)
            value = int(value)
            if value not in (0, 1):
                raise TraceError(f"transition value must be 0 or 1, got "
                                 f"{value!r}")
            if value == previous:
                raise TraceError(
                    f"non-alternating transition to {value} at {time}")
            if times and time <= times[-1]:
                raise TraceError(
                    f"transition times must increase: {time} after "
                    f"{times[-1]}")
            if not math.isfinite(time):
                raise TraceError("transition times must be finite")
            times.append(time)
            values.append(value)
            previous = value
        self.initial = int(initial)
        self.times: tuple[float, ...] = tuple(times)
        self.values: tuple[int, ...] = tuple(values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, value: int) -> "DigitalTrace":
        """A trace that never switches."""
        return cls(value, ())

    @classmethod
    def from_transitions(cls, transitions: Sequence[tuple[float, int]],
                         initial: int | None = None) -> "DigitalTrace":
        """Build a trace, inferring the initial value if not given."""
        if initial is None:
            initial = 1 - int(transitions[0][1]) if transitions else 0
        return cls(initial, transitions)

    @classmethod
    def from_edges(cls, initial: int,
                   times: Sequence[float]) -> "DigitalTrace":
        """Build from toggle times only (values alternate from initial)."""
        value = initial
        transitions = []
        for time in times:
            value = 1 - value
            transitions.append((time, value))
        return cls(initial, transitions)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.times)

    def __bool__(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DigitalTrace):
            return NotImplemented
        return (self.initial == other.initial
                and self.times == other.times
                and self.values == other.values)

    def __hash__(self) -> int:
        return hash((self.initial, self.times, self.values))

    @property
    def transitions(self) -> list[tuple[float, int]]:
        """``(time, value)`` pairs as a list."""
        return list(zip(self.times, self.values))

    @property
    def final_value(self) -> int:
        """Logic value after the last transition."""
        return self.values[-1] if self.values else self.initial

    def value_at(self, t: float) -> int:
        """Logic value at time *t* (right-continuous convention)."""
        index = bisect.bisect_right(self.times, t)
        if index == 0:
            return self.initial
        return self.values[index - 1]

    def value_before(self, t: float) -> int:
        """Logic value immediately before time *t*."""
        index = bisect.bisect_left(self.times, t)
        if index == 0:
            return self.initial
        return self.values[index - 1]

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------

    def shifted(self, dt: float) -> "DigitalTrace":
        """Return a copy with all transition times shifted by *dt*."""
        return DigitalTrace(self.initial,
                            [(t + dt, v) for t, v in self.transitions])

    def windowed(self, t_start: float, t_end: float) -> "DigitalTrace":
        """Restrict to ``[t_start, t_end)``, re-anchoring the initial value."""
        if t_end < t_start:
            raise TraceError("need t_start <= t_end")
        initial = self.value_before(t_start)
        kept = [(t, v) for t, v in self.transitions
                if t_start <= t < t_end]
        return DigitalTrace(initial, kept)

    def inverted(self) -> "DigitalTrace":
        """Logical complement of the trace."""
        return DigitalTrace(1 - self.initial,
                            [(t, 1 - v) for t, v in self.transitions])

    def pulses(self) -> list[tuple[float, float, int]]:
        """``(start, end, value)`` intervals between transitions.

        The leading (from −inf) and trailing (to +inf) intervals are not
        included.
        """
        out = []
        for (t0, v0), (t1, _v1) in zip(self.transitions,
                                       self.transitions[1:]):
            out.append((t0, t1, v0))
        return out

    def __repr__(self) -> str:
        return (f"DigitalTrace(initial={self.initial}, "
                f"{len(self.times)} transitions)")
