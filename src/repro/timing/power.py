"""Switching-activity and dynamic-power metrics.

The Involution Tool's second application (beyond timing accuracy) is
power estimation: a delay model that predicts transitions faithfully —
including glitches — also predicts dynamic power, since every output
transition (dis)charges the load.  This module provides the standard
activity metrics:

* transition counts per signal/window,
* glitch counts (pulses narrower than a threshold),
* dynamic switching energy ``E = N · ½ C V²``,
* a per-signal :class:`PowerReport` and the *transition-count error* of
  a delay model against a golden reference — the power-oriented
  counterpart of the deviation-area metric.
"""

from __future__ import annotations

import dataclasses

from ..errors import ParameterError, TraceError
from .trace import DigitalTrace

__all__ = [
    "transition_count",
    "glitch_count",
    "dynamic_energy",
    "PowerReport",
    "power_report",
    "transition_count_error",
]


def transition_count(trace: DigitalTrace,
                     t_start: float = float("-inf"),
                     t_end: float = float("inf")) -> int:
    """Number of transitions in ``[t_start, t_end)``."""
    if t_end < t_start:
        raise TraceError("need t_start <= t_end")
    return sum(1 for t in trace.times if t_start <= t < t_end)


def glitch_count(trace: DigitalTrace, min_width: float) -> int:
    """Number of pulses narrower than *min_width*.

    Counts both polarities; the trailing (unterminated) level is not a
    pulse.
    """
    if min_width <= 0.0:
        raise ParameterError("min_width must be positive")
    return sum(1 for start, end, _v in trace.pulses()
               if end - start < min_width)


def dynamic_energy(trace: DigitalTrace, capacitance: float,
                   vdd: float,
                   t_start: float = float("-inf"),
                   t_end: float = float("inf")) -> float:
    """Dynamic switching energy ``N · ½ C V²`` in joules.

    Every output transition moves ``C·VDD`` of charge through half the
    supply swing on average — the textbook CV² accounting with the ½
    factor per edge.
    """
    if capacitance < 0.0 or vdd <= 0.0:
        raise ParameterError("need capacitance >= 0 and vdd > 0")
    count = transition_count(trace, t_start, t_end)
    return 0.5 * count * capacitance * vdd * vdd


@dataclasses.dataclass(frozen=True)
class PowerReport:
    """Activity summary of a set of signals.

    Attributes:
        counts: signal -> transition count.
        glitches: signal -> glitch count.
        energies: signal -> switching energy, joules.
        window: accounted time window ``(t_start, t_end)``.
    """

    counts: dict[str, int]
    glitches: dict[str, int]
    energies: dict[str, float]
    window: tuple[float, float]

    @property
    def total_energy(self) -> float:
        """Total switching energy, joules."""
        return sum(self.energies.values())

    @property
    def total_transitions(self) -> int:
        return sum(self.counts.values())

    @property
    def average_power(self) -> float:
        """Mean dynamic power over the window, watts."""
        span = self.window[1] - self.window[0]
        if span <= 0.0:
            raise ParameterError("window has zero length")
        return self.total_energy / span


def power_report(traces: dict[str, DigitalTrace],
                 capacitances: dict[str, float],
                 vdd: float,
                 t_start: float, t_end: float,
                 glitch_width: float | None = None) -> PowerReport:
    """Build a :class:`PowerReport` for the given signals.

    Args:
        traces: signal traces (only those with a capacitance entry are
            accounted).
        capacitances: signal -> switched load capacitance.
        vdd: supply voltage.
        t_start / t_end: accounting window.
        glitch_width: pulses narrower than this count as glitches
            (default: no glitch accounting).
    """
    counts: dict[str, int] = {}
    glitches: dict[str, int] = {}
    energies: dict[str, float] = {}
    for name, capacitance in capacitances.items():
        if name not in traces:
            raise TraceError(f"no trace for signal {name!r}")
        trace = traces[name]
        counts[name] = transition_count(trace, t_start, t_end)
        energies[name] = dynamic_energy(trace, capacitance, vdd,
                                        t_start, t_end)
        glitches[name] = (glitch_count(trace, glitch_width)
                          if glitch_width is not None else 0)
    return PowerReport(counts=counts, glitches=glitches,
                       energies=energies, window=(t_start, t_end))


def transition_count_error(model: DigitalTrace,
                           reference: DigitalTrace,
                           t_start: float, t_end: float) -> int:
    """Signed transition-count difference of a model vs the reference.

    Positive: the model predicts spurious transitions (over-counts
    power); negative: it swallows real ones (e.g. inertial filtering of
    glitches that the analog gate does produce).
    """
    return (transition_count(model, t_start, t_end)
            - transition_count(reference, t_start, t_end))
