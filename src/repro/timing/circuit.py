"""Gate-level timing circuits.

A :class:`TimingCircuit` is a feed-forward netlist of zero-time boolean
gates, each followed by a delay channel (the involution-model circuit
structure), plus the paper's two-input hybrid NOR instances which fuse
gate and channel into one element.

Feed-forward is all the paper's evaluation needs (a single NOR gate in
Section VI; inverter chains and trees in the Involution Tool paper), and
it admits an exact topological-order simulation — every signal's full
trace is computed before its consumers run (:mod:`.simulator`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping, Sequence

import networkx as nx

from ..errors import NetlistError
from ..wire.model import WireTiming, reduce_tree
from ..wire.tree import WireTree
from .channels.base import SingleInputChannel
from .channels.hybrid import HybridNorChannel
from .channels.multi_input import GeneralizedNorChannel
from .channels.pure import PureDelayChannel
from .channels.table import TableDelayChannel
from .gates import gate_function

__all__ = ["GateInstance", "HybridInstance", "MultiInputInstance",
           "WireInstance", "TimingCircuit"]

#: Channel types usable as fused MIS elements: they consume all input
#: traces directly via ``simulate(*traces)`` and report their boolean
#: steady state via ``initial_output(*values)``.
MIS_CHANNEL_TYPES = (HybridNorChannel, TableDelayChannel,
                     GeneralizedNorChannel)


@dataclasses.dataclass(frozen=True)
class GateInstance:
    """A zero-time gate plus its output channel."""

    name: str
    function: Callable[..., int]
    inputs: tuple[str, ...]
    output: str
    channel: SingleInputChannel


@dataclasses.dataclass(frozen=True)
class HybridInstance:
    """A fused two-input MIS element (gate and channel in one).

    The channel consumes both input traces directly — either the
    paper's hybrid ODE NOR (:class:`HybridNorChannel`) or a
    characterized-table replay (:class:`TableDelayChannel`, NOR or
    NAND conventions per its table).
    """

    name: str
    input_a: str
    input_b: str
    output: str
    channel: HybridNorChannel | TableDelayChannel

    @property
    def inputs(self) -> tuple[str, ...]:
        """The input signal pair (n-input-instance-compatible view)."""
        return (self.input_a, self.input_b)


@dataclasses.dataclass(frozen=True)
class MultiInputInstance:
    """A fused n-input MIS element (gate and channel in one).

    The generalization of :class:`HybridInstance` beyond two inputs:
    the channel consumes all n input traces directly — the exact
    eigen-solved automaton (:class:`GeneralizedNorChannel`) or an
    n-input characterized-table replay (:class:`TableDelayChannel`
    with a ``nor<n>`` table).
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    channel: GeneralizedNorChannel | TableDelayChannel


@dataclasses.dataclass(frozen=True)
class WireInstance:
    """One sink of an RC wire tree as a circuit element.

    A wire is logically an identity buffer with a direction-symmetric
    delay (linear RC): the element forwards its input trace shifted
    by the reduced-order wire delay of its sink.  A multi-sink tree
    becomes one :class:`WireInstance` per sink, all sharing the same
    :class:`~repro.wire.tree.WireTree` (see
    :meth:`TimingCircuit.add_wire`).

    Attributes
    ----------
    name : str
        Instance name (``<wire>.<sink>`` for multi-sink trees).
    inputs : tuple of str
        The single driving signal (the tree root's net).
    output : str
        The signal this sink drives.
    sink : str
        Sink node name inside the tree.
    tree : WireTree
        The shared RC tree.
    delay_model : str
        Reduced-order model the delay came from (``"elmore"`` or
        ``"two_pole"``).
    delay : float
        Effective arc/channel delay, seconds (slew derate included).
    slew : float
        10–90 % step-response slew at the sink, seconds.
    channel : PureDelayChannel
        Symmetric pure-delay channel used by the event/trace
        simulators, carrying exactly :attr:`delay`.
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    sink: str
    tree: WireTree
    delay_model: str
    delay: float
    slew: float
    channel: PureDelayChannel

    @property
    def function(self) -> Callable[..., int]:
        """Identity boolean function (wires don't invert)."""
        return _wire_identity


def _wire_identity(value: int) -> int:
    return value


class TimingCircuit:
    """A feed-forward circuit of channels and gates.

    Args:
        inputs: names of the primary input signals.
    """

    def __init__(self, inputs: Sequence[str]):
        self.inputs: tuple[str, ...] = tuple(inputs)
        if len(set(self.inputs)) != len(self.inputs):
            raise NetlistError("duplicate primary input names")
        self.instances: list[GateInstance | HybridInstance
                             | MultiInputInstance
                             | WireInstance] = []
        self._drivers: dict[str, GateInstance | HybridInstance
                            | MultiInputInstance
                            | WireInstance] = {}

    # ------------------------------------------------------------------

    def _register(self, instance) -> None:
        if instance.output in self._drivers or \
                instance.output in self.inputs:
            raise NetlistError(f"signal {instance.output!r} has multiple "
                               "drivers")
        if any(inst.name == instance.name for inst in self.instances):
            raise NetlistError(f"duplicate instance name "
                               f"{instance.name!r}")
        self.instances.append(instance)
        self._drivers[instance.output] = instance

    def add_gate(self, name: str, gate: str | Callable[..., int],
                 inputs: Sequence[str], output: str,
                 channel: SingleInputChannel) -> GateInstance:
        """Add a zero-time gate followed by a single-input channel."""
        function = gate_function(gate) if isinstance(gate, str) else gate
        instance = GateInstance(name=name, function=function,
                                inputs=tuple(inputs), output=output,
                                channel=channel)
        self._register(instance)
        return instance

    def add_mis_gate(self, name: str, input_a, input_b=None,
                     output=None, channel=None
                     ) -> HybridInstance | MultiInputInstance:
        """Add a fused MIS element (hybrid, generalized or table).

        Two call forms::

            circuit.add_mis_gate("g0", "a", "b", "y", channel)
            circuit.add_mis_gate("g0", ["a", "b", "c"], "y", channel)

        The first is the paper's two-input form; the second passes a
        *sequence* of input signals and builds an n-input instance
        (an :class:`HybridInstance` for exactly two inputs, a
        :class:`MultiInputInstance` otherwise) — ``output`` and
        ``channel`` may be given positionally or as keywords.  The
        channel's input count must match.

        Raises:
            NetlistError: if the channel is not a MIS channel type,
                its input count does not match the signals, or the
                arguments are incomplete/ambiguous.
        """
        if isinstance(input_a, str):
            inputs = (input_a, input_b)
        else:
            # n-input form: (name, inputs, output, channel).  With
            # all-positional arguments the values arrive shifted one
            # slot left; with keywords they land on their names.
            inputs = tuple(input_a)
            if channel is None:
                output, channel = input_b, output
            elif output is None:
                output, input_b = input_b, None
            elif input_b is not None:
                raise NetlistError(
                    f"MIS gate {name!r}: got both positional and "
                    "keyword placements for output/channel")
            if not isinstance(output, str) or channel is None:
                raise NetlistError(
                    f"MIS gate {name!r}: the n-input form needs "
                    "(inputs, output, channel)")
        if not isinstance(channel, MIS_CHANNEL_TYPES):
            raise NetlistError(
                f"MIS gate {name!r} needs a MIS channel "
                f"({', '.join(t.__name__ for t in MIS_CHANNEL_TYPES)}), "
                f"got {type(channel).__name__}")
        if len(inputs) < 2 or any(not isinstance(s, str)
                                  for s in inputs):
            raise NetlistError(
                f"MIS gate {name!r} needs at least two input signal "
                "names")
        expected = getattr(channel, "inputs", 2)
        if expected != len(inputs):
            raise NetlistError(
                f"MIS gate {name!r}: channel expects {expected} "
                f"inputs, got {len(inputs)} signals")
        if len(inputs) == 2 and isinstance(
                channel, (HybridNorChannel, TableDelayChannel)):
            instance: HybridInstance | MultiInputInstance = \
                HybridInstance(name=name, input_a=inputs[0],
                               input_b=inputs[1], output=output,
                               channel=channel)
        else:
            instance = MultiInputInstance(name=name, inputs=inputs,
                                          output=output,
                                          channel=channel)
        self._register(instance)
        return instance

    def add_hybrid_nor(self, name: str, input_a: str, input_b: str,
                       output: str,
                       channel: HybridNorChannel) -> HybridInstance:
        """Add a two-input hybrid NOR element."""
        return self.add_mis_gate(name, input_a, input_b, output,
                                 channel)

    def add_wire(self, name: str, input_signal: str, tree: WireTree,
                 outputs: "str | Sequence[str] | Mapping[str, str]",
                 delay_model: str = "elmore",
                 slew_derate: float = 0.0,
                 ) -> list[WireInstance]:
        """Attach an RC wire tree between *input_signal* and sinks.

        The tree is reduced once (:func:`repro.wire.model.reduce_tree`)
        and becomes one :class:`WireInstance` per sink — the STA graph
        grows a wire arc per sink, and the event/trace simulators see
        a pure-delay identity buffer, so both stay in exact agreement.

        Parameters
        ----------
        name : str
            Wire name; multi-sink instances are ``<name>.<sink>``.
        input_signal : str
            The signal driving the tree root (the gate output net).
            Remember to build the *driving* gate with
            :func:`repro.wire.loaded_params` so it prices the wire's
            capacitance.
        tree : WireTree
            The RC tree.
        outputs : str, sequence, or mapping
            Signal name(s) the sinks drive: a single name (one-sink
            trees), a sequence aligned with ``tree.sinks``, or a
            mapping ``{sink: signal}`` covering every sink.
        delay_model : str, optional
            ``"elmore"`` (default — the slow-edge crossing shift,
            exact in the regime gate-driven wires sit in) or
            ``"two_pole"`` (the step-response 50 % crossing).
        slew_derate : float, optional
            Fraction of the sink slew added to the arc delay as a
            first-order receiver-degradation penalty (default 0).

        Returns
        -------
        list of WireInstance
            The created instances, in ``tree.sinks`` order.
        """
        if isinstance(outputs, str):
            outputs = (outputs,)
        if isinstance(outputs, Mapping):
            missing = set(tree.sinks) - set(outputs)
            extra = set(outputs) - set(tree.sinks)
            if missing or extra:
                raise NetlistError(
                    f"wire {name!r}: outputs must map exactly the "
                    f"sinks {tree.sinks}; missing {sorted(missing)}, "
                    f"unknown {sorted(extra)}")
            signal_for = dict(outputs)
        else:
            outputs = tuple(outputs)
            if len(outputs) != len(tree.sinks):
                raise NetlistError(
                    f"wire {name!r}: {len(tree.sinks)} sink(s) but "
                    f"{len(outputs)} output signal(s)")
            signal_for = dict(zip(tree.sinks, outputs))
        if not slew_derate >= 0.0:
            raise NetlistError(
                f"wire {name!r}: slew_derate must be non-negative")
        timing: WireTiming = reduce_tree(tree, model=delay_model)
        instances = []
        for sink_timing in timing.sinks:
            sink = sink_timing.sink
            delay = sink_timing.delay + slew_derate * sink_timing.slew
            instance = WireInstance(
                name=name if len(tree.sinks) == 1
                else f"{name}.{sink}",
                inputs=(input_signal,),
                output=signal_for[sink],
                sink=sink,
                tree=tree,
                delay_model=delay_model,
                delay=delay,
                slew=sink_timing.slew,
                channel=PureDelayChannel(delay, label=f"wire:{sink}"))
            self._register(instance)
            instances.append(instance)
        return instances

    # ------------------------------------------------------------------

    @property
    def signals(self) -> list[str]:
        """All signal names (inputs + gate outputs)."""
        return list(self.inputs) + [inst.output for inst in self.instances]

    def instance_inputs(self, instance) -> tuple[str, ...]:
        """Input signal names of any instance kind."""
        return tuple(instance.inputs)

    def topological_order(self) -> list:
        """Instances sorted so that drivers precede consumers.

        Raises:
            NetlistError: on combinational loops or undriven signals.
        """
        graph = nx.DiGraph()
        for instance in self.instances:
            graph.add_node(instance.name)
        by_output = {inst.output: inst for inst in self.instances}
        known = set(self.inputs) | set(by_output)
        for instance in self.instances:
            for signal in self.instance_inputs(instance):
                if signal not in known:
                    raise NetlistError(
                        f"signal {signal!r} used by {instance.name!r} "
                        "has no driver")
                if signal in by_output:
                    graph.add_edge(by_output[signal].name, instance.name)
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise NetlistError("combinational loop in timing circuit") \
                from exc
        by_name = {inst.name: inst for inst in self.instances}
        return [by_name[name] for name in order]
