"""Zero-time boolean gates.

In the involution delay model all logic is instantaneous; delays live
exclusively in the channels.  A gate is just a boolean function applied
transition-by-transition to its input traces.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..errors import TraceError
from .trace import DigitalTrace

__all__ = ["GATE_FUNCTIONS", "zero_time_gate", "gate_function"]


def _nor(*inputs: int) -> int:
    return int(not any(inputs))


def _nand(*inputs: int) -> int:
    return int(not all(inputs))


def _and(*inputs: int) -> int:
    return int(all(inputs))


def _or(*inputs: int) -> int:
    return int(any(inputs))


def _xor(*inputs: int) -> int:
    return int(sum(inputs) % 2)


def _not(value: int) -> int:
    return int(not value)


def _buf(value: int) -> int:
    return int(value)


#: Registry of named gate functions.
GATE_FUNCTIONS: dict[str, Callable[..., int]] = {
    "nor": _nor,
    "nand": _nand,
    "and": _and,
    "or": _or,
    "xor": _xor,
    "not": _not,
    "inv": _not,
    "buf": _buf,
}


def gate_function(name: str) -> Callable[..., int]:
    """Look up a gate function by name."""
    try:
        return GATE_FUNCTIONS[name]
    except KeyError as exc:
        raise TraceError(f"unknown gate {name!r}; available: "
                         f"{sorted(GATE_FUNCTIONS)}") from exc


def zero_time_gate(function: Callable[..., int],
                   inputs: Sequence[DigitalTrace]) -> DigitalTrace:
    """Apply a boolean function to input traces with zero delay.

    The output trace switches exactly at input transition times (where
    the function value changes).  Simultaneous input transitions are
    evaluated atomically — a NOR whose inputs swap 01 -> 10 at the same
    instant produces no glitch.
    """
    if not inputs:
        raise TraceError("gate needs at least one input")
    values = [trace.initial for trace in inputs]
    initial = function(*values)

    merged: dict[float, list[tuple[int, int]]] = {}
    for index, trace in enumerate(inputs):
        for t, v in trace.transitions:
            merged.setdefault(t, []).append((index, v))

    transitions: list[tuple[float, int]] = []
    current = initial
    for t in sorted(merged):
        for index, v in merged[t]:
            values[index] = v
        new_value = function(*values)
        if new_value != current:
            transitions.append((t, new_value))
            current = new_value
    return DigitalTrace(initial, transitions)
