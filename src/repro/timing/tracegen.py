"""Random input-trace generation (paper Section VI).

The paper evaluates delay models on randomly generated input traces with
two configurations:

* **LOCAL** — "transitions are created individually for each input,
  according to a normal distribution with µ and σ": every input gets its
  own independent stream of inter-transition times ``~ N(µ, σ)``.
  Different inputs therefore switch in close temporal proximity often,
  exercising the MIS region.
* **GLOBAL** — "transitions are not calculated separately for each input
  but rather for all inputs together": a single global stream of
  transition instants is generated and each instant is assigned to one
  input (uniformly at random).  Concurrent transitions on different
  inputs become unlikely, probing the large-|Δ| regime.

Waveform configurations are written ``µ/σ`` in ps in the paper, e.g.
``100/50 - LOCAL`` or ``5000/5 - GLOBAL``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..errors import ParameterError
from ..units import PS
from .trace import DigitalTrace

__all__ = ["WaveformConfig", "PAPER_CONFIGS", "generate_traces"]


@dataclasses.dataclass(frozen=True)
class WaveformConfig:
    """One random-trace configuration of the paper's Fig. 7.

    Attributes:
        mu: mean inter-transition time, seconds.
        sigma: standard deviation of the inter-transition time, seconds.
        mode: ``'local'`` or ``'global'``.
        transitions: total number of transitions to generate (the paper
            uses 500, and 250 for the 5000/5 configuration).
    """

    mu: float
    sigma: float
    mode: str
    transitions: int = 500

    def __post_init__(self) -> None:
        if self.mode not in ("local", "global"):
            raise ParameterError("mode must be 'local' or 'global'")
        if self.mu <= 0.0 or self.sigma < 0.0:
            raise ParameterError("need mu > 0 and sigma >= 0")
        if self.transitions < 1:
            raise ParameterError("need at least one transition")

    @property
    def label(self) -> str:
        """Paper-style label like ``'100/50 - LOCAL'``."""
        return (f"{self.mu / PS:.0f}/{self.sigma / PS:.0f} - "
                f"{self.mode.upper()}")


#: The four waveform configurations of the paper's Fig. 7.
PAPER_CONFIGS: tuple[WaveformConfig, ...] = (
    WaveformConfig(mu=100 * PS, sigma=50 * PS, mode="local",
                   transitions=500),
    WaveformConfig(mu=200 * PS, sigma=100 * PS, mode="local",
                   transitions=500),
    WaveformConfig(mu=2000 * PS, sigma=1000 * PS, mode="global",
                   transitions=500),
    WaveformConfig(mu=5000 * PS, sigma=5 * PS, mode="global",
                   transitions=250),
)


def _intervals(config: WaveformConfig, count: int,
               rng: np.random.Generator, min_gap: float) -> np.ndarray:
    """Positive inter-transition intervals ~ N(µ, σ), floored."""
    draws = rng.normal(config.mu, config.sigma, size=count)
    return np.maximum(draws, min_gap)


def generate_traces(config: WaveformConfig,
                    input_names: Sequence[str],
                    seed: int | np.random.Generator = 0,
                    t_start: float = 0.0,
                    initial_values: dict[str, int] | None = None,
                    min_gap: float = 1.0 * PS
                    ) -> dict[str, DigitalTrace]:
    """Generate random input traces for the given configuration.

    Args:
        config: the waveform configuration.
        input_names: signals to drive.
        seed: RNG seed or generator.
        t_start: time of the earliest possible transition.
        initial_values: starting logic value per input (default all 0).
        min_gap: floor on inter-transition intervals (normal draws can
            be negative; the paper's generator has the same need).

    Returns:
        A trace per input with ``config.transitions`` transitions in
        total (split across inputs as per the mode).
    """
    if not input_names:
        raise ParameterError("need at least one input name")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    if initial_values is None:
        initial_values = {}

    names = list(input_names)
    per_input_events: dict[str, list[float]] = {name: [] for name in names}

    if config.mode == "local":
        base, remainder = divmod(config.transitions, len(names))
        for index, name in enumerate(names):
            count = base + (1 if index < remainder else 0)
            gaps = _intervals(config, count, rng, min_gap)
            times = t_start + np.cumsum(gaps)
            per_input_events[name] = [float(t) for t in times]
    else:
        gaps = _intervals(config, config.transitions, rng, min_gap)
        times = t_start + np.cumsum(gaps)
        owners = rng.integers(0, len(names), size=config.transitions)
        for t, owner in zip(times, owners):
            per_input_events[names[owner]].append(float(t))

    traces: dict[str, DigitalTrace] = {}
    for name in names:
        initial = int(initial_values.get(name, 0))
        traces[name] = DigitalTrace.from_edges(initial,
                                               per_input_events[name])
    return traces
