"""Trace-comparison metrics — the paper's "deviation area".

Section VI of the paper scores a digital delay model by the *deviation
area*: the digitized reference (SPICE) trace is subtracted from the
model's output trace and the absolute difference is integrated over the
simulation window.  Since both traces are 0/1-valued, the deviation area
equals the total time during which the two traces disagree.  Absolute
areas are meaningless on their own, so they are normalized against a
baseline model (inertial delay in the paper, Fig. 7).
"""

from __future__ import annotations

import dataclasses

from ..errors import TraceError
from .trace import DigitalTrace

__all__ = ["deviation_area", "normalized_deviation", "AccuracyReport"]


def deviation_area(a: DigitalTrace, b: DigitalTrace,
                   t_start: float, t_end: float) -> float:
    """Integral of ``|a(t) − b(t)|`` over ``[t_start, t_end]``.

    For 0/1 traces this is the total disagreement time, in seconds.
    """
    if t_end < t_start:
        raise TraceError("need t_start <= t_end")

    events = sorted(
        {t_start, t_end}
        | {t for t in a.times if t_start < t < t_end}
        | {t for t in b.times if t_start < t < t_end})
    area = 0.0
    for left, right in zip(events, events[1:]):
        if a.value_at(left) != b.value_at(left):
            area += right - left
    # The disagreement intervals partition a subset of the window, so
    # mathematically area <= t_end - t_start; summing many interval
    # lengths can overshoot the bound by a few ULPs, so clamp.
    return min(area, t_end - t_start)


def normalized_deviation(model: DigitalTrace, reference: DigitalTrace,
                         baseline: DigitalTrace,
                         t_start: float, t_end: float) -> float:
    """Deviation area of *model*, normalized by that of *baseline*.

    This is the quantity plotted in the paper's Fig. 7 (inertial delay
    as baseline; lower is better, 1.0 means "as good as the baseline").
    """
    model_area = deviation_area(model, reference, t_start, t_end)
    baseline_area = deviation_area(baseline, reference, t_start, t_end)
    if baseline_area == 0.0:
        raise TraceError("baseline deviation area is zero; "
                         "normalization undefined")
    return model_area / baseline_area


@dataclasses.dataclass(frozen=True)
class AccuracyReport:
    """Deviation areas of several models against one reference.

    Attributes:
        areas: model label -> absolute deviation area, seconds.
        t_start: window start.
        t_end: window end.
    """

    areas: dict[str, float]
    t_start: float
    t_end: float

    def normalized(self, baseline: str) -> dict[str, float]:
        """Areas divided by the *baseline* model's area."""
        base = self.areas[baseline]
        if base == 0.0:
            raise TraceError(f"baseline {baseline!r} has zero area")
        return {label: area / base for label, area in self.areas.items()}

    def best(self) -> str:
        """Label of the most accurate model."""
        return min(self.areas, key=self.areas.get)
