"""Statistical STA: Monte-Carlo timing distributions and yield.

:func:`repro.sta.sweep_corners` already propagates *arrays* of
arrivals through a timing graph with one corner axis — statistical
STA is that same call with the corner axis filled by seeded draws: a
parameter set per corner (drawn from a
:class:`~repro.stats.distributions.ParameterDistribution`) and,
optionally, normally-jittered input arrivals.  The per-corner worst
slack then *is* the slack distribution, and timing yield is the
fraction of corners meeting the requirement.

Slacks and arrivals are snapped to the determinism grid
(:func:`repro.stats.montecarlo.quantize`) before the yield
comparison and the moment reductions, so identical seeds give
byte-identical yields across processes and engine backends — the
same contract as the Monte-Carlo delay path.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.blocks import parameters_at
from ..errors import ParameterError
from ..obs.trace import span as _span
from .montecarlo import _counter, quantize

__all__ = ["TimingYield", "timing_yield"]


@dataclasses.dataclass(frozen=True)
class TimingYield:
    """Monte-Carlo timing distribution of one circuit.

    Produced by :func:`timing_yield`; all arrays are quantized to
    the determinism grid.

    Parameters
    ----------
    samples : int
        Monte-Carlo corner count.
    required : float or None
        Endpoint requirement in seconds (``None`` = unconstrained,
        yield 1.0 by definition).
    yield_fraction : float
        Fraction of corners with non-negative worst slack.
    worst_arrival : numpy.ndarray
        Per-corner worst endpoint arrival, seconds, shape
        ``(samples,)``.
    worst_slack : numpy.ndarray
        Per-corner worst endpoint slack, seconds (``+inf`` when
        unconstrained).
    """

    samples: int
    required: "float | None"
    yield_fraction: float
    worst_arrival: np.ndarray
    worst_slack: np.ndarray

    def arrival_stats(self) -> dict:
        """``mean`` / ``std`` / ``min`` / ``max`` of the worst
        arrival, seconds (ddof = 1)."""
        finite = self.worst_arrival[np.isfinite(self.worst_arrival)]
        if finite.size == 0:
            nan = float("nan")
            return {"mean": nan, "std": nan, "min": nan, "max": nan}
        std = float(finite.std(ddof=1)) if finite.size > 1 else 0.0
        return {"mean": float(finite.mean()), "std": std,
                "min": float(finite.min()),
                "max": float(finite.max())}


def timing_yield(graph, distribution, *, samples: int,
                 seed: int = 0, required: "float | None" = None,
                 arrivals=None, arrival_sigma: float = 0.0,
                 mode: str = "max", per_instance: bool = False,
                 scalar: bool = False) -> TimingYield:
    """Monte-Carlo arrival/slack distribution and timing yield.

    Draws one parameter set per corner from *distribution* (plus
    optional Gaussian input-arrival jitter) and sweeps the whole
    corner axis through :func:`repro.sta.sweep_corners` in one
    array-native pass.

    Parameters
    ----------
    graph : TimingGraph
        The lowered circuit (e.g. ``session.timing_graph("tree")``).
    distribution : ParameterDistribution
        Per-corner parameter distribution.
    samples : int
        Monte-Carlo corner count (>= 1).
    seed : int, optional
        Draw seed (default 0).  Parameter draws consume
        ``seed`` itself; arrival jitter uses the derived stream
        ``[seed, 1]`` so the two are independent but jointly
        reproducible.
    required : float, optional
        Endpoint requirement in seconds; ``None`` (default) reports
        an unconstrained distribution with yield 1.0.
    arrivals : mapping, optional
        Nominal input arrivals ``{signal: seconds}`` (default: all
        zero).  Unknown signals are rejected by the sweep.
    arrival_sigma : float, optional
        Absolute σ of Gaussian jitter added to every input arrival,
        seconds (default 0.0, deterministic arrivals).
    mode : str, optional
        ``"max"`` (default) or ``"min"`` analysis.
    per_instance : bool, optional
        Draw an *independent* parameter sample per circuit instance
        (local/uncorrelated process variation) instead of one shared
        sample per corner (fully correlated, the default).  Instance
        *k* of *n* consumes rows ``[k·samples, (k+1)·samples)`` of a
        single ``samples × n`` block drawn with *seed*, so results
        stay byte-identical across backends and are stable under
        `scalar=True`.
    scalar : bool, optional
        Use the per-corner reference loop
        (:func:`repro.sta.sweep_corners_scalar`) instead of the
        vectorized sweep — the parity/benchmark baseline (default
        False).

    Returns
    -------
    TimingYield
        Quantized distribution and yield; byte-identical for
        identical seeds across processes and backends.
    """
    from ..sta import sweep_corners, sweep_corners_scalar

    if samples < 1:
        raise ParameterError(
            f"need at least one sample, got {samples}")
    if arrival_sigma < 0.0:
        raise ParameterError(
            f"arrival_sigma must be >= 0, got {arrival_sigma}")
    if per_instance:
        names = [inst.name for inst in graph.circuit.instances]
        if names:
            block = distribution.sample_block(
                samples * len(names), seed)
            params_axis = {
                name: [parameters_at(block, k * samples + i)
                       for i in range(samples)]
                for k, name in enumerate(names)}
        else:
            params_axis = None
    else:
        block = distribution.sample_block(samples, seed)
        params_axis = [parameters_at(block, i)
                       for i in range(samples)]

    base = dict(arrivals or {})
    spec: dict = {}
    if arrival_sigma > 0.0:
        rng = np.random.default_rng([int(seed), 1])
        for signal in graph.inputs:
            jitter = arrival_sigma * rng.standard_normal(samples)
            spec[signal] = float(base.get(signal, 0.0)) + jitter
    else:
        spec = base

    sweep_fn = sweep_corners_scalar if scalar else sweep_corners
    with _span("stats.sta", samples=int(samples), mode=mode,
               per_instance=bool(per_instance),
               scalar=bool(scalar)):
        sweep = sweep_fn(graph, params=params_axis, arrivals=spec,
                         mode=mode, required=required)
    _counter("yield").inc(int(samples))
    worst = quantize(sweep.worst_arrival())
    slack = quantize(sweep.worst_slack())
    return TimingYield(
        samples=int(samples), required=required,
        yield_fraction=float(np.mean(slack >= 0.0)),
        worst_arrival=worst, worst_slack=slack)
