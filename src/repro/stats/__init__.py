"""Statistical delay modeling: Monte-Carlo + collocation surrogate.

Process variation turns every delay of the hybrid model into a random
variable.  This package treats that, deliberately, as a *throughput*
problem first (ROADMAP item 2; the approach follows the probabilistic
collocation line of arXiv 0710.4634 applied to the DATE-2022 hybrid
model):

* :mod:`~repro.stats.distributions` — seeded, composable parameter
  distributions (normal / lognormal, equicorrelated via Cholesky)
  that draw whole **sample blocks**: structured NumPy arrays with one
  hybrid-model parameter set per record.
* :mod:`~repro.stats.montecarlo` — vectorized Monte-Carlo sampling:
  N samples × M Δ-points flatten into *one* block-kernel engine call
  per direction (:mod:`repro.engine.blocks`), with moment /
  percentile / histogram reductions over a canonically quantized
  sample matrix so every backend produces byte-identical summaries.
* :mod:`~repro.stats.surrogate` — a probabilistic-collocation
  (polynomial-chaos) surrogate fitted on a deterministic
  Gauss-Hermite design, reproducing MC moments at a small fraction
  of the sample count; fitted coefficients persist in the
  :mod:`repro.cache` disk store keyed by content hash.
* :mod:`~repro.stats.timing` — statistical STA: Monte-Carlo
  arrival/slack distributions and timing yield through the
  array-native corner axis of :func:`repro.sta.sweep_corners`.

The ``repro stats`` CLI subcommand and the ``StatsRequest`` /
``StatsResult`` envelope kinds of :mod:`repro.api` expose the same
entry points end-to-end; ``benchmarks/bench_stats.py`` records the
vectorized-vs-scalar throughput and the surrogate error/speedup.

Determinism contract: every public entry point takes an explicit
``seed`` and reduces over :func:`~repro.stats.montecarlo.quantize`-d
samples, so identical seeds give byte-identical results across
processes *and* across the ``reference`` / ``vectorized`` /
``parallel`` engines (shard-order differences sit ~10 orders of
magnitude below the quantization step).
"""

from .distributions import VARIABLE_PARAMS, ParameterDistribution
from .montecarlo import (QUANT_STEP, DelaySummary, monte_carlo,
                         quantize, sample_delays)
from .surrogate import DelaySurrogate, fit_surrogate
from .timing import TimingYield, timing_yield

__all__ = [
    "QUANT_STEP",
    "VARIABLE_PARAMS",
    "DelaySummary",
    "DelaySurrogate",
    "ParameterDistribution",
    "TimingYield",
    "fit_surrogate",
    "monte_carlo",
    "quantize",
    "sample_delays",
    "timing_yield",
]
