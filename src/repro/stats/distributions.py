"""Seeded parameter distributions drawing whole sample blocks.

A :class:`ParameterDistribution` describes how the electrical
parameters of the hybrid NOR model vary around a nominal set: each
varied parameter carries a *relative* spread, the family is
``lognormal`` (mean-preserving, always positive — the default for
R/C process spread) or ``normal``, and a single equicorrelation
coefficient models a shared process gradient across parameters
(applied through the Cholesky factor of the equicorrelation matrix).

Draws are **blocks**, not objects: ``sample_block(n, seed)`` returns
a structured array of dtype :data:`repro.engine.blocks.BLOCK_DTYPE`
with one parameter set per record, ready for the block kernels of
:mod:`repro.engine.blocks` without any Python-object round trip.

Everything is a deterministic function of ``(distribution, seed)``:
draws use :class:`numpy.random.default_rng` (PCG64, stable across
processes and platforms), and the whole map from standard-normal
variables to parameter values is exposed as :meth:`transform` so the
collocation surrogate of :mod:`repro.stats.surrogate` can evaluate
the *same* map on deterministic quadrature nodes instead of random
draws.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..core.parameters import NorGateParameters
from ..engine.blocks import BLOCK_DTYPE, PARAM_FIELDS
from ..errors import ParameterError

__all__ = ["VARIABLE_PARAMS", "ParameterDistribution"]

#: Parameters a distribution may vary — the electrical R/C values.
#: ``vdd`` and ``delta_min`` stay at their nominal values (supply
#: variation changes the threshold semantics, not just the samples).
VARIABLE_PARAMS = ("r1", "r2", "r3", "r4", "cn", "co")

#: Relative floor applied to ``normal``-family draws so a deep
#: negative tail cannot produce a non-positive R/C value.
_NORMAL_FLOOR = 1e-6


@dataclasses.dataclass(frozen=True)
class ParameterDistribution:
    """A seeded distribution over hybrid-model parameter sets.

    Parameters
    ----------
    nominal : NorGateParameters
        The center of the distribution (SI units).
    sigma : mapping or sequence of (str, float)
        Relative spread per varied parameter, e.g. ``{"r1": 0.1,
        "co": 0.05}``.  Keys must come from :data:`VARIABLE_PARAMS`;
        values are fractions of the nominal value (``0.1`` = 10 %).
        Parameters not listed stay at nominal.  Normalized to a
        tuple of pairs in :data:`VARIABLE_PARAMS` order, so equal
        distributions compare (and hash) equal.
    kind : str, optional
        ``"lognormal"`` (default) — mean-preserving multiplicative
        spread, always positive — or ``"normal"`` — additive
        relative spread, floored at a tiny positive fraction of
        nominal.
    correlation : float, optional
        Equicorrelation coefficient ρ between every pair of varied
        parameters' underlying normals, ``0 ≤ ρ < 1`` (default 0.0,
        independent).  Applied via the Cholesky factor of the
        equicorrelation matrix, so ``transform`` maps *independent*
        standard normals.

    Raises
    ------
    ParameterError
        On unknown parameter names, invalid spreads, an unknown
        family, an out-of-range correlation, or an empty ``sigma``.
    """

    nominal: NorGateParameters
    sigma: tuple
    kind: str = "lognormal"
    correlation: float = 0.0

    def __post_init__(self):
        spec = self.sigma
        if hasattr(spec, "items"):
            spec = spec.items()
        table = {}
        for name, rel in spec:
            if name not in VARIABLE_PARAMS:
                raise ParameterError(
                    f"unknown distribution parameter {name!r}; "
                    f"choose from {', '.join(VARIABLE_PARAMS)}")
            rel = float(rel)
            if not math.isfinite(rel) or rel <= 0.0:
                raise ParameterError(
                    f"relative sigma for {name!r} must be positive "
                    f"and finite, got {rel}")
            if name in table:
                raise ParameterError(
                    f"duplicate sigma entry for {name!r}")
            table[name] = rel
        if not table:
            raise ParameterError(
                "sigma must vary at least one parameter")
        object.__setattr__(
            self, "sigma",
            tuple((name, table[name]) for name in VARIABLE_PARAMS
                  if name in table))
        if self.kind not in ("lognormal", "normal"):
            raise ParameterError(
                f"unknown distribution kind {self.kind!r}; choose "
                "'lognormal' or 'normal'")
        rho = float(self.correlation)
        if not (math.isfinite(rho) and 0.0 <= rho < 1.0):
            raise ParameterError(
                f"correlation must satisfy 0 <= rho < 1, got "
                f"{self.correlation}")
        object.__setattr__(self, "correlation", rho)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def varied(self) -> tuple:
        """Names of the varied parameters, in canonical order."""
        return tuple(name for name, _ in self.sigma)

    @property
    def dimension(self) -> int:
        """Number of independent standard-normal inputs."""
        return len(self.sigma)

    def _cholesky(self) -> np.ndarray:
        """Lower Cholesky factor of the equicorrelation matrix."""
        k = self.dimension
        matrix = np.full((k, k), self.correlation)
        np.fill_diagonal(matrix, 1.0)
        return np.linalg.cholesky(matrix)

    # ------------------------------------------------------------------
    # the z → parameters map
    # ------------------------------------------------------------------

    def transform(self, z) -> np.ndarray:
        """Map independent standard normals to a sample block.

        The deterministic half of sampling: Monte-Carlo feeds it
        random draws, the collocation surrogate feeds it quadrature
        nodes — both see the identical correlation + marginal map.

        Parameters
        ----------
        z : array_like of float
            Independent standard-normal variables, shape
            ``(n, dimension)``.

        Returns
        -------
        numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(n,)``;
            unvaried fields hold their nominal values.
        """
        z = np.asarray(z, dtype=float)
        if z.ndim != 2 or z.shape[1] != self.dimension:
            raise ParameterError(
                f"z must have shape (n, {self.dimension}), got "
                f"{z.shape}")
        correlated = z @ self._cholesky().T
        block = np.empty(z.shape[0], dtype=BLOCK_DTYPE)
        for name in PARAM_FIELDS:
            block[name] = getattr(self.nominal, name)
        for column, (name, rel) in enumerate(self.sigma):
            nominal = getattr(self.nominal, name)
            zc = correlated[:, column]
            if self.kind == "lognormal":
                # Mean-preserving: E[value] = nominal exactly.
                sigma_ln = math.sqrt(math.log1p(rel * rel))
                values = nominal * np.exp(sigma_ln * zc
                                          - 0.5 * sigma_ln ** 2)
            else:
                values = nominal * np.maximum(1.0 + rel * zc,
                                              _NORMAL_FLOOR)
            block[name] = values
        return block

    # ------------------------------------------------------------------
    # seeded draws
    # ------------------------------------------------------------------

    def draw_normals(self, n: int, seed: int) -> np.ndarray:
        """Draw the independent standard-normal inputs of *n* samples.

        Parameters
        ----------
        n : int
            Sample count (>= 1).
        seed : int
            PCG64 seed; identical seeds give identical draws on
            every platform and in every process.

        Returns
        -------
        numpy.ndarray
            Shape ``(n, dimension)``.
        """
        if n < 1:
            raise ParameterError(f"need at least one sample, got {n}")
        rng = np.random.default_rng(int(seed))
        return rng.standard_normal((int(n), self.dimension))

    def sample_block(self, n: int, seed: int) -> np.ndarray:
        """Draw *n* parameter sets as one sample block.

        ``transform(draw_normals(n, seed))`` — the block analogue of
        drawing *n* :class:`~repro.core.parameters.NorGateParameters`
        objects, without creating any.

        Parameters
        ----------
        n : int
            Sample count (>= 1).
        seed : int
            PCG64 seed.

        Returns
        -------
        numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(n,)``.
        """
        return self.transform(self.draw_normals(n, seed))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def descriptor(self) -> dict:
        """Canonical JSON-able identity of this distribution.

        Used as (part of) the content-hash key of cached surrogate
        fits (:func:`repro.cache.content_key`); two distributions
        with equal descriptors draw identical samples for identical
        seeds.

        Returns
        -------
        dict
            Plain-scalar payload: nominal fields, sigma pairs,
            family kind, and correlation.
        """
        return {
            "nominal": {name: getattr(self.nominal, name)
                        for name in PARAM_FIELDS},
            "sigma": [[name, rel] for name, rel in self.sigma],
            "kind": self.kind,
            "correlation": self.correlation,
        }
