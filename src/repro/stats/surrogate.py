"""Probabilistic-collocation (polynomial-chaos) delay surrogate.

Monte-Carlo needs thousands of model evaluations to pin down moments;
the collocation approach of arXiv 0710.4634 needs dozens: fit a
low-order polynomial in the *standard-normal* variables ``z`` of the
parameter distribution on deterministic Gauss-Hermite nodes, then
read moments off the coefficients analytically.

The surrogate is a total-degree-``p`` probabilists'-Hermite
expansion

    delay(z) ≈ Σ_α c_α · ∏ᵢ He_{αᵢ}(zᵢ),   Σᵢ αᵢ ≤ p

fitted by least squares on the classic PCM design: candidate points
are the tensor grid of the roots of He_{p+1} (the next-order
Gauss-Hermite nodes — ``0, ±√3`` for p = 2; ``±0.742, ±2.334`` for
p = 3), of which ``1.5 × basis-size`` rows are kept by a greedy
volume-maximizing (rank-revealing-QR-style) sweep with density
tie-breaking, so the regression is overdetermined, well-conditioned
and fully deterministic.  For the full 6-parameter distribution at
the default p = 3 that is 126 model evaluations — ≤ 1/20 of a
10k-sample MC, the measured acceptance of
``benchmarks/bench_stats.py``.  Because the Hermite basis is
orthogonal under the standard normal, the mean is ``c₀`` and the
variance ``Σ_{α≠0} c_α² ∏ αᵢ!`` — no sampling involved; percentiles,
histograms and MC-comparable summaries come from reseeded
polynomial resampling, which costs matrix products, not engine
calls, and shares the distribution's seeded generator so a
same-seed Monte-Carlo comparison cancels the sampling noise.

Fits persist in the :mod:`repro.cache` disk store keyed by the
content hash of ``(distribution descriptor, Δ grid, gate, direction,
vn_init)``.  Design delays are quantized before the solve
(:func:`repro.stats.montecarlo.quantize`), so the fitted
coefficients — and thus cached and freshly-fitted surrogates — are
byte-identical across engine backends, which is what makes the cache
safely engine-agnostic.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..engine.base import get_engine
from ..errors import ParameterError
from ..obs import metrics as _metrics
from ..obs.trace import span as _span
from .montecarlo import (DelaySummary, _counter, evaluate_block,
                         quantize, summarize)

__all__ = ["DelaySurrogate", "fit_surrogate"]

#: Content-descriptor tag (bump to orphan all cached fits).
_CACHE_KIND = "repro.stats.surrogate/1"


def _fit_counter(outcome: str):
    counter = _FIT_COUNTERS.get(outcome)
    if counter is None:
        counter = _metrics.registry().counter(
            "repro_stats_surrogate_total",
            "collocation surrogate fits, by cache outcome",
            labels={"outcome": outcome})
        _FIT_COUNTERS[outcome] = counter
    return counter


_FIT_COUNTERS: dict = {}


def _multi_indices(k: int, degree: int) -> "list[tuple[int, ...]]":
    """All Hermite multi-indices of total degree ≤ *degree*.

    Ordered by (total degree, lexicographic) so the constant term is
    always column 0 and the column order is reproducible.
    """
    indices: list[tuple[int, ...]] = []

    def extend(prefix: tuple, remaining: int, budget: int) -> None:
        if remaining == 0:
            indices.append(prefix)
            return
        for d in range(budget + 1):
            extend(prefix + (d,), remaining - 1, budget - d)

    extend((), k, degree)
    indices.sort(key=lambda alpha: (sum(alpha), alpha))
    return indices


def _hermite_columns(z: np.ndarray, degree: int) -> np.ndarray:
    """Probabilists' Hermite values He₀..He_degree per axis.

    Returns shape ``(degree + 1, n, k)`` via the recurrence
    ``He_{d+1} = z·He_d − d·He_{d−1}``.
    """
    table = np.empty((degree + 1,) + z.shape)
    table[0] = 1.0
    if degree >= 1:
        table[1] = z
    for d in range(1, degree):
        table[d + 1] = z * table[d] - d * table[d - 1]
    return table


def _basis(z: np.ndarray, degree: int) -> np.ndarray:
    """Total-degree Hermite basis matrix of z rows.

    Columns follow :func:`_multi_indices`; entry ``(r, α)`` is
    ``∏ᵢ He_{αᵢ}(z[r, i])``.
    """
    k = z.shape[1]
    hermite = _hermite_columns(np.asarray(z, dtype=float), degree)
    columns = [np.prod([hermite[d][:, i]
                        for i, d in enumerate(alpha)], axis=0)
               for alpha in _multi_indices(k, degree)]
    return np.stack(columns, axis=1)


def _variance_norms(k: int, degree: int) -> np.ndarray:
    """E[basis²] per non-constant column under the standard normal
    (``∏ αᵢ!`` for the probabilists' Hermite products)."""
    return np.asarray([
        math.prod(math.factorial(d) for d in alpha)
        for alpha in _multi_indices(k, degree)[1:]])


#: Regression oversampling: the design keeps this times basis-size
#: rows (126 points for the 6-parameter degree-3 default).
_OVERSAMPLE = 1.5


def _design(k: int, degree: int) -> np.ndarray:
    """The deterministic PCM collocation design in z-space.

    Candidates are the tensor grid of the ``degree + 1`` roots of
    He_{degree+1} (the next-order Gauss-Hermite nodes), sorted by
    increasing distance from the origin (densest first, ties broken
    lexicographically).  Selecting purely by density leaves the
    regression rank-deficient *and* ill-balanced — the densest
    shells repeat few coordinate patterns — so rows are picked by a
    greedy volume-maximizing rule instead (the rank-revealing-QR
    pivot order): repeatedly take the candidate whose basis row has
    the largest residual norm against the span of the rows already
    chosen, until ``_OVERSAMPLE × basis-size`` rows are kept.
    ``argmax`` ties resolve to the lowest index, i.e. the densest
    candidate, so the design is fully deterministic.
    """
    nodes = np.polynomial.hermite_e.hermegauss(degree + 1)[0]
    # The roots are symmetric around 0 up to rounding; antisymmetrize
    # so the design is exactly sign-symmetric (the middle node of an
    # odd count becomes exactly 0).
    nodes = 0.5 * (nodes - nodes[::-1])
    basis_size = len(_multi_indices(k, degree))
    grids = np.meshgrid(*([nodes] * k), indexing="ij")
    candidates = np.stack([g.ravel() for g in grids], axis=1)
    weight = np.sum(candidates ** 2, axis=1)
    order = np.lexsort(
        tuple(candidates[:, i] for i in range(k - 1, -1, -1))
        + (weight,))
    candidates = candidates[order]
    residuals = _basis(candidates, degree)

    budget = min(int(_OVERSAMPLE * basis_size), candidates.shape[0])
    selected: list = []
    for _ in range(budget):
        norms = np.linalg.norm(residuals, axis=1)
        if selected:
            norms[selected] = -1.0
        index = int(np.argmax(norms))
        if norms[index] <= 1e-12:
            # Span exhausted (budget above candidate-space rank):
            # top up with the densest unselected candidates.
            chosen = set(selected)
            for rest in range(candidates.shape[0]):
                if len(selected) >= budget:
                    break
                if rest not in chosen:
                    selected.append(rest)
            break
        selected.append(index)
        direction = residuals[index] / norms[index]
        residuals = residuals - np.outer(
            residuals @ direction, direction)
    return candidates[np.sort(np.asarray(selected))]


@dataclasses.dataclass(frozen=True)
class DelaySurrogate:
    """A fitted total-degree Hermite delay surrogate.

    Produced by :func:`fit_surrogate`; all attributes are
    deterministic functions of the fit inputs (coefficients are
    solved from quantized design delays, so they do not depend on
    the engine backend).

    Parameters
    ----------
    distribution : ParameterDistribution
        The distribution the surrogate was fitted against.
    deltas : numpy.ndarray
        The Δ grid, seconds, shape ``(M,)``.
    direction : str
        ``"falling"`` or ``"rising"``.
    gate : str
        ``"nor2"``, ``"nor3"`` or ``"nor4"``.
    vn_init : float
        Rising-direction internal-node voltage, volts.
    degree : int
        Total polynomial degree of the expansion.
    coefficients : numpy.ndarray
        Hermite coefficients, shape ``(B, M)`` in
        :func:`_multi_indices` column order.
    design_points : int
        Model evaluations the fit consumed (the surrogate's whole
        engine cost).
    """

    distribution: object
    deltas: np.ndarray
    direction: str
    gate: str
    vn_init: float
    degree: int
    coefficients: np.ndarray
    design_points: int

    def mean(self) -> np.ndarray:
        """Per-Δ surrogate mean delay, seconds (analytic: ``c₀``)."""
        return self.coefficients[0].copy()

    def std(self) -> np.ndarray:
        """Per-Δ surrogate delay σ, seconds (analytic from the
        orthogonal-basis coefficients)."""
        norms = _variance_norms(self.distribution.dimension,
                                self.degree)
        var = np.einsum("b,bm->m", norms, self.coefficients[1:] ** 2)
        return np.sqrt(var)

    def sample(self, n: int, seed: int = 0) -> np.ndarray:
        """Resample the polynomial at seeded standard-normal draws.

        Costs two matrix products — no engine evaluations — which is
        what makes surrogate percentiles/histograms ~free.

        Parameters
        ----------
        n : int
            Resample count.
        seed : int, optional
            PCG64 seed (default 0).

        Returns
        -------
        numpy.ndarray
            Quantized surrogate delays, shape ``(n, M)``.
        """
        z = self.distribution.draw_normals(n, seed)
        return quantize(_basis(z, self.degree) @ self.coefficients)

    def summarize(self, *, samples: int = 4096, seed: int = 0,
                  percentiles=(1.0, 50.0, 99.0),
                  bins: int = 0) -> DelaySummary:
        """Reduce the surrogate to the Monte-Carlo summary shape.

        Every statistic — moments, extremes, percentiles,
        histograms — is reduced over :meth:`sample`-d polynomial
        draws, *samples* of them, engine-free.  Because
        :meth:`sample` reuses the distribution's seeded generator,
        ``surrogate.summarize(samples=n, seed=s)`` predicts exactly
        what ``monte_carlo(..., samples=n, seed=s)`` would report,
        with the shared sampling noise cancelling out of the
        comparison: the residual difference is pure polynomial
        approximation error.  (:meth:`mean` / :meth:`std` remain
        available for the analytic, sample-free moments.)

        Parameters
        ----------
        samples : int, optional
            Polynomial resample count (default 4096).
        seed : int, optional
            Resample seed (default 0).
        percentiles, bins
            As in :func:`repro.stats.montecarlo.summarize`.

        Returns
        -------
        DelaySummary
            With ``method = "surrogate"`` and ``samples`` set to
            :attr:`design_points` — the number of *model*
            evaluations behind the statistics.
        """
        resampled = summarize(self.sample(samples, seed), self.deltas,
                              method="surrogate",
                              percentiles=percentiles, bins=bins)
        return dataclasses.replace(resampled,
                                   samples=self.design_points)


def fit_surrogate(distribution, deltas, *,
                  direction: str = "falling", gate: str = "nor2",
                  vn_init: float = 0.0, degree: int = 3,
                  engine=None,
                  use_cache: bool = True) -> DelaySurrogate:
    """Fit (or load) the collocation surrogate of a distribution.

    Evaluates the hybrid model on the deterministic Gauss-Hermite
    design through the block kernels (one engine call for ``nor2``),
    quantizes, and solves the least-squares Hermite fit for every Δ
    column at once.  When the persistent :mod:`repro.cache` store is
    configured, fitted coefficients are stored under the content
    hash of the fit inputs, so a second process (or a later run)
    pays zero model evaluations — outcomes are visible as the
    ``repro_stats_surrogate_total{outcome=...}`` counter.

    Parameters
    ----------
    distribution : ParameterDistribution
        The parameter distribution to fit against.
    deltas : array_like of float
        Input separations in seconds, shape ``(M,)``; ``±inf``
        allowed.
    direction : str, optional
        ``"falling"`` (default) or ``"rising"``.
    gate : str, optional
        ``"nor2"`` (default), ``"nor3"`` or ``"nor4"``.
    vn_init : float, optional
        Rising-direction internal-node voltage, volts (default 0.0).
    degree : int, optional
        Total polynomial degree of the expansion, 1–5 (default 3 —
        enough to track the branch-boundary curvature of the delay
        surfaces to well under 1 % in σ).
    engine : str or DelayEngine, optional
        Backend for the design evaluation; the fitted coefficients
        do not depend on the choice (quantized design delays).
    use_cache : bool, optional
        Consult/populate the persistent store (default True; a
        missing store degrades to always-fit).

    Returns
    -------
    DelaySurrogate
        The fitted surrogate; ``design_points`` model evaluations
        were spent at most (zero on a cache hit).
    """
    from ..cache import content_key, get_store

    d = np.atleast_1d(np.asarray(deltas, dtype=float))
    if d.ndim != 1:
        raise ParameterError(
            f"deltas must be a scalar or 1-D, got shape {d.shape}")
    if np.isnan(d).any():
        raise ParameterError("input separations must not be NaN")
    if direction not in ("falling", "rising"):
        raise ParameterError(
            f"direction must be 'falling' or 'rising', got "
            f"{direction!r}")

    degree = int(degree)
    if not 1 <= degree <= 5:
        raise ParameterError(
            f"degree must lie in [1, 5], got {degree}")
    k = distribution.dimension
    design = _design(k, degree)

    def build(coefficients: np.ndarray) -> DelaySurrogate:
        return DelaySurrogate(
            distribution=distribution, deltas=d, direction=direction,
            gate=gate, vn_init=float(vn_init), degree=degree,
            coefficients=coefficients,
            design_points=design.shape[0])

    store = get_store() if use_cache else None
    key = None
    if store is not None:
        key = content_key({
            "kind": _CACHE_KIND,
            "distribution": distribution.descriptor(),
            "deltas": [float(x) for x in d],
            "gate": gate,
            "direction": direction,
            "vn_init": float(vn_init),
            "degree": degree,
        })
        bundle = store.get_arrays(key)
        if bundle is not None and "coefficients" in bundle:
            _fit_counter("hit").inc()
            return build(np.asarray(bundle["coefficients"]))

    engine = get_engine(engine)
    with _span("stats.surrogate", design=int(design.shape[0]),
               points=int(d.shape[0]), direction=direction,
               gate=gate, engine=engine.name):
        block = distribution.transform(design)
        grid = np.broadcast_to(d, (design.shape[0], d.shape[0]))
        values = quantize(evaluate_block(engine, gate, direction,
                                         block, grid,
                                         float(vn_init)))
        coefficients, _, _, _ = np.linalg.lstsq(
            _basis(design, degree), values, rcond=None)
    _counter("surrogate").inc(int(design.shape[0]))
    _fit_counter("miss").inc()
    if store is not None:
        store.put_arrays(key, {"coefficients": coefficients})
    return build(coefficients)
