"""Vectorized Monte-Carlo delay sampling over parameter blocks.

The hot path is one engine call: N sampled parameter sets × M
Δ-points flatten into a single block-kernel evaluation per direction
(:mod:`repro.engine.blocks`), so Monte-Carlo throughput is the block
kernel's throughput — benchmarked against the honest per-sample
scalar loop by ``benchmarks/bench_stats.py`` (acceptance: ≥ 50×).
For the generalized ``nor3`` / ``nor4`` gates the engine's Δ-vector
entry points are looped per sample (they batch over Δ, not over
parameter sets); the 2-input block path is the throughput story.

Determinism
-----------
Raw delays are snapped to the canonical grid :data:`QUANT_STEP`
(0.1 fs) before *any* reduction.  Backend-to-backend and
shard-composition differences in the lockstep Newton refinement sit
at ~1e-24 s — eight orders of magnitude below the grid — so the
quantized sample matrix, and therefore every moment, percentile and
histogram derived from it, is byte-identical across the
``reference`` / ``vectorized`` / ``parallel`` engines and across
processes.  The grid costs ~1e-5 relative accuracy on picosecond
delays, far below the 1 % tolerances of the statistical acceptance
criteria.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.base import delays_for_direction, get_engine
from ..engine.blocks import block_delays, parameters_at
from ..errors import ParameterError
from ..obs import metrics as _metrics
from ..obs.trace import span as _span

__all__ = ["QUANT_STEP", "DelaySummary", "monte_carlo", "quantize",
           "sample_delays"]

#: Canonical quantization grid for raw delay samples, seconds.
#: Engine/backends agree to ~1e-24 s; snapping to 1e-16 s makes the
#: reduced statistics byte-identical across backends while perturbing
#: picosecond-scale delays by only ~1e-5 relative.
QUANT_STEP = 1e-16


def quantize(values, step: float = QUANT_STEP) -> np.ndarray:
    """Snap delay values to the canonical determinism grid.

    Parameters
    ----------
    values : array_like of float
        Delays (or slacks) in seconds; ``±inf`` passes through.
    step : float, optional
        Grid pitch in seconds (default :data:`QUANT_STEP`).

    Returns
    -------
    numpy.ndarray
        ``round(values / step) * step``, same shape.
    """
    return np.round(np.asarray(values, dtype=float) / step) * step


def _gate_width(gate: str) -> int:
    """Validate a gate name and return its input count."""
    choices = ("nor2", "nor3", "nor4")
    if gate not in choices:
        raise ParameterError(
            f"unknown gate {gate!r}; available: "
            f"{', '.join(choices)}")
    return int(gate[len("nor"):])


def _counter(method: str):
    counter = _COUNTERS.get(method)
    if counter is None:
        counter = _metrics.registry().counter(
            "repro_stats_samples_total",
            "statistical delay samples drawn, by method",
            labels={"method": method})
        _COUNTERS[method] = counter
    return counter


_COUNTERS: dict = {}


def evaluate_block(engine, gate: str, direction: str,
                   block: np.ndarray, deltas: np.ndarray,
                   vn_init: float) -> np.ndarray:
    """Raw (unquantized) delays of a sample block at per-row Δ.

    The shared evaluation seam of Monte-Carlo sampling and the
    collocation surrogate's design evaluation: ``nor2`` routes
    through the engine's block kernels in one call per direction;
    ``nor3`` / ``nor4`` widen each record via
    :func:`repro.core.multi_input.paper_generalized` and loop the
    engine's Δ-vector entry points per sample (every later input at
    the same offset Δ).

    Parameters
    ----------
    engine : DelayEngine
        Resolved backend.
    gate : str
        ``"nor2"``, ``"nor3"`` or ``"nor4"``.
    direction : str
        ``"falling"`` or ``"rising"``.
    block : numpy.ndarray
        Sample block, dtype :data:`repro.engine.blocks.BLOCK_DTYPE`.
    deltas : numpy.ndarray
        Separations in seconds, shape ``(N, M)``.
    vn_init : float
        Rising-direction internal-node voltage, volts.

    Returns
    -------
    numpy.ndarray
        Raw delays, shape ``(N, M)``.
    """
    width = _gate_width(gate)
    if direction not in ("falling", "rising"):
        raise ParameterError(
            f"direction must be 'falling' or 'rising', got "
            f"{direction!r}")
    if width == 2:
        return np.asarray(
            block_delays(engine, direction, block, deltas, vn_init))
    from ..core.multi_input import paper_generalized

    out = np.empty(deltas.shape)
    for i in range(block.shape[0]):
        params = paper_generalized(width, parameters_at(block, i))
        row = np.repeat(deltas[i][:, None], width - 1, axis=1)
        out[i] = delays_for_direction(engine, direction, params, row,
                                      vn_init)
    return out


def sample_delays(distribution, deltas, *, samples: int,
                  direction: str = "falling", seed: int = 0,
                  gate: str = "nor2", vn_init: float = 0.0,
                  engine=None) -> np.ndarray:
    """Draw the quantized Monte-Carlo delay sample matrix.

    Parameters
    ----------
    distribution : ParameterDistribution
        The parameter distribution to sample.
    deltas : array_like of float
        Input separations in seconds, shape ``(M,)`` (each sampled
        parameter set is evaluated at every Δ); ``±inf`` allowed.
    samples : int
        Sample count N.
    direction : str, optional
        ``"falling"`` (default) or ``"rising"``.
    seed : int, optional
        Draw seed (default 0); identical seeds give byte-identical
        matrices across processes and backends.
    gate : str, optional
        ``"nor2"`` (default, block-kernel path), ``"nor3"`` or
        ``"nor4"``.
    vn_init : float, optional
        Rising-direction internal-node voltage, volts (default 0.0).
    engine : str or DelayEngine, optional
        Backend name or instance (default: the session default).

    Returns
    -------
    numpy.ndarray
        Quantized delays, shape ``(N, M)``, ``δ_min`` included.
    """
    engine = get_engine(engine)
    d = np.atleast_1d(np.asarray(deltas, dtype=float))
    if d.ndim != 1:
        raise ParameterError(
            f"deltas must be a scalar or 1-D, got shape {d.shape}")
    if np.isnan(d).any():
        raise ParameterError("input separations must not be NaN")
    block = distribution.sample_block(samples, seed)
    grid = np.broadcast_to(d, (block.shape[0], d.shape[0]))
    with _span("stats.mc", samples=int(samples),
               points=int(d.shape[0]), direction=direction,
               gate=gate, engine=engine.name):
        raw = evaluate_block(engine, gate, direction, block, grid,
                             float(vn_init))
    _counter("mc").inc(int(samples))
    return quantize(raw)


@dataclasses.dataclass(frozen=True)
class DelaySummary:
    """Reduced statistics of a delay sample matrix.

    One row of statistics per Δ-point; produced by
    :func:`monte_carlo` and by
    :meth:`repro.stats.surrogate.DelaySurrogate.summarize` so both
    methods render and serialize identically.

    Parameters
    ----------
    method : str
        ``"mc"`` or ``"surrogate"``.
    samples : int
        Samples behind the statistics (model-evaluation count — the
        design size — for the surrogate).
    deltas : numpy.ndarray
        The Δ grid, seconds, shape ``(M,)``.
    mean, std, minimum, maximum : numpy.ndarray
        Per-Δ moments/extremes of the quantized samples, seconds,
        shape ``(M,)`` (``std`` uses ddof = 1).
    percentile_levels : numpy.ndarray
        Requested percentile levels in percent, shape ``(L,)``.
    percentile_values : numpy.ndarray
        Per-level, per-Δ percentiles, seconds, shape ``(L, M)``.
    histogram_edges : numpy.ndarray or None
        Per-Δ bin edges, shape ``(M, bins + 1)`` (``None`` when no
        histogram was requested).
    histogram_counts : numpy.ndarray or None
        Per-Δ bin counts, shape ``(M, bins)``.
    """

    method: str
    samples: int
    deltas: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray
    percentile_levels: np.ndarray
    percentile_values: np.ndarray
    histogram_edges: "np.ndarray | None" = None
    histogram_counts: "np.ndarray | None" = None


def summarize(delays: np.ndarray, deltas, *, method: str,
              percentiles=(1.0, 50.0, 99.0),
              bins: int = 0) -> DelaySummary:
    """Reduce a quantized sample matrix to per-Δ statistics.

    The reduction runs single-threaded over the full matrix in fixed
    order, so identical (quantized) samples give byte-identical
    summaries regardless of which backend produced them.

    Parameters
    ----------
    delays : numpy.ndarray
        Quantized delays, shape ``(N, M)``.
    deltas : array_like of float
        The Δ grid, seconds, shape ``(M,)``.
    method : str
        Recorded as :attr:`DelaySummary.method`.
    percentiles : sequence of float, optional
        Percentile levels in percent (default ``(1, 50, 99)``).
    bins : int, optional
        Histogram bin count per Δ; 0 (default) disables histograms.

    Returns
    -------
    DelaySummary
        The reduced statistics.
    """
    # Canonical C layout: numpy's pairwise-summation order follows
    # the memory strides, so a loop-built (F-ordered) matrix would
    # otherwise reduce to last-ulp-different moments than the
    # block-kernel one even when byte-identical element-wise.
    delays = np.ascontiguousarray(delays, dtype=float)
    d = np.atleast_1d(np.asarray(deltas, dtype=float))
    levels = np.atleast_1d(np.asarray(percentiles, dtype=float))
    if np.any(~np.isfinite(levels)) or np.any(levels < 0.0) \
            or np.any(levels > 100.0):
        raise ParameterError(
            "percentile levels must lie in [0, 100]")
    if bins < 0:
        raise ParameterError(f"bins must be >= 0, got {bins}")
    n = delays.shape[0]
    std = (delays.std(axis=0, ddof=1) if n > 1
           else np.zeros(delays.shape[1]))
    edges = counts = None
    if bins:
        finite = np.isfinite(delays)
        edges = np.empty((delays.shape[1], bins + 1))
        counts = np.empty((delays.shape[1], bins))
        for j in range(delays.shape[1]):
            column = delays[finite[:, j], j]
            counts[j], edges[j] = np.histogram(column, bins=bins)
    return DelaySummary(
        method=method, samples=n, deltas=d,
        mean=delays.mean(axis=0), std=std,
        minimum=delays.min(axis=0), maximum=delays.max(axis=0),
        percentile_levels=levels,
        percentile_values=np.percentile(delays, levels, axis=0),
        histogram_edges=edges, histogram_counts=counts)


def monte_carlo(distribution, deltas, *, samples: int,
                direction: str = "falling", seed: int = 0,
                gate: str = "nor2", vn_init: float = 0.0,
                engine=None, percentiles=(1.0, 50.0, 99.0),
                bins: int = 0) -> DelaySummary:
    """Monte-Carlo delay statistics in one vectorized pass.

    :func:`sample_delays` followed by :func:`summarize` — the
    canonical statistical-delay entry point behind ``repro stats``
    and the ``StatsRequest`` handler.

    Parameters
    ----------
    distribution : ParameterDistribution
        The parameter distribution to sample.
    deltas : array_like of float
        Input separations in seconds, shape ``(M,)``.
    samples : int
        Sample count N.
    direction, seed, gate, vn_init, engine
        As in :func:`sample_delays`.
    percentiles, bins
        As in :func:`summarize`.

    Returns
    -------
    DelaySummary
        Per-Δ statistics over the quantized samples; byte-identical
        for identical seeds across processes and backends.
    """
    matrix = sample_delays(distribution, deltas, samples=samples,
                           direction=direction, seed=seed, gate=gate,
                           vn_init=vn_init, engine=engine)
    return summarize(matrix, deltas, method="mc",
                     percentiles=percentiles, bins=bins)
