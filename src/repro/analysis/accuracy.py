"""Average modeling-accuracy evaluation (paper Section VI, Fig. 7).

Pipeline per waveform configuration:

1. generate random input traces (LOCAL/GLOBAL, µ/σ);
2. drive the analog NOR with matching edge waveforms and digitize its
   output at ``Vth`` — the golden reference;
3. run every digital delay model on the same input traces;
4. integrate the absolute trace difference ("deviation area") over the
   simulation window;
5. average over repetitions and normalize against the inertial-delay
   baseline.

The standard model suite matches Fig. 7: inertial delay, the IDM
Exp-Channel with an empirical pure delay (20 ps in the paper — there is
no principled parametrization of single-input channels for multi-input
gates, Section VI), and the hybrid model with and without ``δ_min``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

import numpy as np

from ..core.charlie import MisCurve
from ..core.hybrid_model import HybridNorModel
from ..core.parameters import NorGateParameters
from ..core.parametrization import CharacteristicTargets
from ..errors import ParameterError
from ..spice.technology import TechnologyCard, build_nor2
from ..spice.transient import TransientOptions, transient_analysis
from ..spice.waveforms import EdgeTrain
from ..timing.channels import (ExpChannel, HybridNorChannel,
                               InertialDelayChannel, SingleInputChannel)
from ..timing.digitize import digitize_result
from ..timing.gates import gate_function, zero_time_gate
from ..timing.metrics import deviation_area
from ..timing.trace import DigitalTrace
from ..timing.tracegen import WaveformConfig, generate_traces
from ..units import PS

__all__ = [
    "MODEL_LABELS",
    "ModelRunner",
    "CurveErrors",
    "build_model_suite",
    "model_curve_errors",
    "reference_output",
    "ConfigAccuracy",
    "evaluate_config",
    "run_accuracy_study",
]

#: Reporting labels in the paper's Fig. 7 wording.
MODEL_LABELS: dict[str, str] = {
    "inertial": "inertial delay",
    "exp": "Exp-Channel",
    "hm_no_dmin": "HM without dmin",
    "hm": "HM with dmin",
}

#: A delay model as a trace transformer: (trace_a, trace_b) -> output.
ModelRunner = Callable[[DigitalTrace, DigitalTrace], DigitalTrace]

_NOR = gate_function("nor")


def _single_channel_runner(channel: SingleInputChannel) -> ModelRunner:
    def run(trace_a: DigitalTrace, trace_b: DigitalTrace) -> DigitalTrace:
        return channel.apply(zero_time_gate(_NOR, [trace_a, trace_b]))
    return run


def build_model_suite(targets: CharacteristicTargets,
                      hybrid_params: NorGateParameters,
                      hybrid_params_no_dmin: NorGateParameters | None = None,
                      exp_pure_delay: float = 20.0 * PS,
                      exp_delays: tuple[float, float] | None = None
                      ) -> dict[str, ModelRunner]:
    """The Fig. 7 model suite, parametrized from characteristic delays.

    Single-input channels cannot distinguish which input switched.  The
    inertial baseline gets the *average* of the two SIS delays per
    direction (a well-calibrated standard-cell delay).  For the
    Exp-Channel "there is no proper parametrization of IDM channels
    representing multi-input gates" (paper Section VI, which resorts to
    an empirical ``δ_min = 20 ps``); we emulate the standard
    single-input characterization — toggling input A with B at the
    non-controlling value — i.e. ``δ↑(−∞)`` / ``δ↓(∞)``, which is what
    makes the Exp-Channel degrade on broad pulses in Fig. 7.

    Args:
        targets: measured characteristic delays of the gate.
        hybrid_params: fitted hybrid-model parameters (with ``δ_min``).
        hybrid_params_no_dmin: separately fitted parameters with
            ``δ_min = 0`` (the paper's "HM without δ_min" is its own —
            necessarily imperfect — least-squares fit, cf. Fig. 8).
            Defaults to stripping the pure delay off *hybrid_params*.
        exp_pure_delay: the Exp-Channel's empirical pure delay.
        exp_delays: optional ``(δ↑(∞), δ↓(∞))`` override for the
            Exp-Channel.
    """
    rise_avg = 0.5 * (targets.rising.minus_inf + targets.rising.plus_inf)
    fall_avg = 0.5 * (targets.falling.minus_inf
                      + targets.falling.plus_inf)
    if exp_delays is None:
        exp_delays = (targets.rising.minus_inf, targets.falling.plus_inf)
    if hybrid_params_no_dmin is None:
        hybrid_params_no_dmin = hybrid_params.without_delta_min()
    inertial = InertialDelayChannel(delay_up=rise_avg,
                                    delay_down=fall_avg,
                                    label="inertial")
    exp_up, exp_down = exp_delays
    exp = ExpChannel(delay_up_inf=exp_up, delay_down_inf=exp_down,
                     pure_delay=min(exp_pure_delay,
                                    0.9 * min(exp_up, exp_down)),
                     label="exp")
    hm = HybridNorChannel(hybrid_params, label="hm")
    hm_no = HybridNorChannel(hybrid_params_no_dmin, label="hm_no_dmin")
    return {
        "inertial": _single_channel_runner(inertial),
        "exp": _single_channel_runner(exp),
        "hm_no_dmin": hm_no.simulate,
        "hm": hm.simulate,
    }


@dataclasses.dataclass(frozen=True)
class CurveErrors:
    """Curve-level model-vs-reference errors on a shared Δ grid.

    Attributes:
        mean: mean absolute delay difference, seconds.
        max: maximum absolute delay difference, seconds.
        model_curve: the engine-evaluated hybrid-model curve.
    """

    mean: float
    max: float
    model_curve: MisCurve


def model_curve_errors(reference: MisCurve,
                       params: NorGateParameters,
                       vn_init: float = 0.0,
                       engine=None) -> CurveErrors:
    """Hybrid-model curve errors against a reference MIS curve.

    Evaluates the hybrid model on the reference grid through a batch
    delay engine (:mod:`repro.engine`) and integrates the pointwise
    difference — the curve-level half of the paper's accuracy story
    (Figs. 5/6/8), shared by the ablation and baseline experiments.
    """
    model = HybridNorModel(params)
    if reference.direction == "falling":
        curve = model.falling_curve(reference.deltas, engine=engine)
    else:
        curve = model.rising_curve(reference.deltas, vn_init,
                                   engine=engine)
    return CurveErrors(mean=curve.mean_abs_difference(reference),
                       max=curve.max_abs_difference(reference),
                       model_curve=curve)


def reference_output(tech: TechnologyCard, trace_a: DigitalTrace,
                     trace_b: DigitalTrace, t_end: float,
                     options: TransientOptions | None = None
                     ) -> DigitalTrace:
    """Analog golden output for digital input traces.

    The input traces are rendered as raised-cosine edge trains whose
    ``Vth`` crossings coincide with the trace transition times (the same
    convention the characterization uses), simulated, and digitized.
    """
    wave_a = EdgeTrain(trace_a.transitions, tech.vdd,
                       tech.input_edge_time, initial=trace_a.initial)
    wave_b = EdgeTrain(trace_b.transitions, tech.vdd,
                       tech.input_edge_time, initial=trace_b.initial)
    circuit = build_nor2(tech, wave_a, wave_b)
    if options is None:
        options = TransientOptions(v_scale=tech.vdd, dt_max=150.0 * PS,
                                   reltol=3e-4)
    result = transient_analysis(circuit, t_end, options)
    return digitize_result(result, "o", tech.vth)


@dataclasses.dataclass(frozen=True)
class ConfigAccuracy:
    """Accuracy results of one waveform configuration.

    Attributes:
        config: the waveform configuration.
        areas: model key -> mean absolute deviation area, seconds.
        repetitions: number of random-seed repetitions averaged.
    """

    config: WaveformConfig
    areas: dict[str, float]
    repetitions: int

    @property
    def normalized(self) -> dict[str, float]:
        """Deviation areas normalized by the inertial baseline."""
        base = self.areas["inertial"]
        if base == 0.0:
            raise ParameterError("inertial baseline area is zero")
        return {key: area / base for key, area in self.areas.items()}

    def rows(self) -> list[tuple[str, float, float]]:
        """``(label, absolute_ps, normalized)`` reporting rows."""
        norm = self.normalized
        return [(MODEL_LABELS.get(key, key), self.areas[key] / PS,
                 norm[key]) for key in self.areas]


def evaluate_config(tech: TechnologyCard,
                    suite: dict[str, ModelRunner],
                    config: WaveformConfig,
                    repetitions: int = 3,
                    seed: int = 0,
                    t_start: float = 300.0 * PS,
                    tail: float = 500.0 * PS,
                    options: TransientOptions | None = None
                    ) -> ConfigAccuracy:
    """Run the accuracy pipeline for one waveform configuration."""
    if repetitions < 1:
        raise ParameterError("repetitions must be >= 1")
    totals = {key: 0.0 for key in suite}
    for repetition in range(repetitions):
        traces = generate_traces(config, ["a", "b"],
                                 seed=seed + repetition,
                                 t_start=t_start)
        trace_a, trace_b = traces["a"], traces["b"]
        last = max([t_start] + list(trace_a.times) + list(trace_b.times))
        t_end = last + tail
        reference = reference_output(tech, trace_a, trace_b, t_end,
                                     options)
        for key, runner in suite.items():
            model_trace = runner(trace_a, trace_b)
            totals[key] += deviation_area(model_trace, reference,
                                          0.0, t_end)
    areas = {key: total / repetitions for key, total in totals.items()}
    return ConfigAccuracy(config=config, areas=areas,
                          repetitions=repetitions)


def run_accuracy_study(tech: TechnologyCard,
                       suite: dict[str, ModelRunner],
                       configs: Sequence[WaveformConfig],
                       repetitions: int = 3,
                       seed: int = 0,
                       options: TransientOptions | None = None
                       ) -> list[ConfigAccuracy]:
    """Evaluate a model suite over several waveform configurations."""
    return [evaluate_config(tech, suite, config,
                            repetitions=repetitions, seed=seed,
                            options=options)
            for config in configs]
