"""Plain-text reporting of experiment results.

Everything the paper shows as a figure is reproduced here as printed
series/tables (there is no plotting dependency in this repository); the
benchmarks call these helpers so that running them prints the rows the
paper reports.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.charlie import MisCurve
from ..units import to_ps

__all__ = ["ascii_table", "format_curve", "format_curves",
           "format_bar_chart"]


def ascii_table(headers: Sequence[str],
                rows: Sequence[Sequence[object]],
                title: str | None = None) -> str:
    """Render a simple fixed-width table."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError("row length does not match headers")
        cells.append([f"{item:.4g}" if isinstance(item, float)
                      else str(item) for item in row])
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve(curve: MisCurve, label: str | None = None) -> str:
    """One MIS curve as a Δ/δ table in picoseconds."""
    rows = [(f"{d:+.1f}", f"{v:.2f}") for d, v in curve.rows()]
    return ascii_table(
        ["delta [ps]", "delay [ps]"], rows,
        title=label or f"{curve.direction} delay ({curve.label})")


def format_curves(curves: Sequence[MisCurve], title: str = "") -> str:
    """Several curves side by side on the union grid (interpolated)."""
    if not curves:
        raise ValueError("need at least one curve")
    grid = sorted({d for curve in curves for d in curve.deltas})
    headers = ["delta [ps]"] + [curve.label or f"curve{i}"
                                for i, curve in enumerate(curves)]
    rows = []
    for d in grid:
        row = [f"{to_ps(d):+.1f}"]
        for curve in curves:
            if curve.deltas[0] <= d <= curve.deltas[-1]:
                row.append(f"{to_ps(curve.delay_at(d)):.2f}")
            else:
                row.append("-")
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def format_bar_chart(labels: Sequence[str], values: Sequence[float],
                     title: str = "", width: int = 40,
                     reference: float = 1.0) -> str:
    """Horizontal ASCII bar chart (Fig. 7 style, lower = better)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must match")
    peak = max(max(values), reference)
    lines = [title] if title else []
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{label:<{label_width}}  {value:5.2f}  {bar}")
    return "\n".join(lines)
