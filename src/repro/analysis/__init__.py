"""Experiment orchestration: characterization, fitting, accuracy, probes."""

from .accuracy import (
    MODEL_LABELS,
    ConfigAccuracy,
    build_model_suite,
    evaluate_config,
    reference_output,
    run_accuracy_study,
)
from .characterization import (
    DEFAULT_DELTAS,
    SIS_SEPARATION,
    NorCharacterization,
    characterize_direction,
    characterize_nor,
    nor_mis_delay,
    nor_mis_waveforms,
)
from .faithfulness import (
    PulseResponse,
    perturbation_sensitivity,
    short_pulse_filtration,
)
from .fitting import (
    PAPER_FIG2_TARGETS,
    fit_from_characterization,
    fit_from_paper_values,
    fit_from_technology,
)
from .reporting import ascii_table, format_bar_chart, format_curve, format_curves

__all__ = [
    "DEFAULT_DELTAS",
    "MODEL_LABELS",
    "ConfigAccuracy",
    "NorCharacterization",
    "PAPER_FIG2_TARGETS",
    "PulseResponse",
    "SIS_SEPARATION",
    "ascii_table",
    "build_model_suite",
    "characterize_direction",
    "characterize_nor",
    "evaluate_config",
    "fit_from_characterization",
    "fit_from_paper_values",
    "fit_from_technology",
    "format_bar_chart",
    "format_curve",
    "format_curves",
    "nor_mis_delay",
    "nor_mis_waveforms",
    "perturbation_sensitivity",
    "reference_output",
    "run_accuracy_study",
    "short_pulse_filtration",
]


def __getattr__(name: str):
    """Deprecation shim forwarding ``EXPERIMENTS`` to its old home.

    .. deprecated:: 1.5.0
        The module-level experiment registry is replaced by the
        session facade (:mod:`repro.api`); the forward keeps
        ``from repro.analysis import EXPERIMENTS`` importable during
        the migration window.
    """
    if name == "EXPERIMENTS":
        import warnings

        from . import experiments
        # Warn here (not via experiments.EXPERIMENTS) so the
        # DeprecationWarning is attributed to the caller's import
        # site rather than to this shim.
        warnings.warn(
            "repro.analysis.EXPERIMENTS is deprecated; use "
            "repro.api.Session().run(ExperimentRequest(name)) "
            "and repro.api.experiment_names()",
            DeprecationWarning, stacklevel=2)
        return dict(experiments._EXPERIMENTS)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
