"""MIS characterization of the analog NOR gate (paper Section II).

Runs the analog reference simulator over a sweep of input separation
times ``Δ = t_B − t_A`` and extracts the MIS delay curves

* ``δ↓_S(Δ) = t_O − min(t_A, t_B)`` for falling output transitions
  (both inputs rise), and
* ``δ↑_S(Δ) = t_O − max(t_A, t_B)`` for rising output transitions
  (both inputs fall),

reproducing the data behind the paper's Fig. 2 (and the golden curves in
Figs. 5, 6 and 8).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.charlie import CharacteristicDelays, MisCurve
from ..core.parametrization import CharacteristicTargets
from ..errors import ParameterError
from ..spice.measure import crossing_after
from ..spice.technology import TechnologyCard, build_nand2, build_nor2
from ..spice.transient import (TransientOptions, TransientResult,
                               transient_analysis)
from ..spice.waveforms import EdgeTrain
from ..units import PS

__all__ = [
    "DEFAULT_DELTAS",
    "SIS_SEPARATION",
    "NorCharacterization",
    "toggle_sis_delays",
    "nor_mis_waveforms",
    "nor_mis_delay",
    "nand_mis_delay",
    "characterize_direction",
    "characterize_nor",
    "characterize_model",
]

#: Default Δ sweep (seconds) — the paper's Fig. 2 range.
DEFAULT_DELTAS = tuple(float(d) * PS for d in
                       (-60, -45, -30, -20, -12, -6, 0, 6, 12, 20, 30,
                        45, 60))

#: Separation treated as "single input switching" (|Δ| = ∞ in the paper).
SIS_SEPARATION = 400.0 * PS

#: Settling margin before the first input edge.
_LEAD_TIME = 250.0 * PS
#: Post-crossing margin in the simulation window.
_TAIL_TIME = 300.0 * PS


def _transient_options(tech: TechnologyCard,
                       overrides: TransientOptions | None
                       ) -> TransientOptions:
    if overrides is not None:
        return overrides
    return TransientOptions(v_scale=tech.vdd)


def nor_mis_waveforms(tech: TechnologyCard, delta: float,
                      direction: str,
                      options: TransientOptions | None = None,
                      output_load: float | None = None
                      ) -> tuple[TransientResult, float, float]:
    """Simulate one MIS event on the analog NOR.

    Args:
        tech: technology card.
        delta: input separation ``t_B − t_A``, seconds.
        direction: ``'falling'`` (inputs rise) or ``'rising'``
            (inputs fall) output transition.
        options: transient options override.
        output_load: output load override.

    Returns:
        ``(result, t_a, t_b)`` — waveforms plus the input threshold
        crossing times.
    """
    if direction not in ("falling", "rising"):
        raise ParameterError("direction must be 'falling' or 'rising'")
    t_a = _LEAD_TIME + max(0.0, -delta) + tech.input_edge_time
    t_b = t_a + delta
    if direction == "falling":
        wave_a = EdgeTrain([(t_a, 1)], tech.vdd, tech.input_edge_time)
        wave_b = EdgeTrain([(t_b, 1)], tech.vdd, tech.input_edge_time)
    else:
        wave_a = EdgeTrain([(t_a, 0)], tech.vdd, tech.input_edge_time,
                           initial=1)
        wave_b = EdgeTrain([(t_b, 0)], tech.vdd, tech.input_edge_time,
                           initial=1)
    circuit = build_nor2(tech, wave_a, wave_b, output_load=output_load)
    t_stop = max(t_a, t_b) + _TAIL_TIME
    result = transient_analysis(circuit, t_stop,
                                _transient_options(tech, options))
    return result, t_a, t_b


def nor_mis_delay(tech: TechnologyCard, delta: float, direction: str,
                  options: TransientOptions | None = None,
                  output_load: float | None = None) -> float:
    """Single MIS gate delay of the analog NOR (paper's δ_S).

    Falling delays are referenced to the *earlier* input, rising delays
    to the *later* input, per Section II.
    """
    result, t_a, t_b = nor_mis_waveforms(tech, delta, direction,
                                         options, output_load)
    if direction == "falling":
        reference = min(t_a, t_b)
        edge = -1
    else:
        reference = max(t_a, t_b)
        edge = +1
    search_from = min(t_a, t_b) - 2.0 * tech.input_edge_time
    t_out = crossing_after(result, "o", tech.vth, search_from, edge)
    return t_out - reference


def nand_mis_delay(tech: TechnologyCard, delta: float, direction: str,
                   options: TransientOptions | None = None,
                   output_load: float | None = None) -> float:
    """MIS gate delay of the analog NAND2 (mirror of the NOR, extension).

    Conventions follow the duality: the *falling* NAND output (both
    inputs rise, series stack) only switches after the later input —
    delay referenced to ``max(t_A, t_B)``; the *rising* output (parallel
    pMOS) is triggered by the earlier input — referenced to
    ``min(t_A, t_B)``.
    """
    if direction not in ("falling", "rising"):
        raise ParameterError("direction must be 'falling' or 'rising'")
    t_a = _LEAD_TIME + max(0.0, -delta) + tech.input_edge_time
    t_b = t_a + delta
    if direction == "falling":
        wave_a = EdgeTrain([(t_a, 1)], tech.vdd, tech.input_edge_time)
        wave_b = EdgeTrain([(t_b, 1)], tech.vdd, tech.input_edge_time)
        reference = max(t_a, t_b)
        edge = -1
    else:
        wave_a = EdgeTrain([(t_a, 0)], tech.vdd, tech.input_edge_time,
                           initial=1)
        wave_b = EdgeTrain([(t_b, 0)], tech.vdd, tech.input_edge_time,
                           initial=1)
        reference = min(t_a, t_b)
        edge = +1
    circuit = build_nand2(tech, wave_a, wave_b,
                          output_load=output_load)
    t_stop = max(t_a, t_b) + _TAIL_TIME
    result = transient_analysis(circuit, t_stop,
                                _transient_options(tech, options))
    search_from = min(t_a, t_b) - 2.0 * tech.input_edge_time
    t_out = crossing_after(result, "o", tech.vth, search_from, edge)
    return t_out - reference


def characterize_direction(tech: TechnologyCard, direction: str,
                           deltas=DEFAULT_DELTAS,
                           options: TransientOptions | None = None,
                           output_load: float | None = None) -> MisCurve:
    """Sweep Δ and return the analog MIS delay curve."""
    deltas = sorted(float(d) for d in deltas)
    delays = [nor_mis_delay(tech, d, direction, options, output_load)
              for d in deltas]
    return MisCurve.from_arrays(deltas, delays, direction,
                                label=f"analog ({tech.name})")


def toggle_sis_delays(tech: TechnologyCard, input_name: str,
                      options: TransientOptions | None = None,
                      output_load: float | None = None,
                      dwell: float = 1000.0 * PS) -> tuple[float, float]:
    """SIS delays via the *toggle* protocol (state-history aware).

    Starting from the ``(0, 0)`` resting state, one input rises, the
    gate settles for *dwell*, then the same input falls.  Unlike the
    Δ-protocol (which parks the gate in (1,1) before rising
    transitions), this visits the internal-node states a gate actually
    sees in single-input traces — e.g. the p-stack node parking at
    ``|Vt_p|`` instead of GND after a ``(0,0) → (1,0)`` history.  The
    difference is a real switching-history effect the ideal-switch
    model cannot represent (paper Sections II and IV).

    Returns:
        ``(falling_delay, rising_delay)`` for the toggled input.
    """
    if input_name not in ("a", "b"):
        raise ParameterError("input_name must be 'a' or 'b'")
    t_up = _LEAD_TIME + tech.input_edge_time
    t_down = t_up + dwell
    toggled = EdgeTrain([(t_up, 1), (t_down, 0)], tech.vdd,
                        tech.input_edge_time)
    if input_name == "a":
        circuit = build_nor2(tech, toggled, 0.0, output_load=output_load)
    else:
        circuit = build_nor2(tech, 0.0, toggled, output_load=output_load)
    result = transient_analysis(circuit, t_down + _TAIL_TIME,
                                _transient_options(tech, options))
    t_fall = crossing_after(result, "o", tech.vth,
                            t_up - tech.input_edge_time, -1)
    t_rise = crossing_after(result, "o", tech.vth,
                            t_down - tech.input_edge_time, +1)
    return (t_fall - t_up, t_rise - t_down)


@dataclasses.dataclass(frozen=True)
class NorCharacterization:
    """Full MIS characterization of one NOR gate (Fig. 2 content).

    Attributes:
        falling: ``δ↓_S(Δ)`` curve.
        rising: ``δ↑_S(Δ)`` curve.
        sis_falling / sis_rising: characteristic triples measured with
            the paper's Δ-protocol (``Δ = ±SIS_SEPARATION`` and
            ``Δ = 0``).
        sis_falling_toggle / sis_rising_toggle: characteristic triples
            from the toggle protocol (see :func:`toggle_sis_delays`);
            the MIS value ``zero`` of the falling triple still comes
            from the Δ-protocol (it requires both inputs to switch).
        tech_name: technology card used.
        vdd: supply voltage.
    """

    falling: MisCurve
    rising: MisCurve
    sis_falling: CharacteristicDelays
    sis_rising: CharacteristicDelays
    sis_falling_toggle: CharacteristicDelays
    sis_rising_toggle: CharacteristicDelays
    tech_name: str
    vdd: float

    @property
    def targets(self) -> CharacteristicTargets:
        """Δ-protocol fitting targets.

        The rising MIS value is replaced by ``δ↑(−∞)``: with the
        paper's worst-case convention ``V_N(0) = GND`` the model
        satisfies ``δ↑(0) ≡ δ↑(−∞)`` identically, and the analog peak
        is exactly what it cannot express (Section IV) — feeding the
        peak to the optimizer would just corrupt the SIS match.
        """
        rising = CharacteristicDelays(
            minus_inf=self.sis_rising.minus_inf,
            zero=self.sis_rising.minus_inf,
            plus_inf=self.sis_rising.plus_inf,
        )
        return CharacteristicTargets(falling=self.sis_falling,
                                     rising=rising, vdd=self.vdd)

    @property
    def targets_toggle(self) -> CharacteristicTargets:
        """Toggle-protocol fitting targets (trace-representative).

        This is the "empirically optimal parametrization" route the
        paper mentions for Section VI: SIS values measured with the
        switching histories that dominate random traces.
        """
        rising = CharacteristicDelays(
            minus_inf=self.sis_rising_toggle.minus_inf,
            zero=self.sis_rising_toggle.minus_inf,
            plus_inf=self.sis_rising_toggle.plus_inf,
        )
        return CharacteristicTargets(falling=self.sis_falling_toggle,
                                     rising=rising, vdd=self.vdd)

    @property
    def falling_mis_percent(self) -> tuple[float, float]:
        """Fig. 2b annotations: δ↓(0) vs δ↓(−∞) and vs δ↓(∞), percent."""
        return (self.sis_falling.mis_effect_vs_minus_inf,
                self.sis_falling.mis_effect_vs_plus_inf)

    @property
    def rising_peak_percent(self) -> tuple[float, float]:
        """Fig. 2d annotations: peak vs δ↑(−∞) and vs δ↑(∞), percent."""
        peak = max(self.rising.delays)
        return (100.0 * (peak / self.sis_rising.minus_inf - 1.0),
                100.0 * (peak / self.sis_rising.plus_inf - 1.0))


def characterize_model(params, deltas=DEFAULT_DELTAS,
                       vn_init: float = 0.0,
                       engine=None) -> NorCharacterization:
    """Characterize the *hybrid model* itself through a delay engine.

    The engine-evaluated counterpart of :func:`characterize_nor`: the
    Δ sweep, the ``Δ = ±∞`` SIS limits and the ``Δ = 0`` MIS values
    are all computed in one batched call per direction, so a dense
    characterization costs milliseconds instead of an analog sweep.

    The ideal-switch model is history-free, therefore the toggle-
    protocol triples coincide with the Δ-protocol triples (the real
    gate's switching-history effect is exactly what the model cannot
    represent — paper Sections II and IV).

    Args:
        params: :class:`~repro.core.parameters.NorGateParameters`.
        deltas: sweep grid, seconds.
        vn_init: internal-node voltage ``X`` for rising transitions.
        engine: evaluation backend (name, instance, or ``None`` for
            the vectorized default).
    """
    from ..core.hybrid_model import HybridNorModel
    from ..engine import get_engine

    backend = get_engine(engine)
    model = HybridNorModel(params)
    grid = np.sort(np.asarray(deltas, dtype=float))
    falling = model.falling_curve(grid, engine=backend)
    rising = model.rising_curve(grid, vn_init, engine=backend)

    probes = np.array([-np.inf, 0.0, np.inf])
    fall_probe = backend.delays_falling(params, probes)
    rise_probe = backend.delays_rising(params, probes, vn_init)
    sis_falling = CharacteristicDelays(*map(float, fall_probe))
    sis_rising = CharacteristicDelays(*map(float, rise_probe))

    return NorCharacterization(
        falling=falling,
        rising=rising,
        sis_falling=sis_falling,
        sis_rising=sis_rising,
        sis_falling_toggle=sis_falling,
        sis_rising_toggle=sis_rising,
        tech_name=f"hybrid model/{backend.name}",
        vdd=params.vdd,
    )


def characterize_nor(tech: TechnologyCard,
                     deltas=DEFAULT_DELTAS,
                     options: TransientOptions | None = None,
                     output_load: float | None = None
                     ) -> NorCharacterization:
    """Characterize a NOR gate in both output directions (Fig. 2).

    The SIS values are measured separately at ``Δ = ±SIS_SEPARATION``
    so the sweep grid itself can stay narrow.
    """
    falling = characterize_direction(tech, "falling", deltas, options,
                                     output_load)
    rising = characterize_direction(tech, "rising", deltas, options,
                                    output_load)

    def triple(direction: str) -> CharacteristicDelays:
        minus = nor_mis_delay(tech, -SIS_SEPARATION, direction, options,
                              output_load)
        zero = nor_mis_delay(tech, 0.0, direction, options, output_load)
        plus = nor_mis_delay(tech, SIS_SEPARATION, direction, options,
                             output_load)
        return CharacteristicDelays(minus_inf=minus, zero=zero,
                                    plus_inf=plus)

    sis_falling = triple("falling")
    fall_a, rise_a = toggle_sis_delays(tech, "a", options, output_load)
    fall_b, rise_b = toggle_sis_delays(tech, "b", options, output_load)

    return NorCharacterization(
        falling=falling,
        rising=rising,
        sis_falling=sis_falling,
        sis_rising=triple("rising"),
        sis_falling_toggle=CharacteristicDelays(
            minus_inf=fall_b, zero=sis_falling.zero, plus_inf=fall_a),
        sis_rising_toggle=CharacteristicDelays(
            minus_inf=rise_a, zero=rise_a, plus_inf=rise_b),
        tech_name=tech.name,
        vdd=tech.vdd,
    )
