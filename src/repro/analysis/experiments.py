"""Experiment registry: one entry per table/figure of the paper.

Every experiment returns a structured result object together with a
plain-text rendering whose rows correspond to what the paper's figure
shows.  The benchmark harness (``benchmarks/``) times the heavy kernel
of each experiment and prints this rendering; EXPERIMENTS.md records the
paper-vs-measured comparison.

All experiments accept effort-scaling arguments so the test-suite can
run them in seconds while benchmarks use fuller settings.
"""

from __future__ import annotations

import dataclasses
import math
import time
from collections.abc import Sequence

import numpy as np

from ..core.analytic import (delta_falling_minus_inf, delta_falling_plus_inf,
                             delta_falling_zero, delta_rising)
from ..core.charlie import MisCurve
from ..core.hybrid_model import HybridNorModel, settle_time
from ..core.modes import Mode
from ..core.parameters import PAPER_TABLE_I, NorGateParameters
from ..core.parametrization import FitResult
from ..core.solutions import solve_mode
from ..models.fitted import FinitePointMisModel, QuadraticMisModel
from ..spice.technology import BULK65, FINFET15, TechnologyCard
from ..spice.transient import TransientOptions
from ..timing.channels import HybridNorChannel
from ..timing.trace import DigitalTrace
from ..timing.tracegen import PAPER_CONFIGS, WaveformConfig
from ..units import PS, to_ps
from .accuracy import (MODEL_LABELS, ConfigAccuracy, build_model_suite,
                       model_curve_errors, run_accuracy_study)
from .characterization import (DEFAULT_DELTAS, NorCharacterization,
                               characterize_nor)
from .faithfulness import short_pulse_filtration
from .fitting import fit_from_characterization, fit_from_paper_values
from .reporting import ascii_table, format_bar_chart, format_curves

__all__ = [
    "experiment_fig2",
    "experiment_fig4",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_table1",
    "experiment_analytic",
    "experiment_engines",
    "experiment_library",
    "experiment_multi_input",
    "experiment_runtime",
    "experiment_sta",
    "experiment_ablation_delta_min",
    "experiment_baseline_fits",
    "experiment_faithfulness",
]


# ----------------------------------------------------------------------
# Fig. 2 — analog characterization
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Fig2Result:
    characterization: NorCharacterization
    text: str


def experiment_fig2(tech: TechnologyCard = FINFET15,
                    deltas: Sequence[float] = DEFAULT_DELTAS,
                    options: TransientOptions | None = None
                    ) -> Fig2Result:
    """Fig. 2: analog MIS delay curves and their annotations."""
    ch = characterize_nor(tech, deltas=deltas, options=options)
    fall_m, fall_p = ch.falling_mis_percent
    rise_m, rise_p = ch.rising_peak_percent
    lines = [
        format_curves([ch.falling], title=f"Fig. 2b: falling output "
                                          f"delay ({tech.name})"),
        f"  MIS effect at delta=0: {fall_m:+.2f} % vs delta=-inf, "
        f"{fall_p:+.2f} % vs delta=+inf  (paper: -28.01 % / -28.43 %)",
        "",
        format_curves([ch.rising], title=f"Fig. 2d: rising output "
                                         f"delay ({tech.name})"),
        f"  MIS peak: {rise_m:+.2f} % vs delta=-inf, {rise_p:+.2f} % vs "
        f"delta=+inf  (paper: +2.08 % / +7.26 %)",
    ]
    return Fig2Result(characterization=ch, text="\n".join(lines))


# ----------------------------------------------------------------------
# Fig. 4 — mode trajectories
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Fig4Result:
    times: np.ndarray
    trajectories: dict[str, np.ndarray]
    text: str


def experiment_fig4(params: NorGateParameters = PAPER_TABLE_I,
                    t_stop: float = 150.0 * PS,
                    points: int = 16) -> Fig4Result:
    """Fig. 4: temporal evolution of all four mode systems.

    Initial values follow the paper: ``V_N(0) = V_O(0) = VDD`` except
    for system (0,0) (both GND) and ``V_N = VDD/2`` for system (1,1).
    """
    vdd = params.vdd
    initial = {
        Mode.BOTH_LOW: (0.0, 0.0),
        Mode.A_LOW_B_HIGH: (vdd, vdd),
        Mode.A_HIGH_B_LOW: (vdd, vdd),
        Mode.BOTH_HIGH: (vdd / 2.0, vdd),
    }
    times = np.linspace(0.0, t_stop, points)
    trajectories: dict[str, np.ndarray] = {}
    for mode, (vn0, vo0) in initial.items():
        solution = solve_mode(mode, params, vn0, vo0)
        trajectories[f"VN{mode}"] = np.array([solution.vn(t)
                                              for t in times])
        trajectories[f"VO{mode}"] = np.array([solution.vo(t)
                                              for t in times])
    headers = ["t [ps]"] + list(trajectories)
    rows = []
    for i, t in enumerate(times):
        rows.append([f"{to_ps(t):6.1f}"]
                    + [f"{trajectories[key][i]:.3f}"
                       for key in trajectories])
    text = ascii_table(headers, rows,
                       title="Fig. 4: mode trajectories [V]")
    return Fig4Result(times=times, trajectories=trajectories, text=text)


# ----------------------------------------------------------------------
# Fig. 5 / Fig. 6 / Fig. 8 — model MIS curves vs analog
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CurveComparisonResult:
    curves: list[MisCurve]
    text: str


def experiment_fig5(params: NorGateParameters = PAPER_TABLE_I,
                    characterization: NorCharacterization | None = None,
                    deltas: Sequence[float] = DEFAULT_DELTAS,
                    engine=None) -> CurveComparisonResult:
    """Fig. 5: hybrid-model falling MIS delays (vs analog if given)."""
    model = HybridNorModel(params)
    curves = [model.falling_curve(deltas, engine=engine)]
    if characterization is not None:
        curves.append(characterization.falling)
    text = format_curves(curves,
                         title="Fig. 5: falling MIS delay, model vs "
                               "analog")
    return CurveComparisonResult(curves=curves, text=text)


def experiment_fig6(params: NorGateParameters = PAPER_TABLE_I,
                    characterization: NorCharacterization | None = None,
                    deltas: Sequence[float] | None = None,
                    engine=None) -> CurveComparisonResult:
    """Fig. 6: rising MIS delays for ``V_N(0) ∈ {GND, VDD/2, VDD}``."""
    if deltas is None:
        deltas = tuple(float(d) * PS for d in
                       (-90, -60, -40, -25, -12, 0, 12, 25, 40, 60, 90))
    model = HybridNorModel(params)
    vdd = params.vdd
    curves = [model.rising_curve(deltas, vn_init=x, engine=engine)
              for x in (0.0, vdd / 2.0, vdd)]
    if characterization is not None:
        curves.append(characterization.rising)
    text = format_curves(curves,
                         title="Fig. 6: rising MIS delay for VN in "
                               "{GND, VDD/2, VDD} (vs analog)")
    return CurveComparisonResult(curves=curves, text=text)


def experiment_fig8(params: NorGateParameters = PAPER_TABLE_I,
                    characterization: NorCharacterization | None = None,
                    deltas: Sequence[float] = DEFAULT_DELTAS,
                    engine=None) -> CurveComparisonResult:
    """Fig. 8: falling matching with and without the pure delay."""
    with_dmin = HybridNorModel(params).falling_curve(deltas,
                                                     engine=engine)
    without = HybridNorModel(
        params.without_delta_min()).falling_curve(deltas, engine=engine)
    with_dmin = MisCurve(with_dmin.deltas, with_dmin.delays, "falling",
                         label="HM with dmin")
    without = MisCurve(without.deltas, without.delays, "falling",
                       label="HM without dmin")
    curves = [with_dmin, without]
    if characterization is not None:
        curves.append(characterization.falling)
    text = format_curves(curves,
                         title="Fig. 8: falling delay, hybrid model "
                               "with/without pure delay")
    return CurveComparisonResult(curves=curves, text=text)


# ----------------------------------------------------------------------
# Table I — parametrization
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Table1Result:
    fit: FitResult
    text: str


def experiment_table1(co: float | None = PAPER_TABLE_I.co
                      ) -> Table1Result:
    """Table I: fit the hybrid model to the paper's Fig. 2 values.

    ``C_O`` is pinned to the paper's value by default because the fit
    manifold is one-dimensional (see
    :mod:`repro.core.parametrization`); pass ``co=None`` to fit it too.
    """
    fit = fit_from_paper_values(co=co)
    rows = []
    for name in ("r1", "r2", "r3", "r4", "cn", "co"):
        fitted = getattr(fit.params, name)
        paper = getattr(PAPER_TABLE_I, name)
        rows.append([name.upper(), f"{fitted:.4g}", f"{paper:.4g}",
                     f"{fitted / paper:.3f}"])
    header = ascii_table(["param", "fitted [SI]", "paper [SI]",
                          "ratio"], rows,
                         title="Table I: fitted parameters vs paper")
    target_rows = [(name, f"{t:.2f}", f"{a:.2f}")
                   for name, t, a in fit.table()]
    targets = ascii_table(["characteristic", "target [ps]",
                           "achieved [ps]"], target_rows)
    dmin = fit.params.delta_min
    text = "\n".join([header, "",
                      f"delta_min = {to_ps(dmin):.2f} ps "
                      "(paper: 18 ps)", targets])
    return Table1Result(fit=fit, text=text)


# ----------------------------------------------------------------------
# Eqs. (8)-(12) — analytic approximations
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class AnalyticResult:
    rows: list[tuple[str, float, float]]
    text: str


def experiment_analytic(params: NorGateParameters = PAPER_TABLE_I
                        ) -> AnalyticResult:
    """Eqs. (8)-(12) against the exact crossing solver."""
    model = HybridNorModel(params)
    rows: list[tuple[str, float, float]] = [
        ("eq (8)  falling(0)", delta_falling_zero(params),
         model.delay_falling_zero()),
        ("eq (9)  falling(-inf)", delta_falling_minus_inf(params),
         model.delay_falling_minus_inf()),
        ("eq (10) falling(+inf)", delta_falling_plus_inf(params),
         model.delay_falling_plus_inf()),
    ]
    for delta in (-40e-12, -10e-12, 0.0, 10e-12, 40e-12):
        rows.append((f"eq (11/12) rising({to_ps(delta):+.0f} ps)",
                     delta_rising(params, delta, vn_init=0.0),
                     model.delay_rising(delta, vn_init=0.0)))
    table_rows = [(name, f"{to_ps(a):.3f}", f"{to_ps(b):.3f}",
                   f"{to_ps(abs(a - b)) * 1000.0:.2f}")
                  for name, a, b in rows]
    text = ascii_table(["formula", "approx [ps]", "exact [ps]",
                        "error [fs]"], table_rows,
                       title="Analytic characteristic delays "
                             "(eqs. 8-12) vs exact")
    return AnalyticResult(rows=rows, text=text)


# ----------------------------------------------------------------------
# Fig. 7 — modeling accuracy
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Fig7Result:
    results: list[ConfigAccuracy]
    fit: FitResult
    characterization: NorCharacterization
    text: str


def _scaled_config(config: WaveformConfig,
                   transitions: int | None) -> WaveformConfig:
    if transitions is None:
        return config
    scaled = min(config.transitions, transitions)
    return WaveformConfig(mu=config.mu, sigma=config.sigma,
                          mode=config.mode, transitions=scaled)


def experiment_fig7(tech: TechnologyCard = FINFET15,
                    configs: Sequence[WaveformConfig] = PAPER_CONFIGS,
                    repetitions: int = 3,
                    transitions: int | None = 100,
                    seed: int = 0,
                    exp_pure_delay: float = 20.0 * PS,
                    protocol: str = "toggle",
                    characterization: NorCharacterization | None = None,
                    fit: FitResult | None = None) -> Fig7Result:
    """Fig. 7: normalized deviation areas of the four delay models.

    Args:
        transitions: per-configuration transition-count cap (the paper
            uses 500/250; the default keeps runtimes sensible — pass
            ``None`` for full size).
        protocol: SIS characterization protocol for the parametrization
            (``'toggle'`` is the paper's "empirically optimal" route,
            see :mod:`repro.analysis.characterization`).
    """
    if characterization is None:
        characterization = characterize_nor(tech)
    if fit is None:
        fit = fit_from_characterization(characterization,
                                        protocol=protocol)
    # The no-pure-delay variant is its own least-squares fit: without
    # δ_min the falling ratio-2 theorem makes the targets infeasible and
    # the optimizer must spread the error across the curve — cf. the
    # systematic mismatch of Fig. 8's lower curve.
    fit_no_dmin = fit_from_characterization(characterization,
                                            delta_min=0.0,
                                            protocol=protocol)
    targets = (characterization.targets_toggle if protocol == "toggle"
               else characterization.targets)
    # The Exp-Channel is parametrized from the textbook Δ-protocol SIS
    # characterization (Fig. 2 convention): being a single-history
    # output channel it has no trace-representative calibration path —
    # its degradation on broad pulses in Fig. 7 follows exactly from
    # this (paper Section VI).
    delta_targets = characterization.targets
    exp_delays = (delta_targets.rising.minus_inf,
                  delta_targets.falling.plus_inf)
    suite = build_model_suite(targets, fit.params,
                              hybrid_params_no_dmin=fit_no_dmin.params,
                              exp_pure_delay=exp_pure_delay,
                              exp_delays=exp_delays)
    scaled = [_scaled_config(config, transitions) for config in configs]
    results = run_accuracy_study(tech, suite, scaled,
                                 repetitions=repetitions, seed=seed)
    blocks = []
    for accuracy in results:
        norm = accuracy.normalized
        labels = [MODEL_LABELS[key] for key in norm]
        blocks.append(format_bar_chart(
            labels, list(norm.values()),
            title=f"{accuracy.config.label} (normalized deviation "
                  f"area, lower is better)"))
    text = "\n\n".join(blocks)
    return Fig7Result(results=results, fit=fit,
                      characterization=characterization, text=text)


# ----------------------------------------------------------------------
# Section VI — runtime overhead
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class RuntimeResult:
    seconds: dict[str, float]
    overhead_vs_inertial: dict[str, float]
    text: str


def experiment_runtime(tech: TechnologyCard = FINFET15,
                       transitions: int = 200,
                       repeats: int = 5,
                       characterization: NorCharacterization | None = None,
                       fit: FitResult | None = None,
                       seed: int = 0) -> RuntimeResult:
    """Section VI: digital-simulation runtime of the channel models."""
    from ..timing.tracegen import generate_traces  # local: avoid cycle
    if characterization is None:
        characterization = characterize_nor(tech)
    if fit is None:
        fit = fit_from_characterization(characterization)
    suite = build_model_suite(characterization.targets, fit.params)
    config = WaveformConfig(mu=100 * PS, sigma=50 * PS, mode="local",
                            transitions=transitions)
    traces = generate_traces(config, ["a", "b"], seed=seed,
                             t_start=300 * PS)
    seconds: dict[str, float] = {}
    for key, runner in suite.items():
        start = time.perf_counter()
        for _ in range(repeats):
            runner(traces["a"], traces["b"])
        seconds[key] = (time.perf_counter() - start) / repeats
    base = seconds["inertial"]
    overhead = {key: value / base - 1.0 for key, value in seconds.items()}
    rows = [(MODEL_LABELS[key], f"{seconds[key] * 1e3:.3f}",
             f"{overhead[key] * 100.0:+.1f}")
            for key in seconds]
    text = ascii_table(["model", "runtime [ms]", "overhead [%]"], rows,
                       title=f"Digital simulation runtime "
                             f"({transitions} transitions; paper "
                             "reports ~6 % hybrid overhead)")
    return RuntimeResult(seconds=seconds,
                         overhead_vs_inertial=overhead, text=text)


# ----------------------------------------------------------------------
# Delay-engine backends (batched sweep evaluation)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class EngineComparisonResult:
    """Backend parity and throughput of one MIS-sweep workload.

    Attributes:
        points: Δ grid size per direction.
        seconds: backend name -> wall time of a falling+rising sweep.
        points_per_second: backend name -> sweep throughput.
        speedup: reference time / vectorized time.
        max_abs_difference: worst |vectorized − reference| delay, s.
        text: rendered table.
    """

    points: int
    seconds: dict[str, float]
    points_per_second: dict[str, float]
    speedup: float
    max_abs_difference: float
    text: str


def experiment_engines(params: NorGateParameters = PAPER_TABLE_I,
                       points: int = 4096,
                       span: float = 80.0 * PS,
                       repeats: int = 1) -> EngineComparisonResult:
    """Reference-vs-vectorized engine parity and throughput.

    Runs the same falling+rising Δ sweep through every registered
    backend, checks the results against the scalar reference and
    reports points/second — the workload behind the ROADMAP's "as fast
    as the hardware allows" goal (10k-point MIS curves, parameter-grid
    studies, Monte-Carlo sweeps).
    """
    from ..engine import available_engines, get_engine
    from ..errors import ParameterError

    if points < 1:
        raise ParameterError("points must be >= 1")
    deltas = np.linspace(-span, span, points)
    delays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    seconds: dict[str, float] = {}
    for name in available_engines():
        backend = get_engine(name)
        # Warm the per-parameter-set caches: steady-state throughput is
        # the quantity of interest, not one-off context construction.
        backend.delays_falling(params, deltas[:2])
        backend.delays_rising(params, deltas[:2])
        start = time.perf_counter()
        for _ in range(max(1, repeats)):
            falling = backend.delays_falling(params, deltas)
            rising = backend.delays_rising(params, deltas)
        seconds[name] = ((time.perf_counter() - start)
                         / max(1, repeats))
        delays[name] = (falling, rising)

    reference = delays["reference"]
    worst = 0.0
    for name, (falling, rising) in delays.items():
        worst = max(worst,
                    float(np.max(np.abs(falling - reference[0]))),
                    float(np.max(np.abs(rising - reference[1]))))
    pps = {name: 2.0 * points / s for name, s in seconds.items()}
    speedup = seconds["reference"] / seconds["vectorized"]

    rows = [(name, f"{seconds[name] * 1e3:.2f}", f"{pps[name]:,.0f}",
             f"{seconds['reference'] / seconds[name]:.1f}x")
            for name in sorted(seconds)]
    table = ascii_table(
        ["backend", "sweep [ms]", "points/s", "vs reference"], rows,
        title=f"Delay engines: {points}-point falling+rising MIS "
              "sweep")
    text = "\n".join([
        table,
        f"max |vectorized - reference| = {worst:.3e} s "
        "(parity bound: 1e-12 s)",
    ])
    return EngineComparisonResult(
        points=points, seconds=seconds, points_per_second=pps,
        speedup=speedup, max_abs_difference=worst, text=text)


# ----------------------------------------------------------------------
# Library characterization (batch gate -> table pipeline)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class LibraryResult:
    """Outcome of a batch library characterization run.

    Attributes:
        library: the characterized :class:`repro.library.GateLibrary`.
        accuracies: per-cell interpolation error vs direct evaluation.
        seconds: wall time of the characterization sweep.
        cells_per_second: characterization throughput.
        text: rendered table.
    """

    library: "GateLibrary"  # noqa: F821 - repro.library, imported lazily
    accuracies: "list[TableAccuracy]"  # noqa: F821
    seconds: float
    cells_per_second: float
    text: str


def experiment_library(params: NorGateParameters = PAPER_TABLE_I,
                       engine=None,
                       jobs=None) -> LibraryResult:
    """Characterize a gate library and audit its table accuracy.

    The ROADMAP's "new workload" scenario: a grid of (gate, parameter
    set) jobs swept through a delay engine into serializable MIS delay
    tables (see :mod:`repro.library`), each table then verified
    against direct engine evaluation on an oversampled probe grid.

    Args:
        params: base parameter set for the default job grid.
        engine: evaluation backend (name, instance, or ``None``).
        jobs: explicit :class:`repro.library.CharacterizationJob`
            sequence; defaults to :func:`repro.library.paper_jobs`.
    """
    from ..library import characterize_library, paper_jobs, verify_table

    if jobs is None:
        jobs = paper_jobs(params)
    jobs = tuple(jobs)
    start = time.perf_counter()
    library = characterize_library(jobs, engine=engine)
    seconds = time.perf_counter() - start

    accuracies = [verify_table(library[job.cell], engine=engine)
                  for job in jobs]
    rows = []
    for job, accuracy in zip(jobs, accuracies):
        table = library[job.cell]
        rows.append([
            job.cell, job.gate,
            str(len(table.falling.deltas)),
            str(len(table.falling.state_grid)
                + len(table.rising.state_grid)),
            f"{to_ps(accuracy.falling_error) * 1000.0:.2f}",
            f"{to_ps(accuracy.rising_error) * 1000.0:.2f}",
        ])
    worst = max(a.max_error for a in accuracies)
    table_text = ascii_table(
        ["cell", "gate", "deltas", "state rows", "fall err [fs]",
         "rise err [fs]"], rows,
        title="Library characterization: table vs direct evaluation")
    backend = library[jobs[0].cell].engine
    text = "\n".join([
        table_text,
        f"characterized {len(jobs)} cells in {seconds * 1e3:.1f} ms "
        f"via '{backend}'; worst interpolation error "
        f"{to_ps(worst) * 1000.0:.2f} fs (acceptance: <= 100 fs)",
    ])
    return LibraryResult(library=library, accuracies=accuracies,
                         seconds=seconds,
                         cells_per_second=len(jobs) / seconds,
                         text=text)


# ----------------------------------------------------------------------
# Static timing analysis (STA vs full event simulation)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StaCrossCheck:
    """One STA-vs-event-simulation comparison point.

    Attributes:
        circuit: name of the test circuit.
        node: the compared ``(signal, transition)`` node, rendered.
        sta_time: STA arrival time, seconds.
        sim_time: event-simulation transition time, seconds.
    """

    circuit: str
    node: str
    sta_time: float
    sim_time: float

    @property
    def error(self) -> float:
        """Absolute STA-vs-simulation disagreement, seconds."""
        return abs(self.sta_time - self.sim_time)


@dataclasses.dataclass(frozen=True)
class StaResultSummary:
    """Outcome of the STA cross-validation experiment.

    Attributes:
        checks: all comparison points.
        max_error: worst |STA − simulation| disagreement, seconds.
        text: rendered table.
    """

    checks: list[StaCrossCheck]
    max_error: float
    text: str


def sta_scenarios(params: NorGateParameters = PAPER_TABLE_I):
    """The cross-validation scenarios on the paper's NOR circuits.

    Each scenario is ``(circuit name, STA input arrivals, input
    traces)`` with one transition per switching input — the regime
    where the MIS-conditioned STA arrivals must coincide with full
    event simulation of the hybrid automaton.  Arrival times are
    offset from 0 so that initial states are settled equilibria.
    """
    t0 = 100.0 * PS
    inf = math.inf
    return (
        # Single NOR, falling output: the paper's Fig. 5 setting.
        ("nor2",
         {"a": (t0, -inf), "b": (t0 + 10.0 * PS, -inf)},
         {"a": DigitalTrace(0, [(t0, 1)]),
          "b": DigitalTrace(0, [(t0 + 10.0 * PS, 1)])}),
        # Single NOR, rising output: the Fig. 6 setting (Δ = 4 ps).
        ("nor2",
         {"a": (inf, t0), "b": (inf, t0 + 4.0 * PS)},
         {"a": DigitalTrace(1, [(t0, 0)]),
          "b": DigitalTrace(1, [(t0 + 4.0 * PS, 0)])}),
        # NOR inverter chain: every stage at the Δ = 0 MIS point.
        ("chain",
         {"a": (t0, -inf)},
         {"a": DigitalTrace(0, [(t0, 1)])}),
        # Two-level NOR tree with staggered input arrivals.
        ("tree",
         {"a": (t0, -inf), "b": (t0 + 8.0 * PS, -inf),
          "c": (t0 + 12.0 * PS, -inf), "d": (t0 + 20.0 * PS, -inf)},
         {"a": DigitalTrace(0, [(t0, 1)]),
          "b": DigitalTrace(0, [(t0 + 8.0 * PS, 1)]),
          "c": DigitalTrace(0, [(t0 + 12.0 * PS, 1)]),
          "d": DigitalTrace(0, [(t0 + 20.0 * PS, 1)])}),
        # Generalized 3-input NOR, falling output (Δ-vector arcs).
        ("nor3",
         {"a": (t0, -inf), "b": (t0 + 7.0 * PS, -inf),
          "c": (t0 + 18.0 * PS, -inf)},
         {"a": DigitalTrace(0, [(t0, 1)]),
          "b": DigitalTrace(0, [(t0 + 7.0 * PS, 1)]),
          "c": DigitalTrace(0, [(t0 + 18.0 * PS, 1)])}),
        # Generalized 3-input NOR, rising output (series stack).
        ("nor3",
         {"a": (inf, t0), "b": (inf, t0 + 5.0 * PS),
          "c": (inf, t0 + 11.0 * PS)},
         {"a": DigitalTrace(1, [(t0, 0)]),
          "b": DigitalTrace(1, [(t0 + 5.0 * PS, 0)]),
          "c": DigitalTrace(1, [(t0 + 11.0 * PS, 0)])}),
        # NOR3 feeding a paper NOR2: mixed Δ-vector / scalar-Δ arcs.
        ("nor3_mixed",
         {"a": (t0, -inf), "b": (t0 + 7.0 * PS, -inf),
          "c": (t0 + 18.0 * PS, -inf), "d": (t0 + 2.0 * PS, -inf)},
         {"a": DigitalTrace(0, [(t0, 1)]),
          "b": DigitalTrace(0, [(t0 + 7.0 * PS, 1)]),
          "c": DigitalTrace(0, [(t0 + 18.0 * PS, 1)]),
          "d": DigitalTrace(0, [(t0 + 2.0 * PS, 1)])}),
    )


def experiment_sta(params: NorGateParameters = PAPER_TABLE_I,
                   engine=None) -> StaResultSummary:
    """STA arrivals vs full event simulation on the NOR circuits.

    Runs every :func:`sta_scenarios` scenario twice — once through
    the MIS-aware static timing analyzer (:mod:`repro.sta`) and once
    through the event-driven simulator — and compares every signal
    transition the simulation produced against the STA arrival of
    the corresponding ``(signal, transition)`` node.  Agreement is
    expected to the root-search tolerance for these single-switching
    scenarios; the test-suite asserts ``max_error <= 0.1 ps``.

    Args:
        params: electrical parameter set for every gate.
        engine: delay-evaluation backend for the STA arcs.
    """
    from ..sta import TimingNode, analyze, build_timing_graph, \
        sta_circuit
    from ..timing.circuit import MultiInputInstance
    from ..timing.event_simulator import simulate_events
    from ..timing.simulator import simulate as simulate_traces

    checks: list[StaCrossCheck] = []
    for name, arrivals, traces in sta_scenarios(params):
        circuit = sta_circuit(name, params)
        graph = build_timing_graph(circuit, engine=engine)
        result = analyze(graph, arrivals=arrivals, top_paths=1)
        t_stop = 100.0 * PS + 4.0 * settle_time(params)
        if any(isinstance(instance, MultiInputInstance)
               for instance in circuit.instances):
            # n-input MIS elements run under the feed-forward
            # trace-transform engine (the event-driven engine keeps
            # its scope at the paper's two-input automaton).
            simulated = simulate_traces(circuit, traces)
        else:
            simulated = simulate_events(circuit, traces,
                                        t_stop=t_stop)
        for signal in graph.signal_order:
            for time, value in simulated[signal].transitions:
                node = TimingNode(signal,
                                  "rise" if value == 1 else "fall")
                checks.append(StaCrossCheck(
                    circuit=name, node=str(node),
                    sta_time=result.arrivals[node], sim_time=time))
    worst = max(check.error for check in checks)
    rows = [(check.circuit, check.node,
             f"{to_ps(check.sta_time):.4f}",
             f"{to_ps(check.sim_time):.4f}",
             f"{to_ps(check.error) * 1000.0:.3f}")
            for check in checks]
    table = ascii_table(
        ["circuit", "node", "STA [ps]", "event sim [ps]",
         "error [fs]"], rows,
        title="STA arrivals vs full event simulation")
    text = "\n".join([
        table,
        f"worst disagreement {to_ps(worst) * 1000.0:.3f} fs "
        "(acceptance: <= 100 fs)",
    ])
    return StaResultSummary(checks=checks, max_error=worst, text=text)


# ----------------------------------------------------------------------
# n-input generalization (paper Section VII)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class MultiInputResult:
    """Outcome of the n-input Δ-vector generalization experiment.

    Attributes:
        num_inputs: gate width of the probed NOR.
        reduction_error: worst |generalized − closed-form| delay
            disagreement on the n = 2 sweep, seconds.
        batch_error: worst |batched − scalar| disagreement on the
            n-input Δ-vector grid, seconds.
        speedup: batched-vs-scalar throughput ratio on that grid.
        text: rendered summary.
    """

    num_inputs: int
    reduction_error: float
    batch_error: float
    speedup: float
    text: str


def experiment_multi_input(params: NorGateParameters = PAPER_TABLE_I,
                           num_inputs: int = 3,
                           grid_points: int = 25,
                           engine=None) -> MultiInputResult:
    """The n-input NOR generalization, end to end.

    Three probes on one rendered record:

    * the **n = 2 reduction** — the Δ-vector seam against the paper's
      closed-form two-input path across a dense sweep (the engine
      parity suite asserts ≤ 1e-12 s);
    * the **MIS landscape** of the widened gate — the falling
      speed-up deepens with every additional simultaneously-switching
      input, the rising stack penalty grows with serial depth;
    * **batched vs scalar** — the Δ-vector grid through the batched
      eigen-solver against the per-point loop, with the measured
      speedup (``benchmarks/bench_multi_input.py`` tracks the full-
      size number in ``BENCH_multi_input.json``).

    Args:
        params: 2-input base parameter set, widened through
            :func:`repro.core.multi_input.paper_generalized`.
        num_inputs: gate width of the probed NOR (default 3).
        grid_points: per-axis size of the Δ-vector grid.
        engine: batched evaluation backend (name, instance, or
            ``None`` for the vectorized default).
    """
    from ..core.multi_input import (delta_vector_grid,
                                    generalized_model,
                                    paper_generalized)
    from ..engine import get_engine

    backend = get_engine(engine)
    wide = paper_generalized(num_inputs, params)
    model = generalized_model(wide)
    tau = model.settle_time() / 60.0

    # n = 2 reduction against the closed-form two-input path.
    narrow = paper_generalized(2, params)
    sweep = np.linspace(-8.0 * tau, 8.0 * tau, 201)
    closed = backend.delays_falling(params, sweep)
    closed_rise = backend.delays_rising(params, sweep, 0.0)
    seam = backend.delays_falling_n(narrow, sweep[:, None])
    seam_rise = backend.delays_rising_n(narrow, sweep[:, None], 0.0)
    reduction = max(float(np.max(np.abs(seam - closed))),
                    float(np.max(np.abs(seam_rise - closed_rise))))

    # MIS landscape of the widened gate.
    far = model.settle_time()
    landscape = []
    for switching in range(1, num_inputs + 1):
        offsets = np.array([0.0] * (switching - 1)
                           + [far] * (num_inputs - switching))
        landscape.append(float(
            backend.delays_falling_n(wide, offsets[None, :])[0]))

    # Batched vs scalar on the standard Δ-vector probe grid.
    rows = delta_vector_grid(wide, grid_points)
    backend.delays_falling_n(wide, rows[:2])  # warm the caches
    start = time.perf_counter()
    batched = backend.delays_falling_n(wide, rows)
    batched_s = time.perf_counter() - start
    reference = get_engine("reference")
    probe = min(rows.shape[0], 64)
    start = time.perf_counter()
    scalar = reference.delays_falling_n(wide, rows[:probe])
    scalar_s = time.perf_counter() - start
    batch_error = float(np.max(np.abs(batched[:probe] - scalar)))
    speedup = ((rows.shape[0] / batched_s) / (probe / scalar_s)
               if batched_s > 0.0 and scalar_s > 0.0 else math.inf)

    gate = f"NOR{num_inputs}"
    lines = [
        f"{gate} Δ-vector generalization "
        f"(engine '{backend.name}')",
        f"n=2 reduction vs closed form : "
        f"{reduction:.2e} s (acceptance <= 1e-12 s)",
    ]
    for switching, delay in enumerate(landscape, start=1):
        lines.append(
            f"falling, {switching}/{num_inputs} inputs together"
            f"  : {to_ps(delay):8.2f} ps")
    lines += [
        f"batched grid ({rows.shape[0]} Δ-vectors) : "
        f"{batched_s * 1e3:.1f} ms "
        f"({rows.shape[0] / batched_s:,.0f} vec/s)",
        f"scalar loop ({probe} probes)   : {scalar_s * 1e3:.1f} ms "
        f"({probe / scalar_s:,.0f} vec/s)",
        f"batched vs scalar parity : {batch_error / PS:.2e} ps, "
        f"speedup {speedup:.1f}x",
    ]
    return MultiInputResult(num_inputs=num_inputs,
                            reduction_error=reduction,
                            batch_error=batch_error,
                            speedup=speedup,
                            text="\n".join(lines))


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class AblationResult:
    rows: list[tuple[str, float]]
    text: str


def experiment_ablation_delta_min(
        characterization: NorCharacterization,
        delta_mins: Sequence[float] | None = None) -> AblationResult:
    """How the choice of ``δ_min`` affects the falling-curve match.

    For each candidate pure delay the model is re-fitted and the mean
    absolute error against the analog falling curve is reported.  The
    ratio-2 value (paper's 18 ps recipe) should be at/near the optimum.
    """
    from ..core.parametrization import infer_delta_min
    inferred = infer_delta_min(characterization.targets.falling)
    if delta_mins is None:
        delta_mins = [0.0, 0.5 * inferred, inferred, 1.25 * inferred]
    rows: list[tuple[str, float]] = []
    for dmin in delta_mins:
        fit = fit_from_characterization(characterization,
                                        delta_min=dmin)
        error = model_curve_errors(characterization.falling,
                                   fit.params).mean
        tag = f"delta_min={to_ps(dmin):5.1f} ps"
        if math.isclose(dmin, inferred, rel_tol=1e-9):
            tag += " (ratio-2 rule)"
        rows.append((tag, error))
    table_rows = [(tag, f"{to_ps(err):.3f}") for tag, err in rows]
    text = ascii_table(["configuration", "mean |model-analog| [ps]"],
                       table_rows,
                       title="Ablation: pure delay choice vs falling "
                             "curve match")
    return AblationResult(rows=rows, text=text)


def experiment_baseline_fits(characterization: NorCharacterization
                             ) -> AblationResult:
    """Literature curve-fit baselines vs the hybrid model (falling).

    All models are granted the same characterization data; the table
    reports the mean absolute error on the analog curve.
    """
    curve = characterization.falling
    fit = fit_from_characterization(characterization)
    finite = FinitePointMisModel.fit(curve, num_points=5)
    quad = QuadraticMisModel.fit(curve)
    rows = [
        ("hybrid ODE model (ours)",
         model_curve_errors(curve, fit.params).mean),
        ("finite-point linear fit [7]",
         finite.curve(curve.deltas).mean_abs_difference(curve)),
        ("quadratic fit [8]",
         quad.curve(curve.deltas).mean_abs_difference(curve)),
    ]
    table_rows = [(tag, f"{to_ps(err):.3f}") for tag, err in rows]
    text = ascii_table(["model", "mean |model-analog| [ps]"], table_rows,
                       title="Baselines: curve-fitting models vs "
                             "hybrid ODE model (falling)")
    return AblationResult(rows=rows, text=text)


def experiment_faithfulness(params: NorGateParameters = PAPER_TABLE_I,
                            widths: Sequence[float] | None = None
                            ) -> AblationResult:
    """Short-pulse filtration behaviour of the hybrid channel."""
    if widths is None:
        widths = [float(w) * PS for w in (200, 100, 60, 40, 30, 25, 20,
                                          15, 10, 5)]
    channel = HybridNorChannel(params)
    responses = short_pulse_filtration(channel.simulate, widths)
    rows = [(f"input {to_ps(r.input_width):6.1f} ps",
             r.output_width) for r in responses]
    table_rows = [(tag, f"{to_ps(w):.3f}") for tag, w in rows]
    text = ascii_table(["stimulus", "output pulse width [ps]"],
                       table_rows,
                       title="Short-pulse filtration of the hybrid "
                             "channel (continuous shrink-to-zero)")
    return AblationResult(rows=rows, text=text)


#: Legacy registry, kept behind a deprecation shim (see
#: ``__getattr__``): the session facade of :mod:`repro.api` is the
#: dispatch seam now.
_EXPERIMENTS = {
    "fig2": experiment_fig2,
    "fig4": experiment_fig4,
    "fig5": experiment_fig5,
    "fig6": experiment_fig6,
    "fig7": experiment_fig7,
    "fig8": experiment_fig8,
    "table1": experiment_table1,
    "analytic": experiment_analytic,
    "engines": experiment_engines,
    "library": experiment_library,
    "runtime": experiment_runtime,
    "sta": experiment_sta,
    "faithfulness": experiment_faithfulness,
}


def __getattr__(name: str):
    """Deprecation shim for the module-level experiment registry.

    .. deprecated:: 1.5.0
        ``EXPERIMENTS`` is replaced by the session facade: run an
        experiment with ``repro.api.Session().run(
        ExperimentRequest(name))`` and enumerate the names with
        ``repro.api.experiment_names()``.
    """
    if name == "EXPERIMENTS":
        import warnings
        warnings.warn(
            "repro.analysis.experiments.EXPERIMENTS is deprecated; "
            "use repro.api.Session().run(ExperimentRequest(name)) "
            "and repro.api.experiment_names()",
            DeprecationWarning, stacklevel=2)
        return dict(_EXPERIMENTS)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
