"""Faithfulness probes (paper Section VII, future work).

The paper closes by asking whether the multi-input hybrid channel is
*continuous* with respect to a suitable trace metric — the property that
makes a delay model faithful in the sense of the IDM literature (only
continuous channels solve short-pulse filtration faithfully).

Two numerical probes are provided:

* :func:`short_pulse_filtration` — feed input pulses of shrinking width
  and record the output pulse width.  A continuous channel's output
  width decays *continuously* to zero; an inertial channel exhibits the
  characteristic discontinuity (constant-width output until the cutoff,
  then nothing).
* :func:`perturbation_sensitivity` — perturb one input transition time
  by ``ε`` and measure the largest induced output-transition shift; the
  ratio bounds a local modulus of continuity.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from ..errors import ParameterError
from ..timing.trace import DigitalTrace
from ..units import PS

__all__ = [
    "PulseResponse",
    "short_pulse_filtration",
    "perturbation_sensitivity",
]

#: A two-input delay model as a trace transformer.
TraceModel = Callable[[DigitalTrace, DigitalTrace], DigitalTrace]


@dataclasses.dataclass(frozen=True)
class PulseResponse:
    """Output pulse produced by one input pulse width.

    Attributes:
        input_width: width of the stimulating input pulse, seconds.
        output_width: width of the produced output pulse (0 if none).
        transitions: number of output transitions observed.
    """

    input_width: float
    output_width: float
    transitions: int


def short_pulse_filtration(model: TraceModel,
                           widths: Sequence[float],
                           base_time: float = 500.0 * PS
                           ) -> list[PulseResponse]:
    """Short-pulse filtration behaviour of a two-input NOR model.

    Input A carries a positive pulse of the given width (B stays 0), so
    the NOR output should answer with a negative pulse.  Returns one
    :class:`PulseResponse` per width.
    """
    responses: list[PulseResponse] = []
    for width in widths:
        if width <= 0.0:
            raise ParameterError("pulse widths must be positive")
        trace_a = DigitalTrace.from_edges(
            0, [base_time, base_time + width])
        trace_b = DigitalTrace.constant(0)
        out = model(trace_a, trace_b)
        if len(out.times) >= 2:
            output_width = out.times[1] - out.times[0]
        else:
            output_width = 0.0
        responses.append(PulseResponse(input_width=float(width),
                                       output_width=float(output_width),
                                       transitions=len(out.times)))
    return responses


def perturbation_sensitivity(model: TraceModel,
                             trace_a: DigitalTrace,
                             trace_b: DigitalTrace,
                             epsilon: float = 0.1 * PS,
                             transition_index: int = 0) -> float:
    """Largest output-time shift per unit input-time shift.

    Perturbs one transition of input A by ``±epsilon`` and compares the
    produced output transition times pairwise.  Returns the worst
    observed ratio ``|Δt_out| / ε`` (``inf`` if the output transition
    *count* changes — a discontinuity).
    """
    if not trace_a.times:
        raise ParameterError("trace_a needs at least one transition")
    if not 0 <= transition_index < len(trace_a.times):
        raise ParameterError("transition_index out of range")

    def perturbed(sign: float) -> DigitalTrace:
        transitions = trace_a.transitions
        t, v = transitions[transition_index]
        transitions[transition_index] = (t + sign * epsilon, v)
        return DigitalTrace(trace_a.initial, transitions)

    base = model(trace_a, trace_b)
    worst = 0.0
    for sign in (+1.0, -1.0):
        shifted = model(perturbed(sign), trace_b)
        if len(shifted.times) != len(base.times):
            return float("inf")
        for t_base, t_new in zip(base.times, shifted.times):
            worst = max(worst, abs(t_new - t_base) / epsilon)
    return worst
