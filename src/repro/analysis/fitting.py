"""End-to-end parametrization pipelines (paper Section V / Table I).

Two entry points:

* :func:`fit_from_paper_values` — reproduce Table I: fit the hybrid
  model to the characteristic delays the paper reads off its Fig. 2
  (δ_min = 18 ps follows from the ratio-2 rule).
* :func:`fit_from_technology` — the full loop on our own substrate:
  characterize the analog NOR, infer δ_min, fit.
"""

from __future__ import annotations

from ..core.charlie import CharacteristicDelays
from ..core.parametrization import (CharacteristicTargets, FitResult,
                                    fit_nor_parameters, infer_delta_min)
from ..spice.technology import TechnologyCard
from ..spice.transient import TransientOptions
from ..units import PS
from .characterization import NorCharacterization, characterize_nor

__all__ = [
    "PAPER_FIG2_TARGETS",
    "fit_from_paper_values",
    "fit_from_characterization",
    "fit_from_technology",
]

#: Characteristic delays as reported in / derived from the paper's
#: Fig. 2: δ↓(0) = 28 ps with MIS changes of −28.01 % / −28.43 %, and
#: the rising plateaus of Fig. 2d.  δ↑(0) is the X = GND model value
#: (= δ↑(−∞)), since the analog peak is exactly what the ideal-switch
#: model cannot express (Section IV).
PAPER_FIG2_TARGETS = CharacteristicTargets(
    falling=CharacteristicDelays(
        minus_inf=38.0 * PS,
        zero=28.0 * PS,
        plus_inf=28.0 * PS / (1.0 - 0.2843),
    ),
    rising=CharacteristicDelays(
        minus_inf=55.3 * PS,
        zero=55.3 * PS,
        plus_inf=52.7 * PS,
    ),
    vdd=0.8,
)


def fit_from_paper_values(delta_min: float | None = None,
                          co: float | None = None) -> FitResult:
    """Fit the hybrid model to the paper's published Fig. 2 values.

    With the default arguments this regenerates the Table I setting:
    ``δ_min`` inferred as ``2·δ↓(0) − δ↓(−∞) ≈ 18 ps``, least-squares
    over all six electrical parameters.
    """
    return fit_nor_parameters(PAPER_FIG2_TARGETS, delta_min=delta_min,
                              co=co)


def fit_from_characterization(characterization: NorCharacterization,
                              delta_min: float | None = None,
                              co: float | None = None,
                              protocol: str = "delta",
                              weights=None) -> FitResult:
    """Fit the hybrid model to a measured characterization.

    Args:
        delta_min: pure delay (``None``: inferred via the ratio-2 rule;
            pass ``0.0`` for the paper's "HM without δ_min" variant).
        co: pin the output capacitance.
        protocol: ``'delta'`` — the paper's Fig. 2 convention — or
            ``'toggle'`` — trace-representative SIS values, the
            "empirically optimal" parametrization used for the Fig. 7
            accuracy study.
    """
    if protocol == "delta":
        targets = characterization.targets
    elif protocol == "toggle":
        targets = characterization.targets_toggle
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    if delta_min is None:
        delta_min = infer_delta_min(targets.falling)
    return fit_nor_parameters(targets, delta_min=delta_min, co=co,
                              weights=weights)


def fit_from_technology(tech: TechnologyCard,
                        delta_min: float | None = None,
                        co: float | None = None,
                        options: TransientOptions | None = None
                        ) -> tuple[NorCharacterization, FitResult]:
    """Characterize the analog NOR of *tech* and fit the hybrid model.

    Returns both the characterization and the fit, so callers can
    compare model curves against the analog golden curves (Figs. 5/6/8).
    """
    characterization = characterize_nor(tech, options=options)
    result = fit_from_characterization(characterization,
                                       delta_min=delta_min, co=co)
    return characterization, result
