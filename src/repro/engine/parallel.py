"""Sharded multi-process evaluation of MIS delay sweeps.

:class:`ParallelEngine` splits a Δ array into contiguous shards and
evaluates them concurrently on a persistent :mod:`multiprocessing`
pool, each worker running an ordinary *inner* backend (the NumPy
``vectorized`` engine by default).  Because every delay is a pure
function of ``(params, Δ)``, sharding is embarrassingly parallel; the
shard boundaries do not enter the result beyond the termination
precision of the inner backend's batch root search (observed
``< 1e-25 s``, i.e. twelve orders of magnitude below the engine
parity bound).

Sharded sweeps move **zero-copy** through
:mod:`multiprocessing.shared_memory`: the parent stages the flattened
Δ array and the result vector in two shared blocks and sends each
worker only ``(block names, row range)``.  Workers map the blocks,
evaluate their row slice in place, and write delays straight into the
result block — no Δ shard or result array is ever pickled.  The
parent owns the blocks and closes + unlinks them as soon as the sweep
returns (also on worker failure); workers unregister the mappings
from their own :mod:`resource_tracker` so the segment is released
exactly once.

Shard sizing is load-aware rather than fixed: every sweep is cut into
at least one shard per worker, and large sweeps into up to four per
worker so that faster workers pick up extra slices instead of idling
behind a straggler.  When a sweep is too small to amortize the
inter-process round trip (fewer than
:attr:`ParallelEngine.min_shard_points` separations), the call is
served inline by the inner backend — so the ``parallel`` name is
always safe to select, even for scalar probes.  The pool is created
lazily on the first sharded call, reused for the lifetime of the
process, and torn down atexit; the engine is also a context manager
(``with ParallelEngine() as engine: ...``) for deterministic
teardown.

Where it pays off
-----------------
A single dense sweep is usually memory-bound and the vectorized
backend already saturates one core, so the pool's round-trip overhead
only wins for *large* workloads: library characterization grids
(many gates x technologies x Δ grids, see :mod:`repro.library`),
Monte-Carlo parameter studies, and million-point sweeps.  The
``reference`` backend, on the other hand, is compute-bound Python and
shards almost linearly.

Environment
-----------
``REPRO_PARALLEL_PROCESSES`` overrides the worker count (useful on CI
runners whose advertised core count exceeds the usable quota).
``REPRO_CACHE_DIR`` (see :mod:`repro.cache`) is inherited by the
workers, so all of them share one persistent eigendecomposition
store instead of re-deriving per process.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..core.multi_input import GeneralizedNorParameters, offset_rows
from ..core.parameters import NorGateParameters
from ..errors import ParameterError
from ..obs.trace import span as _span
from .base import (delays_for_direction, get_engine, register_engine,
                   traced_entry_point)

__all__ = ["ParallelEngine"]

#: Default sweep size below which calls are served inline.  Chosen so
#: the library subsystem's default Δ grids (~1.1k points per state
#: row, see :mod:`repro.library.characterize`) do shard; below it the
#: pool round trip costs more than the sweep itself.
_MIN_SHARD_POINTS = 1024

#: Upper bound on shards handed to each worker for one sweep; more
#: shards than workers lets the pool load-balance, more than this
#: just adds task dispatch overhead.
_SHARDS_PER_WORKER = 4


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing shared block inside a worker process.

    The *parent* owns every segment (it created them and unlinks them
    when the sweep completes), but attaching re-registers the name
    with this process's ``resource_tracker``, which would unlink it a
    second time at worker shutdown.  Unregister immediately so
    cleanup happens exactly once, in the owner.
    """
    block = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker impl detail
        pass
    return block


def _evaluate_rows(inner: str, direction: str, params, state: float,
                   in_block, out_block, shape, start: int,
                   stop: int) -> None:
    """Evaluate rows ``[start, stop)`` of the staged sweep in place.

    Kept as its own frame so the NumPy views over the shared buffers
    are dropped the moment it returns — the caller must be able to
    ``close()`` the mappings afterwards.
    """
    flat = np.ndarray(shape, dtype=np.float64, buffer=in_block.buf)
    out = np.ndarray(shape[:1], dtype=np.float64, buffer=out_block.buf)
    out[start:stop] = delays_for_direction(
        get_engine(inner), direction, params, flat[start:stop], state)


def _worker_shard(inner: str, direction: str, params, state: float,
                  in_name: str, out_name: str, shape: tuple,
                  start: int, stop: int) -> None:
    """Evaluate one shard inside a worker process.

    Must stay a module-level function so it pickles under every
    multiprocessing start method; the inner engine is resolved by
    *name* in the worker, where its per-parameter-set caches persist
    across shards of the same pool lifetime.  *params* may be either
    parameter kind — :func:`~repro.engine.base.delays_for_direction`
    picks the matching entry points, so 2-input shards are flat Δ
    slices and n-input shards are ``(rows, n−1)`` Δ-matrix blocks.
    Results travel back through the shared result block, not the
    pool's pickle channel.
    """
    in_block = _attach(in_name)
    try:
        out_block = _attach(out_name)
    except BaseException:  # pragma: no cover - second attach failing
        in_block.close()
        raise
    try:
        # Workers inherit REPRO_TRACE (fork), so shard spans land in
        # the same JSONL sink tagged with the worker's own pid.
        with _span("engine.parallel.shard", inner=inner,
                   direction=direction, start=start, stop=stop):
            _evaluate_rows(inner, direction, params, state, in_block,
                           out_block, shape, start, stop)
    except BaseException as exc:
        # Traceback frames pin the buffer views and would make
        # ``close()`` below fail with BufferError; drop the inner
        # frames (the message still reaches the parent).
        trace = exc.__traceback__
        while trace is not None:
            if trace.tb_frame.f_code is not _worker_shard.__code__:
                try:
                    trace.tb_frame.clear()
                except RuntimeError:  # pragma: no cover - executing
                    pass
            trace = trace.tb_next
        raise
    finally:
        in_block.close()
        out_block.close()


def _evaluate_block_rows(inner: str, direction: str, state: float,
                         in_block, out_block, shape, start: int,
                         stop: int) -> None:
    """Evaluate sample-block rows ``[start, stop)`` in place.

    The staged matrix carries one sample per row: the parameter
    fields in the leading columns (:data:`~repro.engine.blocks
    .PARAM_FIELDS` order), that sample's Δ row after them.  Kept as
    its own frame for the same ``close()`` reason as
    :func:`_evaluate_rows`.
    """
    from .blocks import PARAM_FIELDS, block_delays, block_from_matrix

    width = len(PARAM_FIELDS)
    flat = np.ndarray(shape, dtype=np.float64, buffer=in_block.buf)
    out = np.ndarray((shape[0], shape[1] - width), dtype=np.float64,
                     buffer=out_block.buf)
    rows = block_from_matrix(flat[start:stop, :width])
    out[start:stop] = block_delays(get_engine(inner), direction,
                                   rows, flat[start:stop, width:],
                                   state)


def _worker_block_shard(inner: str, direction: str, state: float,
                        in_name: str, out_name: str, shape: tuple,
                        start: int, stop: int) -> None:
    """Evaluate one sample-block shard inside a worker process.

    The block twin of :func:`_worker_shard`: sharding is over the
    *sample* axis, so every worker rebuilds its slice of the
    parameter block from the staged matrix and runs the inner
    backend's block kernel on it.
    """
    in_block = _attach(in_name)
    try:
        out_block = _attach(out_name)
    except BaseException:  # pragma: no cover - second attach failing
        in_block.close()
        raise
    try:
        with _span("engine.parallel.block_shard", inner=inner,
                   direction=direction, start=start, stop=stop):
            _evaluate_block_rows(inner, direction, state, in_block,
                                 out_block, shape, start, stop)
    except BaseException as exc:
        trace = exc.__traceback__
        while trace is not None:
            if (trace.tb_frame.f_code
                    is not _worker_block_shard.__code__):
                try:
                    trace.tb_frame.clear()
                except RuntimeError:  # pragma: no cover - executing
                    pass
            trace = trace.tb_next
        raise
    finally:
        in_block.close()
        out_block.close()


def _release(block: shared_memory.SharedMemory) -> None:
    """Unmap and remove one owned shared block."""
    try:
        block.close()
    finally:
        block.unlink()


def _default_processes() -> int:
    env = os.environ.get("REPRO_PARALLEL_PROCESSES")
    if env:
        try:
            requested = int(env)
        except ValueError:
            raise ParameterError(
                "REPRO_PARALLEL_PROCESSES must be an integer, got "
                f"{env!r}") from None
        if requested < 1:
            raise ParameterError(
                "REPRO_PARALLEL_PROCESSES must be >= 1, got "
                f"{requested}")
        return requested
    return max(1, min(8, os.cpu_count() or 1))


class ParallelEngine:
    """Sharded multi-process delay engine wrapping an inner backend.

    Parameters
    ----------
    inner : str, optional
        Registry *name* of the backend run inside each worker
        (default ``"vectorized"``).  A name rather than an instance so
        that workers resolve their own process-local instance.
    processes : int, optional
        Worker count.  Defaults to ``REPRO_PARALLEL_PROCESSES`` or
        ``min(8, cpu_count)``.
    min_shard_points : int, optional
        Sweeps smaller than this are evaluated inline by the inner
        backend (default 1024) — below that the pool round trip
        costs more than it saves.

    Notes
    -----
    The engine is registered under the name ``"parallel"``; sharding
    only partitions the Δ axis, so results match the inner backend to
    the termination precision of its batch root search (``≪ 1e-12``
    s).  With one worker, or for small sweeps, no processes are ever
    spawned.
    """

    name = "parallel"

    def __init__(self, inner: str = "vectorized",
                 processes: int | None = None,
                 min_shard_points: int = _MIN_SHARD_POINTS):
        if not isinstance(inner, str):
            raise ParameterError(
                "inner backend must be a registry name (workers "
                "resolve their own instances)")
        if min_shard_points < 1:
            raise ParameterError("min_shard_points must be >= 1")
        self.inner = inner
        self.processes = (int(processes) if processes is not None
                          else _default_processes())
        if self.processes < 1:
            raise ParameterError("processes must be >= 1")
        self.min_shard_points = int(min_shard_points)
        self._pool = None
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            # fork shares the already-imported package with the
            # workers; fall back to the platform default elsewhere.
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            self._pool = context.Pool(self.processes)
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (recreated lazily if used again)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # sharded evaluation
    # ------------------------------------------------------------------

    def _shard_bounds(self, rows: int) -> "list[tuple[int, int]]":
        """Load-aware row ranges for one sweep.

        Always at least one shard per worker (so every process takes
        part), growing to :data:`_SHARDS_PER_WORKER` shards per
        worker once the sweep is large enough that each still holds
        ``min_shard_points`` rows — the surplus shards let the pool
        hand extra slices to whichever workers finish first instead
        of idling behind a straggler.
        """
        num = min(rows, _SHARDS_PER_WORKER * self.processes,
                  max(self.processes, rows // self.min_shard_points))
        return [(rows * i // num, rows * (i + 1) // num)
                for i in range(num)]

    def _run(self, direction: str, params, deltas,
             state: float) -> np.ndarray:
        """Shard a sweep over the pool, or serve it inline if small.

        For 2-input parameters the Δ array is sharded element-wise;
        for n-input parameters the grid is flattened to ``(rows,
        n−1)`` Δ-vectors and sharded row-wise — either way the shard
        count the inline-fallback threshold sees is the number of
        *evaluations*, not raw floats.  The flattened sweep and the
        result vector are staged in shared-memory blocks owned (and
        finally unlinked) by this process; workers receive only block
        names and row ranges.
        """
        d = np.asarray(deltas, dtype=float)
        if isinstance(params, GeneralizedNorParameters):
            flat, shape = offset_rows(params.num_inputs, d)
        else:
            flat = np.ravel(d)
            shape = d.shape
        inner = get_engine(self.inner)
        if (flat.shape[0] < self.min_shard_points
                or self.processes == 1):
            return delays_for_direction(inner, direction, params, d,
                                        state)
        if np.isnan(flat).any():
            raise ParameterError("input separations must not be NaN")
        rows = flat.shape[0]
        pool = self._ensure_pool()
        with _span("engine.parallel.stage", rows=rows) as staged:
            in_block = shared_memory.SharedMemory(create=True,
                                                  size=flat.nbytes)
            try:
                out_block = shared_memory.SharedMemory(
                    create=True, size=rows * flat.itemsize)
            except BaseException:  # pragma: no cover - alloc failure
                _release(in_block)
                raise
            staged.set(bytes=flat.nbytes + rows * flat.itemsize)
        try:
            with _span("engine.parallel.copy_in", rows=rows):
                np.ndarray(flat.shape, dtype=np.float64,
                           buffer=in_block.buf)[...] = flat
            bounds = self._shard_bounds(rows)
            with _span("engine.parallel.fan_out",
                       shards=len(bounds), rows=rows,
                       processes=self.processes):
                pool.starmap(
                    _worker_shard,
                    [(self.inner, direction, params, state,
                      in_block.name, out_block.name, flat.shape,
                      start, stop)
                     for start, stop in bounds])
            with _span("engine.parallel.copy_out", rows=rows):
                return np.array(np.ndarray(
                    (rows,), dtype=np.float64,
                    buffer=out_block.buf)).reshape(shape)
        finally:
            _release(in_block)
            _release(out_block)

    def _run_block(self, direction: str, block, deltas,
                   state: float) -> np.ndarray:
        """Shard a sample-block sweep over the pool, or serve it
        inline.

        Sharding is over the *sample* axis: each worker receives a
        contiguous slice of parameter records together with their Δ
        rows, staged as one homogeneous ``(N, fields + M)`` matrix in
        shared memory.  The inline-fallback threshold counts
        evaluations (``N × M``), matching the Δ-sharded path.
        """
        from .blocks import (block_delays, field_matrix,
                             validate_block)

        block = validate_block(block)
        d = np.asarray(deltas, dtype=float)
        squeeze = d.ndim == 1
        d2 = d[:, None] if squeeze else d
        if (d2.ndim != 2 or d2.shape[0] != block.shape[0]
                or np.isnan(d2).any()):
            # Delegate malformed input to the kernel's validation for
            # a uniform error message.
            return block_delays(get_engine(self.inner), direction,
                                block, deltas, state)
        if (d2.size < self.min_shard_points or self.processes == 1):
            return block_delays(get_engine(self.inner), direction,
                                block, d, state)
        staged = np.concatenate(
            [field_matrix(block), np.ascontiguousarray(d2)], axis=1)
        rows = staged.shape[0]
        pool = self._ensure_pool()
        out_bytes = d2.size * staged.itemsize
        with _span("engine.parallel.stage", rows=rows) as stage_span:
            in_block = shared_memory.SharedMemory(create=True,
                                                  size=staged.nbytes)
            try:
                out_block = shared_memory.SharedMemory(
                    create=True, size=out_bytes)
            except BaseException:  # pragma: no cover - alloc failure
                _release(in_block)
                raise
            stage_span.set(bytes=staged.nbytes + out_bytes)
        try:
            with _span("engine.parallel.copy_in", rows=rows):
                np.ndarray(staged.shape, dtype=np.float64,
                           buffer=in_block.buf)[...] = staged
            bounds = self._shard_bounds(rows)
            with _span("engine.parallel.fan_out",
                       shards=len(bounds), rows=rows,
                       processes=self.processes):
                pool.starmap(
                    _worker_block_shard,
                    [(self.inner, direction, state, in_block.name,
                      out_block.name, staged.shape, start, stop)
                     for start, stop in bounds])
            with _span("engine.parallel.copy_out", rows=rows):
                out = np.array(np.ndarray(
                    d2.shape, dtype=np.float64,
                    buffer=out_block.buf))
            return out[:, 0] if squeeze else out
        finally:
            _release(in_block)
            _release(out_block)

    @traced_entry_point("engine.delays_block", "falling")
    def delays_falling_block(self, block, deltas) -> np.ndarray:
        """Falling MIS delays for a parameter sample block, sample
        rows sharded across workers.

        Parameters
        ----------
        block : numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(N,)``.
        deltas : array_like of float
            Input separations in seconds, shape ``(N,)`` or
            ``(N, M)``; ``±inf`` allowed, NaN rejected.  Blocks with
            fewer than :attr:`min_shard_points` evaluations are
            served inline by the inner backend.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        return self._run_block("falling", block, deltas, 0.0)

    @traced_entry_point("engine.delays_block", "rising")
    def delays_rising_block(self, block, deltas,
                            vn_init: float = 0.0) -> np.ndarray:
        """Rising MIS delays for a parameter sample block, sample
        rows sharded across workers.

        Parameters
        ----------
        block : numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(N,)``.
        deltas : array_like of float
            Input separations in seconds, shape ``(N,)`` or
            ``(N, M)``; ``±inf`` allowed, NaN rejected.
        vn_init : float, optional
            Mode-(1,1) internal-node voltage in volts, shared by the
            block (default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        return self._run_block("rising", block, deltas,
                               float(vn_init))

    @traced_entry_point("engine.delays", "falling")
    def delays_falling(self, params: NorGateParameters,
                       deltas) -> np.ndarray:
        """Falling-output MIS delays ``δ↓_M(Δ)``, sharded across workers.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations ``Δ = t_B − t_A`` in seconds; any shape,
            ``±inf`` (SIS limits) allowed.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*, ``δ_min``
            included.
        """
        return self._run("falling", params, deltas, 0.0)

    @traced_entry_point("engine.delays", "rising")
    def delays_rising(self, params: NorGateParameters, deltas,
                      vn_init: float = 0.0) -> np.ndarray:
        """Rising-output MIS delays ``δ↑_M(Δ)``, sharded across workers.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; any shape, ``±inf`` allowed.
        vn_init : float, optional
            Internal-node voltage ``X`` of mode (1,1) in volts
            (default 0.0, the paper's GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*.
        """
        return self._run("rising", params, deltas, vn_init)

    @traced_entry_point("engine.delays_n", "falling")
    def delays_falling_n(self, params: GeneralizedNorParameters,
                         deltas) -> np.ndarray:
        """Falling n-input MIS delays, Δ-vector rows sharded across
        workers.

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus.  Grids with fewer than
            :attr:`min_shard_points` rows are served inline by the
            inner backend.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        return self._run("falling", params, deltas, 0.0)

    @traced_entry_point("engine.delays_n", "rising")
    def delays_rising_n(self, params: GeneralizedNorParameters,
                        deltas, internal_init: float = 0.0
                        ) -> np.ndarray:
        """Rising n-input MIS delays, Δ-vector rows sharded across
        workers.

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus.
        internal_init : float, optional
            Initial voltage of every internal chain node, volts
            (default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        return self._run("rising", params, deltas,
                         float(internal_init))


register_engine(ParallelEngine.name, ParallelEngine)
