"""Parameter-block evaluation: one call, thousands of parameter sets.

The closed forms of :mod:`repro.engine.vectorized` batch over Δ for
**one** parameter set — the right shape for sweeps and STA, but not
for Monte-Carlo, where every sample is a *different* parameter set.
This module flattens the other axis: a **sample block** is a
structured NumPy array with one record per parameter set
(:data:`BLOCK_DTYPE`), and the kernels below evaluate the whole block
against a per-sample Δ matrix in one NumPy pass.

Everything the per-parameter-set contexts of the vectorized engine
memoize — the mode constants α, β, λ₁, λ₂ of
:func:`repro.core.modes.mode_10_constants` /
:func:`~repro.core.modes.mode_00_constants`, the first-segment
solutions, the settle cutoff — is an elementary closed form in
``(r1..r4, cn, co, vdd)``, so it vectorizes over the sample axis
directly.  The only iterative piece, the two-exponential threshold
crossing, runs through the same safeguarded lockstep Newton as the
n-input kernel (:func:`repro.core.multi_input._newton_bisect_refine`),
generalized to per-row eigenvalues.

The branch structure (sign of Δ, the ``settle_time`` cutoff, early
first-segment crossings) mirrors :mod:`repro.engine.vectorized`
exactly, so block results match the scalar reference to the same
≤ 1e-12 s parity bound (asserted by the stats kernel tests).

Entry points
------------
Engines expose the block kernels as ``delays_falling_block`` /
``delays_rising_block`` methods; :func:`block_delays` is the
dispatcher (with a per-sample loop fallback for backends without
native block support).  :mod:`repro.stats.montecarlo` is the primary
consumer.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.hybrid_model import _SETTLE_FACTOR
from ..core.multi_input import _newton_bisect_refine
from ..core.parameters import NorGateParameters
from ..errors import NoCrossingError, ParameterError

__all__ = [
    "BLOCK_DTYPE",
    "PARAM_FIELDS",
    "block_delays",
    "block_delays_loop",
    "block_from_matrix",
    "block_from_parameters",
    "falling_delays_block",
    "field_matrix",
    "parameters_at",
    "rising_delays_block",
    "validate_block",
]

#: Field order of a sample block — the constructor order of
#: :class:`~repro.core.parameters.NorGateParameters`.
PARAM_FIELDS = ("r1", "r2", "r3", "r4", "cn", "co", "vdd",
                "delta_min")

#: Structured dtype of a sample block: one float64 per parameter.
BLOCK_DTYPE = np.dtype([(name, np.float64) for name in PARAM_FIELDS])

#: Expansion attempts when bracketing a crossing towards t → ∞ (same
#: budget as the vectorized engine).
_BRACKET_STEPS = 200


# ----------------------------------------------------------------------
# block construction / validation
# ----------------------------------------------------------------------

def block_from_parameters(params) -> np.ndarray:
    """Pack parameter sets into a sample block.

    Parameters
    ----------
    params : NorGateParameters or sequence of NorGateParameters
        The parameter sets, one record each.

    Returns
    -------
    numpy.ndarray
        Structured array of dtype :data:`BLOCK_DTYPE`, shape
        ``(len(params),)``.
    """
    if isinstance(params, NorGateParameters):
        params = [params]
    block = np.empty(len(params), dtype=BLOCK_DTYPE)
    for i, p in enumerate(params):
        block[i] = tuple(getattr(p, name) for name in PARAM_FIELDS)
    return block


def block_from_matrix(matrix) -> np.ndarray:
    """Rebuild a sample block from its plain-float field matrix.

    The inverse of viewing a block as an ``(N, len(PARAM_FIELDS))``
    float array — the shape the parallel engine ships through shared
    memory.

    Parameters
    ----------
    matrix : array_like of float
        Field values, shape ``(N, len(PARAM_FIELDS))``, columns in
        :data:`PARAM_FIELDS` order.

    Returns
    -------
    numpy.ndarray
        Structured array of dtype :data:`BLOCK_DTYPE`, shape
        ``(N,)``.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != len(PARAM_FIELDS):
        raise ParameterError(
            f"field matrix must have {len(PARAM_FIELDS)} columns, "
            f"got shape {matrix.shape}")
    return matrix.view(BLOCK_DTYPE).reshape(matrix.shape[0])


def field_matrix(block: np.ndarray) -> np.ndarray:
    """View a sample block as a plain ``(N, len(PARAM_FIELDS))`` float
    matrix.

    The inverse of :func:`block_from_matrix` — the homogeneous shape
    the parallel engine stages through shared memory.  Zero-copy when
    the block is contiguous.

    Parameters
    ----------
    block : numpy.ndarray
        Sample block of dtype :data:`BLOCK_DTYPE`, shape ``(N,)``.

    Returns
    -------
    numpy.ndarray
        Float64 matrix, columns in :data:`PARAM_FIELDS` order.
    """
    block = np.ascontiguousarray(block)
    return block.view(np.float64).reshape(block.shape[0],
                                          len(PARAM_FIELDS))


def parameters_at(block: np.ndarray, index: int) -> NorGateParameters:
    """Materialize one block record as a parameter object.

    Parameters
    ----------
    block : numpy.ndarray
        Sample block of dtype :data:`BLOCK_DTYPE`.
    index : int
        Record index.

    Returns
    -------
    NorGateParameters
        The (validated) scalar parameter set.
    """
    row = block[index]
    return NorGateParameters(
        **{name: float(row[name]) for name in PARAM_FIELDS})


def validate_block(block) -> np.ndarray:
    """Check a sample block like the scalar parameter constructor.

    Parameters
    ----------
    block : numpy.ndarray
        Structured array of dtype :data:`BLOCK_DTYPE` (any 1-D
        length).

    Returns
    -------
    numpy.ndarray
        The validated block (unchanged).

    Raises
    ------
    ParameterError
        On a wrong dtype, or any record a
        :class:`~repro.core.parameters.NorGateParameters` constructor
        would reject (non-positive / non-finite electrical values,
        negative ``delta_min``).
    """
    block = np.asarray(block)
    if block.dtype != BLOCK_DTYPE:
        raise ParameterError(
            f"sample block must have dtype {BLOCK_DTYPE}, got "
            f"{block.dtype}")
    if block.ndim != 1:
        raise ParameterError("sample block must be 1-D")
    for name in PARAM_FIELDS[:-1]:
        values = block[name]
        if not np.all(np.isfinite(values) & (values > 0.0)):
            raise ParameterError(
                f"{name} must be positive and finite in every block "
                "record")
    dmin = block["delta_min"]
    if not np.all(np.isfinite(dmin) & (dmin >= 0.0)):
        raise ParameterError(
            "delta_min must be non-negative and finite in every "
            "block record")
    return block


def _prepare_deltas(block: np.ndarray, deltas
                    ) -> tuple[np.ndarray, bool]:
    """Normalize *deltas* to ``(N, M)`` against an ``(N,)`` block."""
    d = np.asarray(deltas, dtype=float)
    if np.isnan(d).any():
        raise ParameterError("input separations must not be NaN")
    squeeze = d.ndim == 1
    if squeeze:
        d = d[:, None]
    if d.ndim != 2 or d.shape[0] != block.shape[0]:
        raise ParameterError(
            f"deltas must have shape (N,) or (N, M) with N = "
            f"{block.shape[0]} samples, got {np.shape(deltas)}")
    return d, squeeze


# ----------------------------------------------------------------------
# per-row closed forms (arrays over the sample axis)
# ----------------------------------------------------------------------

def _mode10_constants(r2, r3, cn, co):
    """Mode (1,0) constants per row (paper eqs. (1)–(3))."""
    denom = 2.0 * co * cn * r2 * r3
    alpha = (co * r3 - cn * (r2 + r3)) / denom
    radicand = ((co * r3 + cn * (r2 + r3)) ** 2
                - 4.0 * co * cn * r2 * r3)
    beta = np.sqrt(radicand) / denom
    gamma = -(co * r3 + cn * (r2 + r3)) / denom
    return alpha, beta, gamma + beta, gamma - beta


def _mode00_constants(r1, r2, cn, co):
    """Mode (0,0) constants per row (paper eqs. (4)–(7))."""
    denom = 2.0 * co * cn * r1 * r2
    alpha = (co * (r1 + r2) - cn * r1) / denom
    radicand = ((cn * r1 + co * (r1 + r2)) ** 2
                - 4.0 * co * cn * r1 * r2)
    beta = np.sqrt(radicand) / denom
    gamma = -(cn * r1 + co * (r1 + r2)) / denom
    return alpha, beta, gamma + beta, gamma - beta


def _settle(block: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.hybrid_model.settle_time`."""
    r1, r2, r3, r4 = (block["r1"], block["r2"], block["r3"],
                      block["r4"])
    cn, co = block["cn"], block["co"]
    taus = np.stack([co * r3 * r4 / (r3 + r4), co * r3, co * r4,
                     cn * r1, cn * r2, co * r2, co * r1])
    return _SETTLE_FACTOR * taus.max(axis=0)


def _expand_brackets(k1, k2, l1, l2, lo, level, upward: bool
                     ) -> np.ndarray:
    """Bracket ``k1 e^{λ1 t} + k2 e^{λ2 t}`` across *level* per row.

    Expands from ``lo`` in growing steps (the scalar bracketing
    schedule) until the exp-sum reaches *level* from the requested
    side; the callers guarantee the limit does, so failure to bracket
    within the step budget is a defect, not an input condition.
    """
    slowest = np.maximum(l1, l2)  # both negative; decays slowest
    step = 2.0 / np.abs(slowest)
    hi = np.full_like(lo, math.inf)
    cur = lo + step
    pending = np.arange(lo.shape[0])
    for _ in range(_BRACKET_STEPS):
        value = (k1[pending] * np.exp(l1[pending] * cur[pending])
                 + k2[pending] * np.exp(l2[pending] * cur[pending]))
        done = (value >= level[pending] if upward
                else value <= level[pending])
        hi[pending[done]] = cur[pending[done]]
        pending = pending[~done]
        if not pending.size:
            return hi
        step[pending] *= 1.5
        cur[pending] += step[pending]
    raise NoCrossingError(  # pragma: no cover - defensive
        "failed to bracket a crossing that the limit analysis "
        "promised")


def _refine(k1, k2, l1, l2, lo, hi, level, downward: bool
            ) -> np.ndarray:
    """Per-row Newton refinement of a bracketed 2-exp crossing."""
    return _newton_bisect_refine(
        np.stack([k1, k2], axis=-1), np.stack([l1, l2], axis=-1),
        lo, hi, level, downward=downward)


# ----------------------------------------------------------------------
# falling transition (inputs rise, output VDD → GND)
# ----------------------------------------------------------------------

def falling_delays_block(block, deltas) -> np.ndarray:
    """Falling MIS delays for a whole sample block at once.

    The parameter-axis twin of
    :meth:`repro.engine.vectorized.VectorizedEngine.delays_falling`:
    sample ``i`` is evaluated at Δ row ``deltas[i]``, every segment
    constant computed as an array over the sample axis.

    Parameters
    ----------
    block : numpy.ndarray
        Sample block of dtype :data:`BLOCK_DTYPE`, shape ``(N,)``
        (see :func:`validate_block`).
    deltas : array_like of float
        Input separations in seconds, shape ``(N,)`` or ``(N, M)``;
        ``±inf`` allowed, NaN rejected.

    Returns
    -------
    numpy.ndarray
        Delays in seconds (``δ_min`` included), same shape as
        *deltas*; matches the scalar reference to ≤ 1e-12 s.
    """
    block = validate_block(block)
    d, squeeze = _prepare_deltas(block, deltas)

    r2, r3, r4 = block["r2"], block["r3"], block["r4"]
    cn, co, vdd = block["cn"], block["co"], block["vdd"]
    vth = 0.5 * vdd
    alpha, beta, l1, l2 = _mode10_constants(r2, r3, cn, co)

    # vo of mode (1,0) entered at (VDD, VDD):  c1 + c2 = VDD·CN·R2,
    # vo(t) = c1 (α+β) e^{λ1 t} + c2 (α−β) e^{λ2 t}  from VDD.
    total = vdd * cn * r2
    c1 = (vdd - total * (alpha - beta)) / (2.0 * beta)
    c2 = total - c1
    k1 = c1 * (alpha + beta)
    k2 = c2 * (alpha - beta)

    # First downward Vth crossing inside pure mode (1,0): vo starts
    # at VDD with negative slope and the level sits above the late
    # tail, so the root is unique — bracket by expansion, refine in
    # lockstep with per-row eigenvalues.
    zeros = np.zeros(block.shape[0])
    hi = _expand_brackets(k1, k2, l1, l2, zeros, vth, upward=False)
    t10 = _refine(k1, k2, l1, l2, zeros, hi, vth, downward=True)

    tau_r4 = co * r4
    t01 = tau_r4 * math.log(2.0)  # vo(t) = VDD e^{−t/τ_R4}
    rate11 = -(1.0 / (co * r3) + 1.0 / tau_r4)

    col = (slice(None), None)  # broadcast row constants over Δ
    settle = _settle(block)[col]
    pos = d >= 0.0
    mag = np.minimum(np.abs(d), settle)
    with np.errstate(divide="ignore", invalid="ignore",
                     over="ignore", under="ignore"):
        # (1,0) then (1,1) for Δ ≥ 0; (0,1) then (1,1) for Δ < 0.
        vo_pos = k1[col] * np.exp(l1[col] * mag) \
            + k2[col] * np.exp(l2[col] * mag)
        vo_neg = vdd[col] * np.exp(-mag / tau_r4[col])
        vo_d = np.where(pos, vo_pos, vo_neg)
        first = np.where(pos, t10[col], t01[col])
        late = mag + np.log(vth[col] / vo_d) / rate11[col]
        crossing = np.where(mag >= first, first, late)
    out = crossing + block["delta_min"][col]
    return out[:, 0] if squeeze else out


# ----------------------------------------------------------------------
# rising transition (inputs fall, output GND → VDD)
# ----------------------------------------------------------------------

def _crossing_00(alpha, beta, l1, l2, vn_comp, vdd, vth, vn0, vo0
                 ) -> np.ndarray:
    """First upward Vth crossing of mode (0,0), per-row constants.

    The parameter-axis generalization of the vectorized engine's
    ``_batch_crossing_00``: every element carries its own
    eigenvalues, eigenvector components and threshold.  All elements
    must start below the threshold (guaranteed by the callers).
    """
    total = (vn0 - vdd) / vn_comp
    c1 = ((vo0 - vdd) - total * (alpha - beta)) / (2.0 * beta)
    c2 = total - c1
    k1 = c1 * (alpha + beta)
    k2 = c2 * (alpha - beta)
    offset = vdd - vth  # > 0: the settled output sits above Vth

    if np.any(offset + k1 + k2 > 0.0):
        raise NoCrossingError(
            "mode (0,0) entered above threshold; output never "
            "crosses Vth upwards")

    # At most one stationary point splits each element into monotone
    # pieces: the crossing lies in [0, ts] if f(ts) >= 0, else in
    # [max(ts, 0), inf).
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = -(k2 * l2) / (k1 * l1)
        ts = np.log(ratio) / (l1 - l2)
    has_ts = np.isfinite(ts) & (ts > 0.0)
    lo = np.zeros_like(vn0)
    hi = np.full_like(vn0, math.inf)
    if has_ts.any():
        t_eval = np.where(has_ts, ts, 0.0)
        f_ts = (offset + k1 * np.exp(l1 * t_eval)
                + k2 * np.exp(l2 * t_eval))
        first_piece = has_ts & (f_ts >= 0.0)
        second_piece = has_ts & ~first_piece
        hi[first_piece] = ts[first_piece]
        lo[second_piece] = ts[second_piece]

    open_ended = ~np.isfinite(hi)
    if open_ended.any():
        sel = np.nonzero(open_ended)[0]
        hi[sel] = _expand_brackets(k1[sel], k2[sel], l1[sel],
                                   l2[sel], lo[sel], -offset[sel],
                                   upward=True)
    return _refine(k1, k2, l1, l2, lo, hi, -offset, downward=False)


def rising_delays_block(block, deltas,
                        vn_init: float = 0.0) -> np.ndarray:
    """Rising MIS delays for a whole sample block at once.

    The parameter-axis twin of
    :meth:`repro.engine.vectorized.VectorizedEngine.delays_rising`,
    including the early charge-sharing crossing of the intermediate
    (1,0) mode for ``vn_init > 0``.

    Parameters
    ----------
    block : numpy.ndarray
        Sample block of dtype :data:`BLOCK_DTYPE`, shape ``(N,)``.
    deltas : array_like of float
        Input separations in seconds, shape ``(N,)`` or ``(N, M)``;
        ``±inf`` allowed, NaN rejected.
    vn_init : float, optional
        Mode-(1,1) internal-node voltage ``X`` in volts, shared by
        the block (default 0.0, the GND worst case).

    Returns
    -------
    numpy.ndarray
        Delays in seconds (``δ_min`` included), same shape as
        *deltas*; matches the scalar reference to ≤ 1e-12 s.
    """
    block = validate_block(block)
    d, squeeze = _prepare_deltas(block, deltas)
    x = float(vn_init)

    r1, r2, r3 = block["r1"], block["r2"], block["r3"]
    cn, co, vdd = block["cn"], block["co"], block["vdd"]
    vth = 0.5 * vdd
    rows = block.shape[0]

    # Mode (1,0) entered at (X, 0) — B fell first.  Charge sharing
    # can lift the output, possibly across Vth before A falls.
    alpha, beta, l1, l2 = _mode10_constants(r2, r3, cn, co)
    vn_comp10 = 1.0 / (cn * r2)
    total = x / vn_comp10
    c1 = (0.0 - total * (alpha - beta)) / (2.0 * beta)
    c2 = total - c1
    kn1, kn2 = c1 * vn_comp10, c2 * vn_comp10  # vn10 coefficients
    ko1 = c1 * (alpha + beta)                  # vo10 coefficients
    ko2 = c2 * (alpha - beta)

    # First *upward* Vth crossing of vo10, where one exists: vo10
    # starts at 0, peaks at its single stationary point, then decays
    # — the crossing exists iff the peak tops Vth.
    t_up = np.full(rows, math.inf)
    if x > 0.0:
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = -(ko2 * l2) / (ko1 * l1)
            ts = np.log(ratio) / (l1 - l2)
        has_peak = np.isfinite(ts) & (ts > 0.0)
        if has_peak.any():
            t_eval = np.where(has_peak, ts, 0.0)
            peak = (ko1 * np.exp(l1 * t_eval)
                    + ko2 * np.exp(l2 * t_eval))
            sel = np.nonzero(has_peak & (peak > vth))[0]
            if sel.size:
                t_up[sel] = _refine(
                    ko1[sel], ko2[sel], l1[sel], l2[sel],
                    np.zeros(sel.size), ts[sel], vth[sel],
                    downward=False)

    # Final mode (0,0) constants, per row.
    a00, b00, l100, l200 = _mode00_constants(r1, r2, cn, co)
    vn_comp00 = 1.0 / (cn * r2)

    col = (slice(None), None)
    settle = _settle(block)[col]
    pos = d >= 0.0
    mag = np.minimum(np.abs(d), settle)
    with np.errstate(over="ignore", under="ignore"):
        # (0,1) from (X, 0): output pinned at GND, only V_N moves.
        vn01 = vdd[col] + (x - vdd[col]) \
            * np.exp(-mag / (cn * r1)[col])
        # (1,0) from (X, 0): both nodes move.
        e1 = np.exp(l1[col] * mag)
        e2 = np.exp(l2[col] * mag)
        vn10 = kn1[col] * e1 + kn2[col] * e2
        vo10 = ko1[col] * e1 + ko2[col] * e2
    vn0 = np.where(pos, vn01, vn10)
    vo0 = np.where(pos, 0.0, vo10)

    # The rising delay is referenced to the *later* input: final-
    # segment crossings equal the (0,0)-local crossing time; only an
    # early upward crossing inside (1,0) gives a Δ-dependent offset.
    early = (~pos) & (mag >= t_up[col])
    delay = np.empty_like(d)
    delay[early] = np.broadcast_to(t_up[col], d.shape)[early] \
        - mag[early]
    late = ~early
    if late.any():
        grid = np.broadcast_to
        idx = np.nonzero(late)
        delay[late] = _crossing_00(
            grid(a00[col], d.shape)[idx],
            grid(b00[col], d.shape)[idx],
            grid(l100[col], d.shape)[idx],
            grid(l200[col], d.shape)[idx],
            grid(vn_comp00[col], d.shape)[idx],
            grid(vdd[col], d.shape)[idx],
            grid(vth[col], d.shape)[idx],
            vn0[late], vo0[late])
    out = delay + block["delta_min"][col]
    return out[:, 0] if squeeze else out


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------

def block_delays_loop(engine, direction: str, block, deltas,
                      vn_init: float = 0.0) -> np.ndarray:
    """Per-sample reference loop over an engine's scalar entry points.

    The ground-truth (and benchmark-baseline) evaluation of a sample
    block: one ordinary ``delays_falling`` / ``delays_rising`` call
    per record.  Backends without native block kernels (the scalar
    ``reference`` engine) serve their block entry points with this.

    Parameters
    ----------
    engine : DelayEngine
        Backend whose per-parameter-set entry points run the loop.
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    block : numpy.ndarray
        Sample block of dtype :data:`BLOCK_DTYPE`, shape ``(N,)``.
    deltas : array_like of float
        Input separations in seconds, shape ``(N,)`` or ``(N, M)``.
    vn_init : float, optional
        Rising-direction internal-node voltage in volts.

    Returns
    -------
    numpy.ndarray
        Delays in seconds, same shape as *deltas*.
    """
    from .base import delays_for_direction

    block = validate_block(block)
    d, squeeze = _prepare_deltas(block, deltas)
    out = np.empty_like(d)
    for i in range(block.shape[0]):
        out[i] = delays_for_direction(engine, direction,
                                      parameters_at(block, i), d[i],
                                      vn_init)
    return out[:, 0] if squeeze else out


def block_delays(engine, direction: str, block, deltas,
                 vn_init: float = 0.0) -> np.ndarray:
    """Dispatch a sample-block evaluation by direction.

    The block twin of
    :func:`repro.engine.base.delays_for_direction`: resolves the
    direction to the engine's ``delays_falling_block`` /
    ``delays_rising_block`` entry point, falling back to the
    per-sample loop for backends that predate the block protocol.

    Parameters
    ----------
    engine : DelayEngine
        Backend instance the block runs on.
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    block : numpy.ndarray
        Sample block of dtype :data:`BLOCK_DTYPE`, shape ``(N,)``.
    deltas : array_like of float
        Input separations in seconds, shape ``(N,)`` or ``(N, M)``.
    vn_init : float, optional
        Rising-direction internal-node voltage in volts (default
        0.0).

    Returns
    -------
    numpy.ndarray
        Delays in seconds, same shape as *deltas*.

    Raises
    ------
    ValueError
        If *direction* is neither ``"falling"`` nor ``"rising"``.
    """
    if direction not in ("falling", "rising"):
        raise ValueError(f"direction must be 'falling' or 'rising', "
                         f"got {direction!r}")
    if direction == "falling":
        method = getattr(engine, "delays_falling_block", None)
        if method is None:
            return block_delays_loop(engine, direction, block,
                                     deltas)
        return method(block, deltas)
    method = getattr(engine, "delays_rising_block", None)
    if method is None:
        return block_delays_loop(engine, direction, block, deltas,
                                 vn_init)
    return method(block, deltas, vn_init)
