"""The scalar reference backend.

Wraps today's exact per-Δ code path — one
:class:`~repro.core.trajectory.PiecewiseTrajectory` plus Brent root
search per separation — behind the array protocol of
:mod:`repro.engine.base`.  It is the parity baseline every other
backend is tested against, and the honest cost model of the unbatched
computation in the throughput benchmarks.
"""

from __future__ import annotations

import functools

import numpy as np

from ..core.hybrid_model import HybridNorModel
from ..core.parameters import NorGateParameters
from .base import register_engine

__all__ = ["ReferenceEngine"]


@functools.lru_cache(maxsize=256)
def _model(params: NorGateParameters) -> HybridNorModel:
    """Per-parameter-set model cache (the model itself is stateless)."""
    return HybridNorModel(params)


class ReferenceEngine:
    """Scalar per-Δ evaluation through the exact trajectory solver."""

    name = "reference"

    def delays_falling(self, params: NorGateParameters,
                       deltas) -> np.ndarray:
        """Falling MIS delays ``δ↓_M(Δ)``, one exact root search per Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; ``±inf`` allowed.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        model = _model(params)
        d = np.asarray(deltas, dtype=float)
        out = np.array([model.delay_falling(float(x))
                        for x in np.ravel(d)])
        return out.reshape(d.shape)

    def delays_rising(self, params: NorGateParameters, deltas,
                      vn_init: float = 0.0) -> np.ndarray:
        """Rising MIS delays ``δ↑_M(Δ)``, one exact root search per Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; ``±inf`` allowed.
        vn_init : float, optional
            Mode-(1,1) internal-node voltage in volts (default 0.0).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        model = _model(params)
        d = np.asarray(deltas, dtype=float)
        out = np.array([model.delay_rising(float(x), vn_init)
                        for x in np.ravel(d)])
        return out.reshape(d.shape)


register_engine(ReferenceEngine.name, ReferenceEngine)
