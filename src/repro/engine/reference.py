"""The scalar reference backend.

Wraps today's exact per-Δ code path — one
:class:`~repro.core.trajectory.PiecewiseTrajectory` plus Brent root
search per separation — behind the array protocol of
:mod:`repro.engine.base`.  It is the parity baseline every other
backend is tested against, and the honest cost model of the unbatched
computation in the throughput benchmarks.
"""

from __future__ import annotations

import functools

import numpy as np

from ..core.hybrid_model import HybridNorModel
from ..core.multi_input import (GeneralizedNorParameters,
                                generalized_model, offset_rows)
from ..core.parameters import NorGateParameters
from .base import register_engine, traced_entry_point

__all__ = ["ReferenceEngine"]


@functools.lru_cache(maxsize=256)
def _model(params: NorGateParameters) -> HybridNorModel:
    """Per-parameter-set model cache (the model itself is stateless)."""
    return HybridNorModel(params)


def _prepare_rows(params: GeneralizedNorParameters, deltas,
                  settle: float) -> tuple[np.ndarray, tuple[int, ...]]:
    """Validate a Δ-vector grid and clip it to the settling region."""
    flat, shape = offset_rows(params.num_inputs, deltas)
    return np.clip(flat, -settle, settle), shape


class ReferenceEngine:
    """Scalar per-Δ evaluation through the exact trajectory solver."""

    name = "reference"

    @traced_entry_point("engine.delays", "falling")
    def delays_falling(self, params: NorGateParameters,
                       deltas) -> np.ndarray:
        """Falling MIS delays ``δ↓_M(Δ)``, one exact root search per Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; ``±inf`` allowed.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        model = _model(params)
        d = np.asarray(deltas, dtype=float)
        out = np.array([model.delay_falling(float(x))
                        for x in np.ravel(d)])
        return out.reshape(d.shape)

    @traced_entry_point("engine.delays", "rising")
    def delays_rising(self, params: NorGateParameters, deltas,
                      vn_init: float = 0.0) -> np.ndarray:
        """Rising MIS delays ``δ↑_M(Δ)``, one exact root search per Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; ``±inf`` allowed.
        vn_init : float, optional
            Mode-(1,1) internal-node voltage in volts (default 0.0).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        model = _model(params)
        d = np.asarray(deltas, dtype=float)
        out = np.array([model.delay_rising(float(x), vn_init)
                        for x in np.ravel(d)])
        return out.reshape(d.shape)

    @traced_entry_point("engine.delays_block", "falling")
    def delays_falling_block(self, block, deltas) -> np.ndarray:
        """Falling MIS delays for a parameter sample block, one
        scalar sweep per record.

        The per-sample loop
        (:func:`repro.engine.blocks.block_delays_loop`) — the honest
        scalar baseline of the Monte-Carlo throughput benchmark.

        Parameters
        ----------
        block : numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(N,)``.
        deltas : array_like of float
            Input separations in seconds, shape ``(N,)`` or
            ``(N, M)``; ``±inf`` allowed, NaN rejected.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        from .blocks import block_delays_loop
        return block_delays_loop(self, "falling", block, deltas)

    @traced_entry_point("engine.delays_block", "rising")
    def delays_rising_block(self, block, deltas,
                            vn_init: float = 0.0) -> np.ndarray:
        """Rising MIS delays for a parameter sample block, one scalar
        sweep per record.

        Parameters
        ----------
        block : numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(N,)``.
        deltas : array_like of float
            Input separations in seconds, shape ``(N,)`` or
            ``(N, M)``; ``±inf`` allowed, NaN rejected.
        vn_init : float, optional
            Mode-(1,1) internal-node voltage in volts, shared by the
            block (default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        from .blocks import block_delays_loop
        return block_delays_loop(self, "rising", block, deltas,
                                 vn_init)

    @traced_entry_point("engine.delays_n", "falling")
    def delays_falling_n(self, params: GeneralizedNorParameters,
                         deltas) -> np.ndarray:
        """Falling n-input MIS delays, one scalar eigen-solve per row.

        The per-Δ-vector loop over
        :meth:`~repro.core.multi_input.GeneralizedNorModel.delay_falling`
        — the honest scalar baseline the batched backends are
        benchmarked against.

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        model = generalized_model(params)
        rows, shape = _prepare_rows(params, deltas,
                                    model.settle_time())
        out = np.empty(rows.shape[0])
        for i, offsets in enumerate(rows):
            times = np.concatenate([[0.0], offsets])
            out[i] = model.delay_falling(times - times.min())
        return out.reshape(shape)

    @traced_entry_point("engine.delays_n", "rising")
    def delays_rising_n(self, params: GeneralizedNorParameters,
                        deltas, internal_init: float = 0.0
                        ) -> np.ndarray:
        """Rising n-input MIS delays, one scalar eigen-solve per row.

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus.
        internal_init : float, optional
            Initial voltage of every internal chain node, volts
            (default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        model = generalized_model(params)
        rows, shape = _prepare_rows(params, deltas,
                                    model.settle_time())
        init = [float(internal_init)] * (params.num_inputs - 1)
        out = np.empty(rows.shape[0])
        for i, offsets in enumerate(rows):
            times = np.concatenate([[0.0], offsets])
            out[i] = model.delay_rising(times - times.min(),
                                        internal_init=init)
        return out.reshape(shape)


register_engine(ReferenceEngine.name, ReferenceEngine)
