"""Array-native evaluation of the hybrid-model MIS delay functions.

The scalar reference computes every delay by building a two-segment
:class:`~repro.core.trajectory.PiecewiseTrajectory` and running a Brent
root search.  But for a Δ sweep almost everything is shared:

* the *first* mode segment starts from a Δ-independent initial state,
  so its closed-form solution — and its output-threshold crossing time,
  if the output crosses before the second input arrives — is computed
  **once per parameter set**;
* the Δ-dependence enters only through the state handed to the second
  segment, which is two vectorized :class:`~repro.core.solutions.ExpSum`
  evaluations;
* the second segment's crossing is either a closed-form logarithm
  (falling transitions end in the single-exponential mode (1,1)) or a
  two-exponential root with **shared rates** across the whole batch
  (rising transitions end in mode (0,0)), solved here by a vectorized
  bracketed bisection to machine precision.

Per-parameter-set contexts (mode solutions, first-segment crossing
times, coupled-mode constants) are memoised with ``lru_cache``; the
branch structure (sign of Δ, the ``settle_time`` infinity cutoff, early
first-segment crossings) mirrors the scalar model exactly so the two
backends agree to well below the femtosecond.
"""

from __future__ import annotations

import dataclasses
import functools
import math

import numpy as np

from ..core.hybrid_model import settle_time
from ..core.modes import CoupledModeConstants, Mode, mode_00_constants
from ..core.multi_input import (GeneralizedNorParameters,
                                _newton_bisect_refine,
                                compiled_nor_kernel)
from ..core.parameters import NorGateParameters
from ..core.solutions import ExpSum, solve_mode
from ..core.trajectory import all_crossings
from ..errors import NoCrossingError, ParameterError
from .base import register_engine, traced_entry_point

__all__ = ["VectorizedEngine"]

#: Expansion attempts when bracketing a crossing towards t → ∞.
_BRACKET_STEPS = 200


def _first_directed_crossing(expsum: ExpSum, threshold: float,
                             direction: int) -> float | None:
    """First crossing of *expsum* through *threshold* with given slope
    sign, using the exact scalar machinery (same answer as the
    reference path's crossing filter)."""
    derivative = expsum.derivative()
    for t in all_crossings(expsum, threshold, 0.0, None):
        slope = 1 if derivative(t) > 0 else -1
        if slope == direction:
            return t
    return None


# ----------------------------------------------------------------------
# per-parameter-set contexts
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _FallingContext:
    """Δ-independent data of the falling transition (inputs rise)."""

    vdd: float
    vth: float
    delta_min: float
    settle: float
    #: mode (1,0) output solution from (VDD, VDD) — A switched first.
    vo10: ExpSum
    #: output crossing time within pure mode (1,0), seconds.
    t10: float
    #: output crossing time within pure mode (0,1): ``τ_R4 · ln 2``.
    t01: float
    #: mode (1,1) output decay rate ``−(1/τ_R3 + 1/τ_R4)``.
    rate11: float
    tau_r4: float


@dataclasses.dataclass(frozen=True)
class _RisingContext:
    """Δ-independent data of the rising transition (inputs fall)."""

    vdd: float
    vth: float
    delta_min: float
    settle: float
    #: mode (0,1) internal-node solution from (X, 0) — A fell first.
    vn01: ExpSum
    #: mode (1,0) solutions from (X, 0) — B fell first.
    vn10: ExpSum
    vo10: ExpSum
    #: upward output crossing within pure mode (1,0), if any (only
    #: possible when X is high enough for N→O charge sharing).
    t_up: float | None
    #: coupled constants of the final mode (0,0).
    c00: CoupledModeConstants


@functools.lru_cache(maxsize=256)
def _falling_context(params: NorGateParameters) -> _FallingContext:
    vdd, vth = params.vdd, params.vth
    sol10 = solve_mode(Mode.A_HIGH_B_LOW, params, vdd, vdd)
    t10 = _first_directed_crossing(sol10.vo, vth, -1)
    sol01 = solve_mode(Mode.A_LOW_B_HIGH, params, vdd, vdd)
    t01 = _first_directed_crossing(sol01.vo, vth, -1)
    if t10 is None or t01 is None:  # pragma: no cover - defensive
        raise NoCrossingError("falling output never crosses Vth")
    return _FallingContext(
        vdd=vdd, vth=vth, delta_min=params.delta_min,
        settle=settle_time(params), vo10=sol10.vo, t10=t10, t01=t01,
        rate11=-(1.0 / params.tau_r3 + 1.0 / params.tau_r4),
        tau_r4=params.tau_r4,
    )


@functools.lru_cache(maxsize=256)
def _rising_context(params: NorGateParameters,
                    vn_init: float) -> _RisingContext:
    vdd, vth = params.vdd, params.vth
    sol01 = solve_mode(Mode.A_LOW_B_HIGH, params, vn_init, 0.0)
    sol10 = solve_mode(Mode.A_HIGH_B_LOW, params, vn_init, 0.0)
    return _RisingContext(
        vdd=vdd, vth=vth, delta_min=params.delta_min,
        settle=settle_time(params), vn01=sol01.vn,
        vn10=sol10.vn, vo10=sol10.vo,
        t_up=_first_directed_crossing(sol10.vo, vth, +1),
        c00=mode_00_constants(params),
    )


# ----------------------------------------------------------------------
# vectorized two-exponential crossing (shared rates, per-element
# coefficients) — the only iterative piece of the backend
# ----------------------------------------------------------------------

def _batch_crossing_00(ctx: _RisingContext, vn0: np.ndarray,
                       vo0: np.ndarray) -> np.ndarray:
    """First upward Vth crossing of mode (0,0) entered at ``(vn0, vo0)``.

    All elements share the eigenvalues ``λ1, λ2``; only the two
    exponential coefficients vary, so the whole batch is refined in
    lockstep by the safeguarded Newton iteration of the n-input
    kernel (:func:`repro.core.multi_input._newton_bisect_refine`,
    bisection fallback included).  Every element must start below the
    threshold (guaranteed by the callers: the output either never
    left GND or was handed over before its first upward crossing).
    """
    c = ctx.c00
    l1, l2 = c.lambda1, c.lambda2
    vdd, vth = ctx.vdd, ctx.vth
    total = (vn0 - vdd) / c.vn_component
    c1 = ((vo0 - vdd) - total * (c.alpha - c.beta)) / (2.0 * c.beta)
    c2 = total - c1
    k1 = c1 * (c.alpha + c.beta)
    k2 = c2 * (c.alpha - c.beta)
    offset = vdd - vth  # > 0: the settled output sits above threshold

    def f(t: np.ndarray, sel=slice(None)) -> np.ndarray:
        return (offset + k1[sel] * np.exp(l1 * t)
                + k2[sel] * np.exp(l2 * t))

    f0 = f(np.zeros_like(vn0))
    if np.any(f0 > 0.0):
        raise NoCrossingError(
            "mode (0,0) entered above threshold; output never crosses "
            "Vth upwards")

    # At most one stationary point splits each element into monotone
    # pieces: the crossing lies in [0, ts] if f(ts) >= 0, else in
    # [max(ts, 0), inf).
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = -(k2 * l2) / (k1 * l1)
        ts = np.log(ratio) / (l1 - l2)
    has_ts = np.isfinite(ts) & (ts > 0.0)
    lo = np.zeros_like(vn0)
    hi = np.full_like(vn0, math.inf)
    if has_ts.any():
        f_ts = f(np.where(has_ts, ts, 0.0))
        first_piece = has_ts & (f_ts >= 0.0)
        second_piece = has_ts & ~first_piece
        hi[first_piece] = ts[first_piece]
        lo[second_piece] = ts[second_piece]

    # Bracket the open-ended pieces: the limit (offset > 0) guarantees
    # a sign change, so expand in growing steps like the scalar path.
    open_ended = np.nonzero(~np.isfinite(hi))[0]
    if open_ended.size:
        slowest = max(l1, l2)  # both negative; this one decays slowest
        step = np.full(open_ended.size, 2.0 / abs(slowest))
        cur = lo[open_ended] + step
        pending = np.arange(open_ended.size)
        for _ in range(_BRACKET_STEPS):
            done = f(cur[pending], open_ended[pending]) >= 0.0
            hi[open_ended[pending[done]]] = cur[pending[done]]
            pending = pending[~done]
            if not pending.size:
                break
            step[pending] *= 1.5
            cur[pending] += step[pending]
        else:  # pragma: no cover - defensive
            raise NoCrossingError("failed to bracket a (0,0) crossing "
                                  "that the limit analysis promised")

    # Newton refinement to adjacent-float precision: the exp-sum is
    # k1·e^{λ1 t} + k2·e^{λ2 t}, crossing the level −offset upwards.
    return _newton_bisect_refine(
        np.stack([k1, k2], axis=-1), np.array([l1, l2]), lo, hi,
        -offset, downward=False)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

def _prepare(deltas) -> tuple[np.ndarray, tuple[int, ...]]:
    d = np.asarray(deltas, dtype=float)
    if np.isnan(d).any():
        raise ParameterError("input separations must not be NaN")
    return np.ravel(d), d.shape


class VectorizedEngine:
    """NumPy batch evaluation of the closed-form mode chains."""

    name = "vectorized"

    @traced_entry_point("engine.delays", "falling")
    def delays_falling(self, params: NorGateParameters,
                       deltas) -> np.ndarray:
        """Falling MIS delays ``δ↓_M(Δ)`` for a whole Δ array at once.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; ``±inf`` allowed, NaN
            rejected.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*; matches the scalar reference to ≪ 1e-12 s.
        """
        ctx = _falling_context(params)
        d, shape = _prepare(deltas)
        crossing = np.empty_like(d)

        pos = d >= 0.0
        if pos.any():
            # (1,0) from (VDD, VDD), then (1,1) at Δ.
            dp = np.minimum(d[pos], ctx.settle)
            res = np.full_like(dp, ctx.t10)
            late = dp < ctx.t10  # output still above Vth at the switch
            if late.any():
                dl = dp[late]
                vo_d = ctx.vo10(dl)
                res[late] = dl + np.log(ctx.vth / vo_d) / ctx.rate11
            crossing[pos] = res
        neg = ~pos
        if neg.any():
            # (0,1) from (VDD, VDD), then (1,1) at |Δ|.
            dn = np.minimum(-d[neg], ctx.settle)
            res = np.full_like(dn, ctx.t01)
            late = dn < ctx.t01
            if late.any():
                dl = dn[late]
                vo_d = ctx.vdd * np.exp(-dl / ctx.tau_r4)
                res[late] = dl + np.log(ctx.vth / vo_d) / ctx.rate11
            crossing[neg] = res

        return (crossing + ctx.delta_min).reshape(shape)

    @traced_entry_point("engine.delays", "rising")
    def delays_rising(self, params: NorGateParameters, deltas,
                      vn_init: float = 0.0) -> np.ndarray:
        """Rising MIS delays ``δ↑_M(Δ)`` for a whole Δ array at once.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; ``±inf`` allowed, NaN
            rejected.
        vn_init : float, optional
            Mode-(1,1) internal-node voltage in volts (default 0.0,
            the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*; matches the scalar reference to ≪ 1e-12 s.
        """
        ctx = _rising_context(params, float(vn_init))
        d, shape = _prepare(deltas)
        # The rising delay is referenced to the *later* input, so for
        # final-segment crossings it equals the (0,0)-local crossing
        # time; only an early upward crossing in the intermediate
        # (1,0) mode produces a Δ-dependent offset.
        delay = np.empty_like(d)

        pos = d >= 0.0
        if pos.any():
            # (0,1) from (X, 0): the output pins at GND, only V_N moves.
            dp = np.minimum(d[pos], ctx.settle)
            vn_d = np.asarray(ctx.vn01(dp), dtype=float)
            delay[pos] = _batch_crossing_00(ctx, vn_d,
                                            np.zeros_like(vn_d))
        neg = ~pos
        if neg.any():
            # (1,0) from (X, 0): charge sharing can lift the output —
            # possibly across Vth before the second input arrives.
            dn = np.minimum(-d[neg], ctx.settle)
            res = np.empty_like(dn)
            if ctx.t_up is not None:
                early = dn >= ctx.t_up
                res[early] = ctx.t_up - dn[early]
            else:
                early = np.zeros(dn.shape, dtype=bool)
            late = ~early
            if late.any():
                dl = dn[late]
                vn_d = np.asarray(ctx.vn10(dl), dtype=float)
                vo_d = np.asarray(ctx.vo10(dl), dtype=float)
                res[late] = _batch_crossing_00(ctx, vn_d, vo_d)
            delay[neg] = res

        return (delay + ctx.delta_min).reshape(shape)

    @traced_entry_point("engine.delays_block", "falling")
    def delays_falling_block(self, block, deltas) -> np.ndarray:
        """Falling MIS delays for a whole parameter sample block.

        The parameter-axis batch entry point
        (:func:`repro.engine.blocks.falling_delays_block`): sample
        ``i`` of the block is evaluated at Δ row ``deltas[i]`` in one
        NumPy pass — the Monte-Carlo hot path of
        :mod:`repro.stats.montecarlo`.

        Parameters
        ----------
        block : numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(N,)``.
        deltas : array_like of float
            Input separations in seconds, shape ``(N,)`` or
            ``(N, M)``; ``±inf`` allowed, NaN rejected.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        from .blocks import falling_delays_block
        return falling_delays_block(block, deltas)

    @traced_entry_point("engine.delays_block", "rising")
    def delays_rising_block(self, block, deltas,
                            vn_init: float = 0.0) -> np.ndarray:
        """Rising MIS delays for a whole parameter sample block.

        Parameters
        ----------
        block : numpy.ndarray
            Sample block of dtype
            :data:`repro.engine.blocks.BLOCK_DTYPE`, shape ``(N,)``.
        deltas : array_like of float
            Input separations in seconds, shape ``(N,)`` or
            ``(N, M)``; ``±inf`` allowed, NaN rejected.
        vn_init : float, optional
            Mode-(1,1) internal-node voltage in volts, shared by the
            block (default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        from .blocks import rising_delays_block
        return rising_delays_block(block, deltas, vn_init)

    @traced_entry_point("engine.delays_n", "falling")
    def delays_falling_n(self, params: GeneralizedNorParameters,
                         deltas) -> np.ndarray:
        """Falling n-input MIS delays, batched over a Δ-vector grid.

        Runs the flattened
        :class:`~repro.core.multi_input.CompiledNorKernel` (stacked
        eigen tensors, shared per parameter set and persisted via
        :mod:`repro.cache` when configured).  For ``n = 2`` it agrees
        with the closed-form :meth:`delays_falling` path to
        ≤ 1e-12 s (asserted by the parity suite).

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus, NaN rejected.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        return compiled_nor_kernel(params).evaluate(deltas, "falling")

    @traced_entry_point("engine.delays_n", "rising")
    def delays_rising_n(self, params: GeneralizedNorParameters,
                        deltas, internal_init: float = 0.0
                        ) -> np.ndarray:
        """Rising n-input MIS delays, batched over a Δ-vector grid.

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus, NaN rejected.
        internal_init : float, optional
            Initial voltage of every internal chain node, volts
            (default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        return compiled_nor_kernel(params).evaluate(
            deltas, "rising", float(internal_init))


register_engine(VectorizedEngine.name, VectorizedEngine)
