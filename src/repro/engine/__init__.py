"""Pluggable evaluation backends for MIS delay sweeps.

The hybrid model is analytic, so evaluating it over thousands of input
separations should run at array speed.  This package provides the
backend seam that makes that a deployment choice instead of a rewrite:

* :data:`~repro.engine.base.DEFAULT_ENGINE` (``"vectorized"``) —
  NumPy batch evaluation of the closed-form mode chains with
  per-parameter-set solution caching;
* ``"reference"`` — the scalar per-Δ trajectory computation, kept as
  the parity baseline;
* ``"parallel"`` — Δ arrays sharded across a :mod:`multiprocessing`
  pool, each worker running an inner backend (``vectorized`` by
  default); small sweeps fall through to the inner backend inline.

Every backend serves both arities of the protocol: scalar-Δ entry
points (``delays_falling`` / ``delays_rising``) for the paper's
2-input cells, and Δ-vector entry points (``delays_falling_n`` /
``delays_rising_n``, trailing axis of n−1 sibling offsets) for the
generalized n-input NOR of :mod:`repro.core.multi_input`.  A third
axis batches over *parameter sets*: sample-block entry points
(``delays_falling_block`` / ``delays_rising_block``, one structured
record per parameter set — see :mod:`repro.engine.blocks`) evaluate N
Monte-Carlo samples × M Δ-points in one call, dispatched through
:func:`repro.engine.blocks.block_delays` with a per-sample loop
fallback for backends without native block kernels.

Sweeps throughout the package accept ``engine=`` (a name, an instance,
or ``None`` for the default) and the CLI exposes ``--engine``::

    from repro.engine import get_engine
    delays = get_engine().delays_falling(PAPER_TABLE_I, deltas)

The session facade (:class:`repro.api.Session`) binds a backend once
for a whole workflow — prefer ``Session(engine=...)`` over threading
``engine=`` keywords through multi-layer code.

New backends implement :class:`~repro.engine.base.DelayEngine` and call
:func:`~repro.engine.base.register_engine`.
"""

from .base import (DEFAULT_ENGINE, DelayEngine, available_engines,
                   delays_for_direction, get_engine, register_engine)
from .blocks import (BLOCK_DTYPE, block_delays, block_from_parameters,
                     parameters_at)
from .parallel import ParallelEngine
from .reference import ReferenceEngine
from .vectorized import VectorizedEngine

__all__ = [
    "BLOCK_DTYPE",
    "DEFAULT_ENGINE",
    "DelayEngine",
    "ParallelEngine",
    "ReferenceEngine",
    "VectorizedEngine",
    "available_engines",
    "block_delays",
    "block_from_parameters",
    "delays_for_direction",
    "get_engine",
    "parameters_at",
    "register_engine",
]
