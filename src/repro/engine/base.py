"""The evaluation-backend seam of the delay model.

A :class:`DelayEngine` answers one question — "what are the MIS delays
of this gate for these input separations?" — array-in/array-out.  The
closed-form mode solutions of :mod:`repro.core.solutions` make the
answer embarrassingly parallel over Δ, so the same protocol can be
served by very different implementations:

* ``reference`` — the scalar per-Δ trajectory computation of
  :class:`repro.core.hybrid_model.HybridNorModel`, one exact
  root-search per point.  Slow, but the ground truth.
* ``vectorized`` — NumPy evaluation of whole Δ arrays at once
  (:mod:`repro.engine.vectorized`), bit-tight against the reference.

Engines register themselves by name; sweeps all over the package accept
an ``engine=`` keyword (and the CLI an ``--engine`` flag) that is
resolved here.  Later backends (sharded, multi-process, GPU) only need
to implement the protocol and call :func:`register_engine`.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..core.parameters import NorGateParameters

__all__ = [
    "DEFAULT_ENGINE",
    "DelayEngine",
    "available_engines",
    "delays_for_direction",
    "get_engine",
    "register_engine",
]

#: Engine used when callers do not specify one.
DEFAULT_ENGINE = "vectorized"


@runtime_checkable
class DelayEngine(Protocol):
    """Array-native evaluator of the hybrid NOR MIS delay functions.

    Implementations must be pure functions of ``(params, deltas)``:
    the same inputs always give the same delays, which is what makes
    per-parameter-set caching safe.
    """

    #: Registry name of the backend.
    name: str

    def delays_falling(self, params: NorGateParameters,
                       deltas) -> np.ndarray:
        """Falling-output MIS delays ``δ↓_M(Δ)`` for an array of Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations ``Δ = t_B − t_A`` in seconds; any
            shape, ``±inf`` (SIS limits) and ``0`` allowed.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*, including the
            pure delay ``δ_min``.
        """
        ...

    def delays_rising(self, params: NorGateParameters, deltas,
                      vn_init: float = 0.0) -> np.ndarray:
        """Rising-output MIS delays ``δ↑_M(Δ)`` for an array of Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; any shape, ``±inf``
            allowed.
        vn_init : float, optional
            Internal-node voltage ``X`` of mode (1,1) in volts
            (paper Section IV; default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*, including
            ``δ_min``.
        """
        ...


def delays_for_direction(engine: "DelayEngine", direction: str,
                         params: NorGateParameters, deltas,
                         vn_init: float = 0.0) -> np.ndarray:
    """Dispatch a delay sweep by output-transition direction.

    Callers that carry the transition direction as data (the parallel
    engine's worker shards, the STA timing arcs of :mod:`repro.sta`)
    all need the same two-way branch; this keeps it in one place.

    Parameters
    ----------
    engine : DelayEngine
        Backend instance the sweep runs on.
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    params : NorGateParameters
        Electrical parameter set (SI units).
    deltas : array_like of float
        Input separations in seconds; any shape, ``±inf`` allowed.
    vn_init : float, optional
        Internal-node voltage in volts, used by the rising direction
        only (default 0.0, the GND worst case).

    Returns
    -------
    numpy.ndarray
        Delays in seconds, same shape as *deltas*.

    Raises
    ------
    ValueError
        If *direction* is neither ``"falling"`` nor ``"rising"``.
    """
    if direction == "falling":
        return engine.delays_falling(params, deltas)
    if direction == "rising":
        return engine.delays_rising(params, deltas, vn_init)
    raise ValueError(f"direction must be 'falling' or 'rising', "
                     f"got {direction!r}")


_FACTORIES: dict[str, Callable[[], DelayEngine]] = {}
_INSTANCES: dict[str, DelayEngine] = {}


def register_engine(name: str,
                    factory: Callable[[], DelayEngine]) -> None:
    """Register an engine factory under a name (last wins).

    Parameters
    ----------
    name : str
        Registry key later accepted by :func:`get_engine` and the
        CLI's ``--engine`` flag.
    factory : callable
        Zero-argument callable producing a :class:`DelayEngine`;
        invoked lazily on first :func:`get_engine` resolution.
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_engines() -> tuple[str, ...]:
    """Names of all registered backends, sorted.

    Returns
    -------
    tuple of str
        The registry keys, e.g. ``('parallel', 'reference',
        'vectorized')``.
    """
    return tuple(sorted(_FACTORIES))


def get_engine(engine: str | DelayEngine | None = None) -> DelayEngine:
    """Resolve an engine specification to a backend instance.

    Parameters
    ----------
    engine : str or DelayEngine or None, optional
        A registry name, an engine instance (returned as-is), or
        ``None`` for :data:`DEFAULT_ENGINE`.

    Returns
    -------
    DelayEngine
        The resolved backend.  Instances are cached per name so that
        engine-level solution caches are shared across callers.

    Raises
    ------
    ValueError
        If *engine* is a name with no registered backend.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if not isinstance(engine, str):
        return engine
    try:
        factory = _FACTORIES[engine]
    except KeyError:
        raise ValueError(
            f"unknown delay engine {engine!r}; available: "
            f"{', '.join(available_engines())}") from None
    if engine not in _INSTANCES:
        _INSTANCES[engine] = factory()
    return _INSTANCES[engine]
