"""The evaluation-backend seam of the delay model.

A :class:`DelayEngine` answers one question — "what are the MIS delays
of this gate for these input separations?" — array-in/array-out.  The
closed-form mode solutions of :mod:`repro.core.solutions` make the
answer embarrassingly parallel over Δ, so the same protocol can be
served by very different implementations:

* ``reference`` — the scalar per-Δ trajectory computation of
  :class:`repro.core.hybrid_model.HybridNorModel`, one exact
  root-search per point.  Slow, but the ground truth.
* ``vectorized`` — NumPy evaluation of whole Δ arrays at once
  (:mod:`repro.engine.vectorized`), bit-tight against the reference.

Engines register themselves by name; sweeps all over the package accept
an ``engine=`` keyword (and the CLI an ``--engine`` flag) that is
resolved here.  Later backends (sharded, multi-process, GPU) only need
to implement the protocol and call :func:`register_engine`.
"""

from __future__ import annotations

import functools
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..core.multi_input import GeneralizedNorParameters
from ..core.parameters import NorGateParameters
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "DEFAULT_ENGINE",
    "DelayEngine",
    "available_engines",
    "delays_for_direction",
    "get_engine",
    "register_engine",
    "traced_entry_point",
]

#: Parameter kinds an engine evaluates: the paper's closed-form
#: 2-input set, or the generalized n-input set (Δ-vector entry
#: points).
GateParameters = NorGateParameters | GeneralizedNorParameters

#: Engine used when callers do not specify one.
DEFAULT_ENGINE = "vectorized"


@runtime_checkable
class DelayEngine(Protocol):
    """Array-native evaluator of the hybrid NOR MIS delay functions.

    Implementations must be pure functions of ``(params, deltas)``:
    the same inputs always give the same delays, which is what makes
    per-parameter-set caching safe.

    Backends may additionally expose *sample-block* entry points
    (``delays_falling_block(block, deltas)`` /
    ``delays_rising_block(block, deltas, vn_init)``) that batch over
    the parameter axis — one structured record per parameter set, see
    :mod:`repro.engine.blocks`.  They are optional:
    :func:`repro.engine.blocks.block_delays` dispatches to them when
    present and falls back to a per-sample loop otherwise, so the
    protocol's required surface stays the four Δ-batched methods
    below.
    """

    #: Registry name of the backend.
    name: str

    def delays_falling(self, params: NorGateParameters,
                       deltas) -> np.ndarray:
        """Falling-output MIS delays ``δ↓_M(Δ)`` for an array of Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations ``Δ = t_B − t_A`` in seconds; any
            shape, ``±inf`` (SIS limits) and ``0`` allowed.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*, including the
            pure delay ``δ_min``.
        """
        ...

    def delays_rising(self, params: NorGateParameters, deltas,
                      vn_init: float = 0.0) -> np.ndarray:
        """Rising-output MIS delays ``δ↑_M(Δ)`` for an array of Δ.

        Parameters
        ----------
        params : NorGateParameters
            Electrical parameter set (SI units).
        deltas : array_like of float
            Input separations in seconds; any shape, ``±inf``
            allowed.
        vn_init : float, optional
            Internal-node voltage ``X`` of mode (1,1) in volts
            (paper Section IV; default 0.0, the GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*, including
            ``δ_min``.
        """
        ...

    def delays_falling_n(self, params: GeneralizedNorParameters,
                         deltas) -> np.ndarray:
        """Falling n-input MIS delays over a Δ-vector grid.

        The Δ-vector generalization of :meth:`delays_falling`: input
        0 rises at ``t = 0`` and sibling ``j`` at
        ``deltas[..., j-1]``; the delay is referenced to the
        *earliest* input.  For ``n = 2`` the single-column grid
        reproduces :meth:`delays_falling` to well below a picosecond
        (the engine parity suite asserts ≤ 1e-12 s).

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus, NaN is rejected.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        ...

    def delays_rising_n(self, params: GeneralizedNorParameters,
                        deltas, internal_init: float = 0.0
                        ) -> np.ndarray:
        """Rising n-input MIS delays over a Δ-vector grid.

        The Δ-vector generalization of :meth:`delays_rising`: input 0
        falls at ``t = 0`` and sibling ``j`` at ``deltas[..., j-1]``;
        the delay is referenced to the *latest* input.

        Parameters
        ----------
        params : GeneralizedNorParameters
            n-input electrical parameter set (SI units).
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus, NaN is rejected.
        internal_init : float, optional
            Initial voltage of every internal chain node in volts
            (default 0.0, the paper's GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        ...


def delays_for_direction(engine: "DelayEngine", direction: str,
                         params: GateParameters, deltas,
                         state: float = 0.0) -> np.ndarray:
    """Dispatch a delay sweep by direction and parameter kind.

    The single place the ``falling``/``rising`` branch and the
    2-input-vs-n-input entry-point choice live: the parallel engine's
    worker shards, the STA timing arcs of :mod:`repro.sta` and the
    pairwise sweeps of :mod:`repro.core.multi_input` all route
    through here.

    Parameters
    ----------
    engine : DelayEngine
        Backend instance the sweep runs on.
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    params : NorGateParameters or GeneralizedNorParameters
        Electrical parameter set (SI units).  The generalized kind
        selects the Δ-vector entry points
        (:meth:`DelayEngine.delays_falling_n` /
        :meth:`~DelayEngine.delays_rising_n`), whose *deltas* carry a
        trailing sibling axis of length ``n − 1``.
    deltas : array_like of float
        Input separations in seconds — any shape for 2-input
        parameters, shape ``(..., n−1)`` for n-input ones; ``±inf``
        allowed.
    state : float, optional
        Initial internal-node voltage in volts, used by the rising
        direction only (default 0.0, the GND worst case): ``V_N`` of
        mode (1,1) for 2-input parameters, every chain node for
        n-input ones.

    Returns
    -------
    numpy.ndarray
        Delays in seconds — the shape of *deltas* (2-input) or
        ``deltas.shape[:-1]`` (n-input).

    Raises
    ------
    ValueError
        If *direction* is neither ``"falling"`` nor ``"rising"``.
    """
    if direction not in ("falling", "rising"):
        raise ValueError(f"direction must be 'falling' or 'rising', "
                         f"got {direction!r}")
    if isinstance(params, GeneralizedNorParameters):
        if direction == "falling":
            return engine.delays_falling_n(params, deltas)
        return engine.delays_rising_n(params, deltas, state)
    if direction == "falling":
        return engine.delays_falling(params, deltas)
    return engine.delays_rising(params, deltas, state)


#: Memoized (engine, direction) -> call counter, so the per-call
#: metrics cost is one dict lookup plus a locked increment.
_CALL_COUNTERS: dict = {}


def _call_counter(engine_name: str, direction: str):
    key = (engine_name, direction)
    counter = _CALL_COUNTERS.get(key)
    if counter is None:
        counter = _metrics.registry().counter(
            "repro_engine_calls_total",
            "delay-engine batch invocations",
            labels={"engine": engine_name, "direction": direction})
        _CALL_COUNTERS[key] = counter
    return counter


def traced_entry_point(span_name: str, direction: str):
    """Instrument an engine entry point (decorator factory).

    Wraps a ``delays_*`` method so every batch invocation increments
    the ``repro_engine_calls_total{engine,direction}`` counter and —
    when tracing is enabled — runs inside a span carrying the engine
    name, direction, batch size, and (for n-input entry points) the
    gate width.  All three backends decorate their public methods
    with this, so traces and metrics stay uniform across engines.

    Parameters
    ----------
    span_name : str
        Span name, ``"engine.delays"`` (2-input entry points) or
        ``"engine.delays_n"`` (Δ-vector entry points).
    direction : str
        ``"falling"`` or ``"rising"`` (a span/label attribute).

    Returns
    -------
    callable
        The method decorator.
    """
    def decorate(method):
        @functools.wraps(method)
        def wrapper(self, params, deltas, *args, **kwargs):
            _call_counter(self.name, direction).inc()
            tracer = _trace.active_tracer()
            if tracer is None:
                # Disabled path: the counter bump above and this
                # check are the whole overhead (no attrs computed,
                # nothing allocated).
                return method(self, params, deltas, *args, **kwargs)
            with tracer.span(span_name, engine=self.name,
                             direction=direction,
                             points=int(np.size(deltas)),
                             n=getattr(params, "num_inputs", 2)):
                return method(self, params, deltas, *args, **kwargs)
        return wrapper
    return decorate


_FACTORIES: dict[str, Callable[[], DelayEngine]] = {}
_INSTANCES: dict[str, DelayEngine] = {}


def register_engine(name: str,
                    factory: Callable[[], DelayEngine]) -> None:
    """Register an engine factory under a name (last wins).

    Parameters
    ----------
    name : str
        Registry key later accepted by :func:`get_engine` and the
        CLI's ``--engine`` flag.
    factory : callable
        Zero-argument callable producing a :class:`DelayEngine`;
        invoked lazily on first :func:`get_engine` resolution.
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_engines() -> tuple[str, ...]:
    """Names of all registered backends, sorted.

    Returns
    -------
    tuple of str
        The registry keys, e.g. ``('parallel', 'reference',
        'vectorized')``.
    """
    return tuple(sorted(_FACTORIES))


def get_engine(engine: str | DelayEngine | None = None) -> DelayEngine:
    """Resolve an engine specification to a backend instance.

    Parameters
    ----------
    engine : str or DelayEngine or None, optional
        A registry name, an engine instance (returned as-is), or
        ``None`` for :data:`DEFAULT_ENGINE`.

    Returns
    -------
    DelayEngine
        The resolved backend.  Instances are cached per name so that
        engine-level solution caches are shared across callers.

    Raises
    ------
    ValueError
        If *engine* is a name with no registered backend.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if not isinstance(engine, str):
        return engine
    try:
        factory = _FACTORIES[engine]
    except KeyError:
        raise ValueError(
            f"unknown delay engine {engine!r}; available: "
            f"{', '.join(available_engines())}") from None
    if engine not in _INSTANCES:
        _INSTANCES[engine] = factory()
    return _INSTANCES[engine]
