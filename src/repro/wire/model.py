"""Reduced-order wire delay/slew models: Elmore and two-pole.

Given the exact transfer moments of a :class:`~repro.wire.tree.WireTree`
(:meth:`WireTree.moments`), two classic reduced-order models are
available per sink:

``elmore``
    First-moment model.  ``delay = T_D`` — the Elmore delay, which is
    the *exact* threshold-crossing shift for inputs much slower than
    the wire time constant (the mean of the impulse response delays
    any settled ramp by exactly ``T_D``).  That is the regime the
    repository's gate-driven wires sit in (60 ps edges vs few-ps
    wires), so it is the default arc delay for STA.  The slew is the
    10–90 % rise of the matched single pole ``τ = T_D``
    (``slew = T_D · ln 9``).

``two_pole``
    Second-order moment match ``H(s) = 1 / (1 + b₁s + b₂s²)`` with
    ``b₁ = T_D`` and ``b₂ = T_D² − m₂`` so both moments are
    reproduced.  For real poles ``τ₁ ≥ τ₂`` the *step* response

    ``y(t) = 1 − (τ₁ e^{−t/τ₁} − τ₂ e^{−t/τ₂}) / (τ₁ − τ₂)``

    is monotone, and ``delay``/``slew`` are its 50 % crossing and
    10–90 % rise — exact for a two-stage RC ladder, and the
    fast-input (step) limit for deeper trees.  Degenerate fits
    (``b₂ ≤ 0``, e.g. a single RC stage, where the match collapses to
    one pole) fall back to the exact single-pole closed form.

Uniform corner scaling is analytic: scaling every resistance by
``r`` and every capacitance by ``c`` scales *all* of the above
timings by exactly ``r·c`` (the normalized response shape is
invariant), which is what keeps wire-aware corner sweeps array-native
— see :func:`scaled_delays`.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..errors import ParameterError
from ..obs.metrics import registry
from ..obs.trace import span
from .tree import WireTree

__all__ = ["SinkTiming", "WireTiming", "reduce_tree", "scaled_delays",
           "two_pole_step_crossings", "WIRE_MODELS"]

#: Supported reduced-order model names.
WIRE_MODELS = ("elmore", "two_pole")

_LN2 = math.log(2.0)
_LN9 = math.log(9.0)

_counters: dict[str, object] = {}


def _reduction_counter(model: str):
    counter = _counters.get(model)
    if counter is None:
        counter = registry().counter(
            "repro_wire_reductions_total",
            "Wire trees reduced to analytic delay models.",
            labels={"model": model})
        _counters[model] = counter
    return counter


@dataclasses.dataclass(frozen=True)
class SinkTiming:
    """Reduced-order timing of one sink of a wire tree.

    Attributes
    ----------
    sink : str
        Sink node name.
    elmore : float
        Elmore delay ``T_D`` of the sink, seconds (the slow-input
        crossing shift).
    delay : float
        Delay under the selected model, seconds (``T_D`` for
        ``elmore``; the 50 % step-response crossing for
        ``two_pole``).
    slew : float
        10–90 % step-response rise time under the selected model,
        seconds.
    """

    sink: str
    elmore: float
    delay: float
    slew: float


@dataclasses.dataclass(frozen=True)
class WireTiming:
    """All sink timings of a reduced wire tree."""

    tree: WireTree
    model: str
    sinks: tuple[SinkTiming, ...]

    def timing(self, sink: str) -> SinkTiming:
        """Timing of one sink by name."""
        for entry in self.sinks:
            if entry.sink == sink:
                return entry
        raise ParameterError(
            f"unknown sink {sink!r}; tree has "
            f"{[entry.sink for entry in self.sinks]}")

    def delays(self) -> np.ndarray:
        """Per-sink delays in declaration order, seconds."""
        return np.array([entry.delay for entry in self.sinks])

    def slews(self) -> np.ndarray:
        """Per-sink slews in declaration order, seconds."""
        return np.array([entry.slew for entry in self.sinks])


def two_pole_step_crossings(
        b1: np.ndarray, b2: np.ndarray,
        thresholds: tuple[float, ...] = (0.1, 0.5, 0.9),
) -> np.ndarray:
    """Crossing times of the two-pole step response, vectorized.

    Parameters
    ----------
    b1, b2 : array_like
        Denominator coefficients of ``1/(1 + b₁s + b₂s²)`` per sink
        (``b1 > 0``; entries with ``b2 <= 0`` or complex poles use
        the exact single-pole fallback ``t = −b₁ ln(1−θ)``).
    thresholds : tuple of float, optional
        Normalized levels in ``(0, 1)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(len(thresholds),) + b1.shape`` crossing times,
        seconds.
    """
    b1 = np.asarray(b1, dtype=float)
    b2 = np.asarray(b2, dtype=float)
    if np.any(b1 <= 0.0) or not np.all(np.isfinite(b1)):
        raise ParameterError("two-pole b1 must be positive and "
                             "finite")
    thresholds = tuple(float(level) for level in thresholds)
    if any(not 0.0 < level < 1.0 for level in thresholds):
        raise ParameterError("thresholds must lie strictly in "
                             "(0, 1)")
    disc = b1 * b1 - 4.0 * b2
    two_pole = (b2 > 0.0) & (disc > 0.0)
    root = np.sqrt(np.where(two_pole, disc, 0.0))
    tau1 = np.where(two_pole, 0.5 * (b1 + root), b1)
    tau2 = np.where(two_pole, 0.5 * (b1 - root), 0.0)
    # Nearly coincident poles make the two-exponential form
    # numerically unstable; the single-pole fallback is within float
    # noise there anyway.
    distinct = two_pole & (tau1 - tau2 > 1e-9 * tau1)
    tau2 = np.where(distinct, tau2, 0.0)
    gap = np.where(distinct, tau1 - tau2, tau1)

    def remainder(t: np.ndarray) -> np.ndarray:
        """1 − y(t): the settled fraction still missing."""
        first = tau1 * np.exp(-t / tau1)
        second = np.where(distinct,
                          tau2 * np.exp(-t / np.where(
                              distinct, tau2, 1.0)), 0.0)
        return (first - second) / gap

    out = np.empty((len(thresholds),) + b1.shape)
    for index, level in enumerate(thresholds):
        target = 1.0 - level
        # Single-pole entries have the exact closed form; two-pole
        # entries are bracketed then bisected (y is monotone).
        closed = -tau1 * np.log(target)
        high = np.where(
            distinct,
            tau1 * np.log(np.maximum(tau1 / (gap * target), 2.0)),
            closed)
        low = np.zeros_like(high)
        for _ in range(64):
            mid = 0.5 * (low + high)
            above = remainder(mid) > target
            low = np.where(above, mid, low)
            high = np.where(above, high, mid)
        out[index] = np.where(distinct, 0.5 * (low + high), closed)
    return out


def reduce_tree(tree: WireTree, model: str = "two_pole",
                ) -> WireTiming:
    """Reduce a wire tree to per-sink analytic delay and slew.

    Parameters
    ----------
    tree : WireTree
        The RC tree to reduce.
    model : str, optional
        ``"two_pole"`` (default) or ``"elmore"`` — see the module
        docstring for the regime each is exact in.

    Returns
    -------
    WireTiming
        Per-sink :class:`SinkTiming` in sink declaration order.
    """
    if model not in WIRE_MODELS:
        raise ParameterError(
            f"unknown wire model {model!r}; choose from "
            f"{WIRE_MODELS}")
    with span("wire.reduce", model=model,
              segments=len(tree.segments), sinks=len(tree.sinks)):
        elmore, m2 = tree.moments()
        sinks = []
        if model == "elmore":
            for sink in tree.sinks:
                first = elmore[sink]
                sinks.append(SinkTiming(sink=sink, elmore=first,
                                        delay=first,
                                        slew=first * _LN9))
        else:
            b1 = np.array([elmore[sink] for sink in tree.sinks])
            b2 = b1 * b1 - np.array([m2[sink]
                                     for sink in tree.sinks])
            t10, t50, t90 = two_pole_step_crossings(b1, b2)
            for index, sink in enumerate(tree.sinks):
                sinks.append(SinkTiming(
                    sink=sink, elmore=float(b1[index]),
                    delay=float(t50[index]),
                    slew=float(t90[index] - t10[index])))
        _reduction_counter(model).inc()
        return WireTiming(tree=tree, model=model,
                          sinks=tuple(sinks))


def scaled_delays(timing: WireTiming, r_scale=1.0, c_scale=1.0,
                  ) -> np.ndarray:
    """Wire delays under uniform R/C corner scaling, array-native.

    Scaling every resistance by ``r_scale`` and every capacitance by
    ``c_scale`` multiplies all crossing times by exactly
    ``r_scale · c_scale`` (the normalized step-response *shape* is
    scale-invariant), so a whole corner sweep is one broadcast
    multiply instead of one tree reduction per corner.

    Parameters
    ----------
    timing : WireTiming
        A reduced tree (the nominal corner).
    r_scale, c_scale : array_like, optional
        Uniform resistance/capacitance multipliers; broadcast
        together over any corner-axis shape.

    Returns
    -------
    numpy.ndarray
        Shape ``broadcast(r_scale, c_scale).shape + (n_sinks,)``
        delays, seconds.
    """
    r_scale = np.asarray(r_scale, dtype=float)
    c_scale = np.asarray(c_scale, dtype=float)
    if np.any(r_scale <= 0.0) or np.any(c_scale <= 0.0):
        raise ParameterError("corner scales must be positive")
    factor = r_scale * c_scale
    return factor[..., np.newaxis] * timing.delays()
