"""RC interconnect: wire trees, reduced-order delay, SPICE lowering.

The wire subsystem makes the timing stack interconnect-aware, the
step toward the group's sequel paper (*A Hybrid Delay Model for
Interconnected Multi-Input Gates*, arXiv 2403.10540):

* :mod:`repro.wire.tree` — :class:`WireSegment`/:class:`WireTree`
  topology with exact first/second transfer moments;
* :mod:`repro.wire.model` — analytic Elmore and two-pole
  moment-matched delay/slew models, with array-native uniform
  corner scaling (:func:`scaled_delays`);
* :mod:`repro.wire.coupling` — effective driver load
  (:func:`loaded_params`) and receiver slew degradation;
* :mod:`repro.wire.spice` — lowering into R/C netlist devices
  (:func:`lower_wire`) and the wired benchmark circuits used for
  transient cross-validation.

Wires enter static timing through
:meth:`repro.timing.TimingCircuit.add_wire` and the ``chain_wire`` /
``tree_wire`` circuits of :mod:`repro.sta.circuits`; the workflow
surface is ``repro wire`` / :class:`repro.api.WireRequest`.
"""

from .coupling import degraded_slew, effective_load, loaded_params
from .model import (WIRE_MODELS, SinkTiming, WireTiming, reduce_tree,
                    scaled_delays, two_pole_step_crossings)
from .spice import (WiredCircuit, lower_wire, nor2_input_capacitance,
                    stamp_nor2, wired_nor_chain, wired_nor_tree)
from .tree import WireSegment, WireTree

__all__ = [
    "WireSegment",
    "WireTree",
    "SinkTiming",
    "WireTiming",
    "WIRE_MODELS",
    "reduce_tree",
    "scaled_delays",
    "two_pole_step_crossings",
    "effective_load",
    "loaded_params",
    "degraded_slew",
    "WiredCircuit",
    "lower_wire",
    "stamp_nor2",
    "nor2_input_capacitance",
    "wired_nor_chain",
    "wired_nor_tree",
]
