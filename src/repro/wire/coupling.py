"""Gate–wire coupling: effective load and slew degradation.

Two first-order effects connect a wire tree to the gates around it:

*Driver loading.*  The driving gate no longer sees its bare output
capacitance ``co`` but ``co`` plus the total wire capacitance plus
every receiver load tapped on the tree (the *total-capacitance*
effective load — unshielded, which is conservative for resistive
wires but exact in the slow-edge regime the hybrid model operates
in).  :func:`loaded_params` folds that into a
:class:`~repro.core.parameters.NorGateParameters` so the existing
hybrid delay model prices the wire without modification.

*Receiver slew degradation.*  The wire low-pass filters the edge, so
the receiver sees a slower input than the driver produced.  The
reduced-order models report the added 10–90 % transition time per
sink (:class:`~repro.wire.model.SinkTiming.slew`); a first-order
arrival penalty ``derate · slew`` can be folded into the wire arc
delay (see :meth:`TimingCircuit.add_wire`), which keeps STA and
event simulation in exact agreement while still letting studies
price slew pessimism.
"""

from __future__ import annotations

from ..core.parameters import NorGateParameters
from .tree import WireTree

__all__ = ["loaded_params", "effective_load", "degraded_slew"]


def effective_load(params: NorGateParameters,
                   tree: WireTree) -> float:
    """Effective output capacitance the driver sees, farads:
    the gate's own ``co`` plus the tree's total capacitance
    (wire segments and sink loads)."""
    return params.co + tree.total_capacitance()


def loaded_params(params: NorGateParameters,
                  tree: WireTree) -> NorGateParameters:
    """Gate parameters with the wire folded into the output load.

    Parameters
    ----------
    params : NorGateParameters
        The driving gate's bare parameters (``co`` is the intrinsic
        output capacitance).
    tree : WireTree
        The wire hanging off the gate's output.

    Returns
    -------
    NorGateParameters
        A copy with ``co`` replaced by :func:`effective_load` —
        usable anywhere the bare parameters are (hybrid channels,
        corner axes, characterization).
    """
    return params.replace(co=effective_load(params, tree))


def degraded_slew(input_slew: float, wire_slew: float) -> float:
    """Receiver input transition time after the wire, seconds.

    The standard root-sum-square composition of the driver's output
    transition with the wire's own 10–90 % step rise — exact when
    both stages are single-pole, a good first-order rule otherwise.
    """
    return float((input_slew ** 2 + wire_slew ** 2) ** 0.5)
