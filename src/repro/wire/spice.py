"""Lower wire trees into SPICE netlists and build wired circuits.

The validation anchor of the subsystem: a :class:`WireTree` is exact
circuit structure, so lowering it into ``Resistor``/``Capacitor``
devices of :mod:`repro.spice.netlist` and running the MNA transient
solver gives ground truth the reduced-order models must match.  Two
wired benchmark circuits mirror the STA circuits of
:mod:`repro.sta.circuits`:

* :func:`wired_nor_chain` — a tied-input NOR2 chain (the repo's
  inverter idiom) with a wire line between stages, the
  ``chain_wire`` STA circuit;
* :func:`wired_nor_tree` — a NOR2 driving a fanout tree into two
  tied-input NOR2 receivers, the ``tree_wire`` STA circuit.

Both stampers reuse the exact transistor/capacitor topology of
:func:`repro.spice.technology.build_nor2`, only with per-instance
name prefixes so several cells share one netlist and supply.
"""

from __future__ import annotations

import dataclasses

from ..errors import ParameterError
from ..spice.netlist import Circuit
from ..spice.technology import TechnologyCard
from ..spice.waveforms import Waveform
from .tree import WireTree

__all__ = ["lower_wire", "stamp_nor2", "wired_nor_chain",
           "wired_nor_tree", "nor2_input_capacitance", "WiredCircuit"]


def lower_wire(circuit: Circuit, tree: WireTree, input_node: str,
               prefix: str = "w") -> dict[str, str]:
    """Stamp a wire tree into a netlist as R/C devices.

    Parameters
    ----------
    circuit : Circuit
        Netlist under construction.
    tree : WireTree
        The RC tree to lower.
    input_node : str
        Existing circuit node driving the tree's root.
    prefix : str, optional
        Device/node name prefix (must be unique per lowered tree).

    Returns
    -------
    dict
        Tree node name -> circuit node name (the root maps to
        *input_node*); use it to probe sink waveforms.
    """
    nodes = {tree.root: input_node}
    for segment in tree.segments:
        node = f"{prefix}_{segment.name}"
        nodes[segment.name] = node
        circuit.resistor(f"R{prefix}_{segment.name}",
                         nodes[segment.parent], node,
                         segment.resistance)
        shunt = segment.capacitance + segment.load
        if shunt > 0.0:
            circuit.capacitor(f"C{prefix}_{segment.name}", node, "0",
                              shunt)
    return nodes


def stamp_nor2(circuit: Circuit, tech: TechnologyCard, prefix: str,
               node_a: str, node_b: str, node_out: str,
               output_load: float | None = None) -> None:
    """Stamp one NOR2 cell with prefixed device/internal names.

    Mirrors :func:`repro.spice.technology.build_nor2` exactly
    (series pMOS stack with internal node, parallel nMOS pair,
    gate-overlap and junction capacitances) but shares the enclosing
    circuit's ``vdd``/ground rails so several cells compose.
    """
    if output_load is None:
        output_load = tech.output_load
    if output_load < 0.0:
        raise ParameterError("output_load must be non-negative")
    nmos, pmos = tech.nmos, tech.pmos
    node_n = f"{prefix}_n"
    circuit.mosfet(f"{prefix}T1", drain=node_n, gate=node_a,
                   source="vdd", model=pmos)
    circuit.mosfet(f"{prefix}T2", drain=node_out, gate=node_b,
                   source=node_n, model=pmos)
    circuit.mosfet(f"{prefix}T3", drain=node_out, gate=node_a,
                   source="0", model=nmos)
    circuit.mosfet(f"{prefix}T4", drain=node_out, gate=node_b,
                   source="0", model=nmos)
    circuit.capacitor(f"{prefix}Cgd1", node_a, node_n, pmos.cgd)
    circuit.capacitor(f"{prefix}Cgs2", node_b, node_n, pmos.cgs)
    circuit.capacitor(f"{prefix}Cgd2", node_b, node_out, pmos.cgd)
    circuit.capacitor(f"{prefix}Cgd3", node_a, node_out, nmos.cgd)
    circuit.capacitor(f"{prefix}Cgd4", node_b, node_out, nmos.cgd)
    circuit.capacitor(f"{prefix}Cdb1", node_n, "vdd", pmos.cdb)
    circuit.capacitor(f"{prefix}Csb2", node_n, "vdd", pmos.cdb)
    circuit.capacitor(f"{prefix}Cdb2", node_out, "vdd", pmos.cdb)
    circuit.capacitor(f"{prefix}Cdb3", node_out, "0", nmos.cdb)
    circuit.capacitor(f"{prefix}Cdb4", node_out, "0", nmos.cdb)
    circuit.capacitor(f"{prefix}Cn", node_n, "0", tech.cn_extra)
    circuit.capacitor(f"{prefix}Co", node_out, "0", output_load)


def nor2_input_capacitance(tech: TechnologyCard,
                           tied: bool = True) -> float:
    """Input capacitance one NOR2 receiver taps onto a wire, farads.

    The explicit gate-overlap capacitors touching the input node(s)
    in :func:`stamp_nor2`: with both pins tied to the wire sink
    (``tied=True``) that is ``Cgd1 + Cgs2 + Cgd2 + Cgd3 + Cgd4``;
    pin ``a`` alone sees ``Cgd1 + Cgd3``.  Used as the sink ``load``
    when building the wire tree that models a wired netlist.
    """
    pmos, nmos = tech.pmos, tech.nmos
    if tied:
        return pmos.cgd + pmos.cgs + pmos.cgd + 2.0 * nmos.cgd
    return pmos.cgd + nmos.cgd


@dataclasses.dataclass(frozen=True)
class WiredCircuit:
    """A lowered wired benchmark circuit plus its probe points.

    Attributes
    ----------
    circuit : Circuit
        The complete netlist (validated).
    stage_outputs : tuple of str
        Gate output nodes in topological order.
    sink_nodes : dict
        Wire sink name -> circuit node, per lowered tree.
    outputs : tuple of str
        Final endpoint node(s).
    """

    circuit: Circuit
    stage_outputs: tuple[str, ...]
    sink_nodes: dict[str, str]
    outputs: tuple[str, ...]


def wired_nor_chain(tech: TechnologyCard, wave_in: Waveform | float,
                    tree: WireTree, stages: int = 2,
                    name: str = "wired_nor_chain") -> WiredCircuit:
    """Tied-input NOR2 chain with a wire line between stages.

    Stage ``i`` (prefix ``g<i>``) drives node ``o<i>``; every stage
    but the last feeds a lowered copy of *tree* (prefix ``w<i>``)
    whose single sink drives the next stage's tied inputs.  The
    transistor-level counterpart of the ``chain_wire`` STA circuit.
    """
    if stages < 2:
        raise ParameterError("a wired chain needs at least 2 stages")
    if len(tree.sinks) != 1:
        raise ParameterError("chain wires need exactly one sink")
    circuit = Circuit(name)
    circuit.voltage_source("Vdd", "vdd", "0", tech.vdd)
    circuit.voltage_source("Va", "a", "0", wave_in)
    stage_outputs = []
    sink_nodes: dict[str, str] = {}
    node_in = "a"
    for index in range(stages):
        node_out = f"o{index + 1}"
        stamp_nor2(circuit, tech, f"g{index + 1}", node_in, node_in,
                   node_out)
        stage_outputs.append(node_out)
        if index < stages - 1:
            nodes = lower_wire(circuit, tree, node_out,
                               prefix=f"w{index + 1}")
            sink = nodes[tree.sinks[0]]
            sink_nodes[f"w{index + 1}.{tree.sinks[0]}"] = sink
            node_in = sink
    circuit.validate()
    return WiredCircuit(circuit=circuit,
                        stage_outputs=tuple(stage_outputs),
                        sink_nodes=sink_nodes,
                        outputs=(stage_outputs[-1],))


def wired_nor_tree(tech: TechnologyCard, wave_a: Waveform | float,
                   wave_b: Waveform | float, tree: WireTree,
                   name: str = "wired_nor_tree") -> WiredCircuit:
    """NOR2 driving a fanout wire into tied-input NOR2 receivers.

    The driver (prefix ``g0``) outputs on node ``o``; the tree is
    lowered with prefix ``w``; every sink ``k`` drives receiver
    ``r<k>`` (tied inputs) outputting on ``y<k>``.  The
    transistor-level counterpart of the ``tree_wire`` STA circuit.
    """
    circuit = Circuit(name)
    circuit.voltage_source("Vdd", "vdd", "0", tech.vdd)
    circuit.voltage_source("Va", "a", "0", wave_a)
    circuit.voltage_source("Vb", "b", "0", wave_b)
    stamp_nor2(circuit, tech, "g0", "a", "b", "o")
    nodes = lower_wire(circuit, tree, "o", prefix="w")
    outputs = []
    sink_nodes: dict[str, str] = {}
    for index, sink in enumerate(tree.sinks):
        sink_nodes[sink] = nodes[sink]
        node_out = f"y{index + 1}"
        stamp_nor2(circuit, tech, f"r{index + 1}", nodes[sink],
                   nodes[sink], node_out)
        outputs.append(node_out)
    circuit.validate()
    return WiredCircuit(circuit=circuit, stage_outputs=("o",),
                        sink_nodes=sink_nodes,
                        outputs=tuple(outputs))
