"""RC interconnect trees: segments, topology, and exact moments.

A wire is modeled as a rooted tree of lumped RC segments — the
standard reduced-order abstraction of on-chip interconnect.  The
*root* is the driving point (a gate output); every
:class:`WireSegment` adds one resistance in series from its parent
node and one capacitance to ground at its far end; *sinks* are the
tapped nodes that feed downstream gate inputs and may carry an extra
``load`` capacitance for the receiver.

The tree knows its exact first and second voltage-transfer moments,
computed with the classic two-pass (RICE-style) traversal:

* ``m1(i) = −Σ_j R(path(i) ∩ path(j)) · C_j`` — the negated *Elmore
  delay* ``T_D(i)``;
* ``m2(i) = Σ_j R(path(i) ∩ path(j)) · C_j · T_D(j)``.

Both feed the reduced-order delay models of :mod:`repro.wire.model`
(Elmore and the two-pole moment match).  All quantities are SI (ohms,
farads, seconds).
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import NetlistError, ParameterError

__all__ = ["WireSegment", "WireTree"]

#: Name of the tree's driving-point node.
ROOT = "root"


@dataclasses.dataclass(frozen=True)
class WireSegment:
    """One lumped RC stage of a wire tree.

    The segment hangs off *parent* (the root or another segment's
    name) and creates a new node named after itself at the far end,
    where its capacitance (and any sink *load*) is lumped to ground.

    Parameters
    ----------
    name : str
        Node name created at the segment's far end (unique per tree).
    parent : str
        Name of the node the segment starts at — ``"root"`` or a
        previously declared segment.
    resistance : float
        Series resistance of the segment, ohms (positive).
    capacitance : float
        Capacitance lumped at the far node, farads (non-negative).
    load : float, optional
        Extra sink load at the far node (receiver input capacitance),
        farads (non-negative, default 0).
    """

    name: str
    parent: str
    resistance: float
    capacitance: float
    load: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or self.name == ROOT:
            raise ParameterError(
                f"segment name must be non-empty and not {ROOT!r}")
        if not (math.isfinite(self.resistance)
                and self.resistance > 0.0):
            raise ParameterError(
                f"segment {self.name!r}: resistance must be positive "
                f"and finite, got {self.resistance!r}")
        for field in ("capacitance", "load"):
            value = getattr(self, field)
            if not (math.isfinite(value) and value >= 0.0):
                raise ParameterError(
                    f"segment {self.name!r}: {field} must be "
                    f"non-negative and finite, got {value!r}")


@dataclasses.dataclass(frozen=True)
class WireTree:
    """A rooted RC tree with explicit sink taps.

    Parameters
    ----------
    segments : tuple of WireSegment
        The RC stages, declared parent-before-child; each name is
        unique and each parent is ``"root"`` or an earlier segment.
    sinks : tuple of str, optional
        Tapped node names feeding downstream gates.  Empty (default)
        taps every *leaf* segment.

    Raises
    ------
    NetlistError
        On duplicate names, unknown/forward parents, or a sink that
        names no segment.
    """

    segments: tuple[WireSegment, ...]
    sinks: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.segments:
            raise NetlistError("a wire tree needs at least one "
                               "segment")
        object.__setattr__(self, "segments", tuple(self.segments))
        seen: set[str] = set()
        for segment in self.segments:
            if segment.name in seen:
                raise NetlistError(
                    f"duplicate wire segment name {segment.name!r}")
            if segment.parent != ROOT and segment.parent not in seen:
                raise NetlistError(
                    f"segment {segment.name!r}: parent "
                    f"{segment.parent!r} is not declared before it")
            seen.add(segment.name)
        if not self.sinks:
            parents = {segment.parent for segment in self.segments}
            object.__setattr__(
                self, "sinks",
                tuple(segment.name for segment in self.segments
                      if segment.name not in parents))
        else:
            object.__setattr__(self, "sinks", tuple(self.sinks))
            unknown = set(self.sinks) - seen
            if unknown:
                raise NetlistError(
                    f"sink(s) {sorted(unknown)} name no wire segment")
            if len(set(self.sinks)) != len(self.sinks):
                raise NetlistError("duplicate sink names")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def line(cls, segments: int = 4, resistance: float = 2e3,
             capacitance: float = 0.4e-15, load: float = 0.0,
             prefix: str = "n") -> "WireTree":
        """A uniform RC ladder — the distributed-line approximation.

        Parameters
        ----------
        segments : int, optional
            Number of lumped stages (>= 1; more stages approximate a
            distributed line more closely).
        resistance, capacitance : float, optional
            Per-*segment* series resistance (ohms) and shunt
            capacitance (farads).
        load : float, optional
            Receiver load at the single sink (the far end), farads.
        prefix : str, optional
            Node-name prefix (nodes are ``n1 … n<segments>``).
        """
        if segments < 1:
            raise ParameterError("line needs at least 1 segment")
        stages = []
        parent = ROOT
        for index in range(1, segments + 1):
            name = f"{prefix}{index}"
            stages.append(WireSegment(
                name=name, parent=parent, resistance=resistance,
                capacitance=capacitance,
                load=load if index == segments else 0.0))
            parent = name
        return cls(segments=tuple(stages))

    @classmethod
    def fanout(cls, branches: int = 2, stem: int = 1,
               segments: int = 2, resistance: float = 2e3,
               capacitance: float = 0.4e-15,
               load: float = 0.0) -> "WireTree":
        """A stem splitting into identical branches (fanout tree).

        Parameters
        ----------
        branches : int, optional
            Number of branches after the stem (>= 1); each branch end
            is a sink.
        stem : int, optional
            RC stages shared by all branches before the split
            (>= 0).
        segments : int, optional
            RC stages per branch (>= 1).
        resistance, capacitance : float, optional
            Per-segment series resistance (ohms) and shunt
            capacitance (farads).
        load : float, optional
            Receiver load at every branch end, farads.
        """
        if branches < 1:
            raise ParameterError("fanout needs at least 1 branch")
        if stem < 0 or segments < 1:
            raise ParameterError(
                "fanout needs stem >= 0 and segments >= 1")
        stages = []
        parent = ROOT
        for index in range(1, stem + 1):
            name = f"s{index}"
            stages.append(WireSegment(
                name=name, parent=parent, resistance=resistance,
                capacitance=capacitance))
            parent = name
        split = parent
        for branch in range(1, branches + 1):
            parent = split
            for index in range(1, segments + 1):
                name = f"b{branch}_{index}"
                stages.append(WireSegment(
                    name=name, parent=parent, resistance=resistance,
                    capacitance=capacitance,
                    load=load if index == segments else 0.0))
                parent = name
        return cls(segments=tuple(stages))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def root(self) -> str:
        """Name of the driving-point node (always ``"root"``)."""
        return ROOT

    @property
    def nodes(self) -> tuple[str, ...]:
        """All node names, root first, parent-before-child."""
        return (ROOT,) + tuple(s.name for s in self.segments)

    def total_capacitance(self) -> float:
        """Total capacitance the tree presents, sink loads included,
        farads — the effective load added to the driving gate."""
        return sum(s.capacitance + s.load for s in self.segments)

    def children(self) -> dict[str, list[WireSegment]]:
        """Parent node name -> list of child segments."""
        out: dict[str, list[WireSegment]] = {}
        for segment in self.segments:
            out.setdefault(segment.parent, []).append(segment)
        return out

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------

    def downstream_capacitance(self) -> dict[str, float]:
        """Per-node capacitance of the subtree hanging below it,
        the node's own capacitance and load included, farads."""
        down: dict[str, float] = {}
        for segment in reversed(self.segments):
            subtree = segment.capacitance + segment.load
            subtree += sum(down[child.name]
                           for child in self.children().get(
                               segment.name, []))
            down[segment.name] = subtree
        return down

    def elmore_delays(self) -> dict[str, float]:
        """Elmore delay ``T_D(i) = Σ_j R(path∩path) C_j`` per node,
        seconds — the negated first transfer moment, and the exact
        threshold-crossing shift in the slow-input (ramp) limit."""
        down = self.downstream_capacitance()
        delay: dict[str, float] = {ROOT: 0.0}
        for segment in self.segments:
            delay[segment.name] = (delay[segment.parent]
                                   + segment.resistance
                                   * down[segment.name])
        return delay

    def moments(self) -> tuple[dict[str, float], dict[str, float]]:
        """Exact first/second transfer moments per node.

        Returns
        -------
        tuple of dict
            ``(elmore, m2)`` where *elmore* maps node name to
            ``T_D(i) = −m1(i)`` and *m2* to the second moment
            ``m2(i) = Σ_j R(path(i) ∩ path(j)) C_j T_D(j)``, the
            inputs of the two-pole match of
            :mod:`repro.wire.model`.
        """
        elmore = self.elmore_delays()
        children = self.children()
        weighted: dict[str, float] = {}
        for segment in reversed(self.segments):
            total = ((segment.capacitance + segment.load)
                     * elmore[segment.name])
            total += sum(weighted[child.name]
                         for child in children.get(segment.name, []))
            weighted[segment.name] = total
        m2: dict[str, float] = {ROOT: 0.0}
        for segment in self.segments:
            m2[segment.name] = (m2[segment.parent]
                                + segment.resistance
                                * weighted[segment.name])
        return elmore, m2

    def describe(self) -> str:
        """One-line structural summary."""
        return (f"wire tree: {len(self.segments)} segments, "
                f"{len(self.sinks)} sink(s) "
                f"({', '.join(self.sinks)}), total "
                f"{self.total_capacitance() * 1e15:.3f} fF")
