"""Request handlers: one function per request kind.

Each handler takes ``(session, request)``, routes into the existing
core/engine/library/sta machinery, and returns the matching typed
result.  Handlers are **pure** with respect to the session — no file
writes, no globals — which is what makes the per-session result cache
of :meth:`repro.api.Session.run` safe; side effects (writing a library
JSON, writing a result envelope) belong to the callers (the CLI).

Error contract: bad names and malformed inputs raise
:class:`~repro.errors.ReproError` subclasses or :class:`ValueError`
with a one-line message — the CLI turns those into exit code 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from .._version import __version__
from ..engine import available_engines
from ..errors import ParameterError
from ..units import to_ps
from .catalog import (EXPERIMENT_DESCRIPTIONS, GATE_CHOICES,
                      WORKFLOW_DESCRIPTIONS)
from .requests import (CharacterizeRequest, DelayRequest,
                       DescribeRequest, ExperimentRequest,
                       LibraryRequest, MultiInputRequest, Request,
                       StaRequest, StatsRequest, SweepRequest,
                       VersionRequest, WireRequest)
from .results import (CharacterizeResult, DelayResult, DescribeResult,
                      ExperimentResult, LibraryInspectResult,
                      MultiInputResult, Result, StaRunResult,
                      StatsResult, SweepResult, VersionResult,
                      WireResult)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session

__all__ = ["HANDLERS"]


def _gate_width(gate: str) -> int:
    if gate not in GATE_CHOICES:
        raise ParameterError(
            f"unknown gate {gate!r}; available: "
            f"{', '.join(GATE_CHOICES)}")
    return int(gate[len("nor"):])


# ----------------------------------------------------------------------
# describe / version
# ----------------------------------------------------------------------

def _cache_report() -> dict:
    """Persistent-cache status for version/describe results."""
    from .. import cache as disk_cache
    store = disk_cache.get_store()
    if store is None:
        return {"enabled": False}
    return {"enabled": True, **store.info()}


def _describe(session: "Session",
              request: DescribeRequest) -> DescribeResult:
    entries = dict(EXPERIMENT_DESCRIPTIONS)
    entries["characterize"] = WORKFLOW_DESCRIPTIONS["characterize"]
    entries["library"] = (EXPERIMENT_DESCRIPTIONS["library"] + "; "
                          + WORKFLOW_DESCRIPTIONS["library"])
    entries["sta"] = WORKFLOW_DESCRIPTIONS["sta"]
    entries["stats"] = WORKFLOW_DESCRIPTIONS["stats"]
    entries["delay"] = WORKFLOW_DESCRIPTIONS["delay"]
    entries["wire"] = WORKFLOW_DESCRIPTIONS["wire"]
    entries["metrics"] = WORKFLOW_DESCRIPTIONS["metrics"]
    entries["version"] = WORKFLOW_DESCRIPTIONS["version"]
    width = max(len(name) for name in entries)
    text = "\n".join(f"{name:<{width}}  {description}"
                     for name, description in entries.items())
    return DescribeResult(version=__version__,
                          engines=available_engines(),
                          experiments=dict(EXPERIMENT_DESCRIPTIONS),
                          workflows=dict(WORKFLOW_DESCRIPTIONS),
                          text=text,
                          cache=_cache_report())


def _version(session: "Session",
             request: VersionRequest) -> VersionResult:
    return VersionResult(version=__version__,
                         text=f"repro {__version__}",
                         cache=_cache_report())


# ----------------------------------------------------------------------
# delay
# ----------------------------------------------------------------------

def _delay(session: "Session", request: DelayRequest) -> DelayResult:
    from ..analysis.reporting import ascii_table
    from ..core.multi_input import paper_generalized

    if request.direction not in ("falling", "rising"):
        raise ParameterError(
            f"direction must be 'falling' or 'rising', got "
            f"{request.direction!r}")
    if not request.deltas:
        raise ParameterError("at least one Δ-vector is required")
    width = _gate_width(request.gate)
    wanted = width - 1
    for entry in request.deltas:
        if len(entry) != wanted:
            raise ParameterError(
                f"{request.gate} takes {wanted} sibling offset(s) "
                f"per Δ-vector, got {len(entry)}")
    engine = session.engine
    rows = np.asarray(request.deltas, dtype=float)
    if width == 2:
        axis = rows[:, 0]
        if request.direction == "falling":
            delays = engine.delays_falling(session.parameters, axis)
        else:
            delays = engine.delays_rising(session.parameters, axis,
                                          request.vn_init)
    else:
        wide = paper_generalized(width, session.parameters)
        if request.direction == "falling":
            delays = engine.delays_falling_n(wide, rows)
        else:
            delays = engine.delays_rising_n(wide, rows,
                                            request.vn_init)

    def _axis(entry: tuple[float, ...]) -> str:
        return ", ".join(f"{to_ps(value):+.2f}" for value in entry)

    table = ascii_table(
        ["Δ [ps]", "delay [ps]"],
        [(_axis(entry), f"{to_ps(delay):.3f}")
         for entry, delay in zip(request.deltas, delays)],
        title=f"{request.gate} {request.direction} MIS delays via "
              f"'{engine.name}'")
    return DelayResult(gate=request.gate,
                       direction=request.direction,
                       engine=engine.name,
                       deltas=request.deltas,
                       delays=tuple(float(d) for d in delays),
                       text=table)


# ----------------------------------------------------------------------
# engine sweep / n-input probe / experiments
# ----------------------------------------------------------------------

def _sweep(session: "Session", request: SweepRequest) -> SweepResult:
    from ..analysis import experiments as exp

    outcome = exp.experiment_engines(params=session.parameters,
                                     points=request.points,
                                     repeats=request.repeats)
    return SweepResult(
        points=outcome.points,
        seconds=dict(outcome.seconds),
        points_per_second=dict(outcome.points_per_second),
        speedup=outcome.speedup,
        max_abs_difference=outcome.max_abs_difference,
        text=outcome.text)


def _multi_input(session: "Session",
                 request: MultiInputRequest) -> MultiInputResult:
    from ..analysis import experiments as exp

    width = _gate_width(request.gate)
    if width < 3:
        raise ParameterError(
            "multi_input probes the generalized path; use nor3 or "
            "nor4")
    outcome = exp.experiment_multi_input(params=session.parameters,
                                         num_inputs=width,
                                         grid_points=request.points,
                                         engine=session.engine)
    return MultiInputResult(gate=request.gate,
                            reduction_error=outcome.reduction_error,
                            batch_error=outcome.batch_error,
                            speedup=outcome.speedup,
                            text=outcome.text)


def _experiment(session: "Session",
                request: ExperimentRequest) -> ExperimentResult:
    from ..analysis import experiments as exp

    name = request.name
    tech = session.technology
    if name == "fig2":
        text = exp.experiment_fig2(tech).text
    elif name == "fig4":
        text = exp.experiment_fig4().text
    elif name in ("fig5", "fig6", "fig8"):
        characterization = (exp.characterize_nor(tech)
                            if request.with_analog else None)
        runner = {"fig5": exp.experiment_fig5,
                  "fig6": exp.experiment_fig6,
                  "fig8": exp.experiment_fig8}[name]
        text = runner(characterization=characterization,
                      engine=session.engine).text
    elif name == "fig7":
        options = {}
        if request.transitions is not None:
            options["transitions"] = request.transitions
        if request.repetitions is not None:
            options["repetitions"] = request.repetitions
        text = exp.experiment_fig7(tech, seed=request.seed,
                                   **options).text
    elif name == "table1":
        text = exp.experiment_table1().text
    elif name == "analytic":
        text = exp.experiment_analytic().text
    elif name == "runtime":
        text = exp.experiment_runtime(tech).text
    elif name == "faithfulness":
        text = exp.experiment_faithfulness().text
    elif name == "library":
        text = exp.experiment_library(engine=session.engine).text
    elif name == "engines":
        # Also reachable as SweepRequest, which carries the grid
        # options and returns the structured comparison.
        text = exp.experiment_engines(
            params=session.parameters).text
    elif name == "multi_input":
        # Also reachable as MultiInputRequest (gate / grid options,
        # structured parity fields).
        text = exp.experiment_multi_input(
            params=session.parameters, engine=session.engine).text
    else:
        raise ParameterError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(EXPERIMENT_DESCRIPTIONS)}")
    return ExperimentResult(name=name, text=text)


# ----------------------------------------------------------------------
# characterize / library inspection
# ----------------------------------------------------------------------

def _characterize(session: "Session",
                  request: CharacterizeRequest) -> CharacterizeResult:
    import dataclasses

    from ..core.multi_input import paper_generalized
    from ..library import (characterize_library, default_delta_grid,
                           default_state_grid,
                           default_vector_delta_grid,
                           generalized_jobs, paper_jobs, verify_table)
    from ..library.characterize import (DEFAULT_CORE_POINTS,
                                        DEFAULT_STATE_POINTS)

    width = _gate_width(request.gate)
    if request.fit:
        from ..analysis.characterization import characterize_nor
        from ..analysis.fitting import fit_from_characterization
        params = fit_from_characterization(
            characterize_nor(session.technology)).params
        suffix = session.tech_name
    else:
        params, suffix = session.parameters, "paper"
    if width != 2:
        if request.state_points is not None:
            raise ParameterError(
                f"--state-points applies to the 2-input grid; "
                f"{request.gate} surfaces record one worst-case "
                "chain state")
        wide = paper_generalized(width, params)
        jobs = generalized_jobs(width, wide,
                                technology=session.tech_name,
                                suffix=suffix)
        if request.core_points is not None:
            deltas = tuple(default_vector_delta_grid(
                wide, core_points=request.core_points))
            jobs = tuple(dataclasses.replace(job, deltas=deltas)
                         for job in jobs)
    else:
        jobs = paper_jobs(params, technology=session.tech_name,
                          suffix=suffix)
        if (request.core_points is not None
                or request.state_points is not None):
            deltas = tuple(default_delta_grid(
                params,
                core_points=(request.core_points
                             or DEFAULT_CORE_POINTS)))
            states = tuple(default_state_grid(
                params,
                points=request.state_points or DEFAULT_STATE_POINTS))
            jobs = tuple(dataclasses.replace(job, deltas=deltas,
                                             state_grid=states)
                         for job in jobs)

    engine = session.engine
    library = characterize_library(jobs, engine=engine,
                                   name=request.library_name)
    lines = [f"characterized {len(library)} cells via "
             f"'{engine.name}':"]
    worst = 0.0
    for cell in library.cells:
        accuracy = verify_table(library[cell], engine=engine)
        worst = max(worst, accuracy.max_error)
        lines.append(f"  {library[cell].describe()}")
        lines.append(f"    interpolation error: falling "
                     f"{to_ps(accuracy.falling_error) * 1000.0:.2f} "
                     f"fs, rising "
                     f"{to_ps(accuracy.rising_error) * 1000.0:.2f} fs")
    if width == 2:
        lines.append(f"worst interpolation error "
                     f"{to_ps(worst) * 1000.0:.2f} fs "
                     "(acceptance: <= 100 fs)")
    else:
        lines.append(f"worst interpolation error "
                     f"{to_ps(worst) * 1000.0:.2f} fs "
                     "(multilinear on the tensor grid; raise "
                     "--core-points to tighten)")
    return CharacterizeResult(cells=library.cells,
                              worst_error=worst,
                              engine=engine.name,
                              library=library.to_dict(),
                              text="\n".join(lines))


def _library(session: "Session",
             request: LibraryRequest) -> LibraryInspectResult:
    from ..library import VectorDelaySurface, verify_table

    library = session.load_library(request.path)
    lines = [f"library '{library.name}' "
             f"({len(library)} cells)"]
    if library.description:
        lines.append(f"  {library.description}")
    cells = ([request.cell] if request.cell
             else list(library.cells))
    for cell in cells:
        try:
            table = library[cell]
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        lines.append(f"  {table.describe()}")
        if request.cell:
            if isinstance(table.falling, VectorDelaySurface):
                zero = [0.0] * table.falling.num_siblings
                for direction in ("falling", "rising"):
                    surface = getattr(table, direction)
                    lo, hi = surface.delta_ranges[0]
                    lines.append(
                        f"    {direction}: {surface.num_siblings}-D "
                        f"Δ-vector surface, axes "
                        f"[{to_ps(lo):.0f}, {to_ps(hi):.0f}] ps, "
                        f"δ(0) {to_ps(surface.delay_at(zero)):.2f} "
                        f"ps")
            else:
                fall = table.falling.characteristic()
                rise = table.rising.characteristic()
                lines.append("    " + fall.describe("delta_fall"))
                lines.append("    " + rise.describe("delta_rise"))
            lines.append(f"    characterized by engine "
                         f"'{table.engine}'")
        if request.verify:
            accuracy = verify_table(table, engine=session.engine)
            lines.append(
                f"    verify vs '{session.engine.name}': max "
                f"{to_ps(accuracy.max_error) * 1000.0:.2f} fs")
    return LibraryInspectResult(name=library.name,
                                cells=tuple(cells),
                                text="\n".join(lines))


# ----------------------------------------------------------------------
# sta
# ----------------------------------------------------------------------

def _sta(session: "Session", request: StaRequest) -> StaRunResult:
    from ..sta import (TableArcModel, analyze, build_timing_graph,
                       demo_corners, render_report,
                       render_sweep_summary, sta_circuit, sta_payload,
                       sweep_corners)

    if request.validate:
        from ..analysis import experiments as exp
        outcome = exp.experiment_sta(params=session.parameters,
                                     engine=session.engine)
        return StaRunResult(circuit=None,
                            engine=session.engine.name,
                            analysis=None,
                            max_error=outcome.max_error,
                            text=outcome.text)

    engine = session.engine  # fail fast on unknown names
    models = None
    if request.library_path is not None:
        if request.cell is None:
            raise ParameterError(
                "--library needs --cell to pick the table driving "
                "the gates")
        library = session.load_library(request.library_path)
        try:
            table = library[request.cell]
        except KeyError as error:
            raise ValueError(error.args[0]) from None
        circuit = sta_circuit(request.circuit, session.parameters)
        models = {instance.name: TableArcModel(table)
                  for instance in circuit.instances}
        graph = build_timing_graph(circuit, models=models,
                                   engine=engine)
    else:
        # The session's memoized engine-backed graph of the bound
        # parameter set.
        graph = session.timing_graph(request.circuit)
    result = analyze(graph, required=request.required,
                     top_paths=request.top)
    lines = [render_report(result,
                           title=f"STA report: circuit "
                                 f"'{request.circuit}' via "
                                 f"'{engine.name}'")]
    sweep = None
    if request.corners is not None:
        params_axis, corner_arrivals = demo_corners(
            request.corners, [graph.inputs[0]], seed=request.seed)
        if models is not None:
            # Table arcs are characterized for one parameter set;
            # sweep only the arrival axis for library-backed runs.
            params_axis = None
        sweep = sweep_corners(graph, params=params_axis,
                              arrivals=corner_arrivals,
                              required=request.required)
        lines.append("")
        lines.append(render_sweep_summary(sweep))
    return StaRunResult(circuit=request.circuit,
                        engine=engine.name,
                        analysis=sta_payload(result, sweep),
                        max_error=None,
                        text="\n".join(lines))


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------

def _stats_tuples(array) -> tuple:
    return tuple(float(value) for value in array)


def _render_summary(summary, title: str) -> str:
    from ..analysis.reporting import ascii_table

    headers = ["Δ [ps]", "mean [ps]", "std [ps]"]
    headers += [f"p{level:g} [ps]"
                for level in summary.percentile_levels]
    rows = []
    for j, delta in enumerate(summary.deltas):
        row = [f"{to_ps(delta):+.2f}",
               f"{to_ps(summary.mean[j]):.3f}",
               f"{to_ps(summary.std[j]):.4f}"]
        row += [f"{to_ps(summary.percentile_values[i][j]):.3f}"
                for i in range(len(summary.percentile_levels))]
        rows.append(tuple(row))
    return ascii_table(headers, rows, title=title)


def _stats(session: "Session", request: StatsRequest) -> StatsResult:
    from ..stats import (ParameterDistribution, fit_surrogate,
                         monte_carlo, timing_yield)
    from ..stats.distributions import VARIABLE_PARAMS
    from ..stats.montecarlo import summarize

    if request.method not in ("mc", "surrogate", "yield"):
        raise ParameterError(
            f"unknown stats method {request.method!r}; choose "
            "'mc', 'surrogate' or 'yield'")
    sigma = request.sigma or tuple(
        (name, 0.05) for name in VARIABLE_PARAMS)
    distribution = ParameterDistribution(
        session.parameters, sigma, kind=request.distribution,
        correlation=request.correlation)

    if request.method == "yield":
        graph = session.timing_graph(request.circuit)
        outcome = timing_yield(
            graph, distribution, samples=request.samples,
            seed=request.seed, required=request.required,
            arrival_sigma=request.arrival_sigma,
            per_instance=request.per_instance)
        summary = summarize(outcome.worst_arrival[:, None], [0.0],
                            method="yield",
                            percentiles=request.percentiles,
                            bins=request.bins)
        variation = ("per-instance" if request.per_instance
                     else "shared")
        lines = [f"statistical STA: circuit '{request.circuit}', "
                 f"{request.samples} corners ({variation} "
                 f"variation), seed {request.seed}"]
        stats = outcome.arrival_stats()
        lines.append(f"  worst arrival: mean "
                     f"{to_ps(stats['mean']):.3f} ps, std "
                     f"{to_ps(stats['std']):.4f} ps, range "
                     f"[{to_ps(stats['min']):.3f}, "
                     f"{to_ps(stats['max']):.3f}] ps")
        if request.required is not None:
            lines.append(
                f"  required {to_ps(request.required):.3f} ps -> "
                f"timing yield {outcome.yield_fraction:.4f}")
        else:
            lines.append("  no requirement -> yield 1.0 by "
                         "definition")
        return StatsResult(
            method="yield", gate=request.gate,
            direction=request.direction, circuit=request.circuit,
            samples=request.samples, deltas=(),
            mean=_stats_tuples(summary.mean),
            std=_stats_tuples(summary.std),
            minimum=_stats_tuples(summary.minimum),
            maximum=_stats_tuples(summary.maximum),
            percentile_levels=_stats_tuples(
                summary.percentile_levels),
            percentile_values=tuple(
                _stats_tuples(row)
                for row in summary.percentile_values),
            histogram_edges=(None if summary.histogram_edges is None
                             else tuple(
                                 _stats_tuples(row)
                                 for row in summary.histogram_edges)),
            histogram_counts=(None
                              if summary.histogram_counts is None
                              else tuple(
                                  _stats_tuples(row)
                                  for row in
                                  summary.histogram_counts)),
            yield_fraction=outcome.yield_fraction,
            required=request.required,
            text="\n".join(lines))

    if request.method == "mc":
        summary = monte_carlo(
            distribution, request.deltas, samples=request.samples,
            direction=request.direction, seed=request.seed,
            gate=request.gate, vn_init=request.vn_init,
            engine=session.engine, percentiles=request.percentiles,
            bins=request.bins)
        title = (f"Monte-Carlo delay statistics: {request.gate} "
                 f"{request.direction}, {summary.samples} samples, "
                 f"seed {request.seed}")
    else:
        surrogate = fit_surrogate(
            distribution, request.deltas,
            direction=request.direction, gate=request.gate,
            vn_init=request.vn_init, degree=request.degree,
            engine=session.engine)
        summary = surrogate.summarize(
            samples=request.samples, seed=request.seed,
            percentiles=request.percentiles, bins=request.bins)
        title = (f"collocation-surrogate delay statistics: "
                 f"{request.gate} {request.direction}, "
                 f"{summary.samples} model evaluations "
                 f"(degree {request.degree}), seed {request.seed}")
    return StatsResult(
        method=request.method, gate=request.gate,
        direction=request.direction, circuit=None,
        samples=summary.samples,
        deltas=_stats_tuples(summary.deltas),
        mean=_stats_tuples(summary.mean),
        std=_stats_tuples(summary.std),
        minimum=_stats_tuples(summary.minimum),
        maximum=_stats_tuples(summary.maximum),
        percentile_levels=_stats_tuples(summary.percentile_levels),
        percentile_values=tuple(
            _stats_tuples(row) for row in summary.percentile_values),
        histogram_edges=(None if summary.histogram_edges is None
                         else tuple(
                             _stats_tuples(row)
                             for row in summary.histogram_edges)),
        histogram_counts=(None if summary.histogram_counts is None
                          else tuple(
                              _stats_tuples(row)
                              for row in summary.histogram_counts)),
        yield_fraction=None, required=None,
        text=_render_summary(summary, title))


# ----------------------------------------------------------------------
# wire
# ----------------------------------------------------------------------

def _wire_tree(request: WireRequest):
    from ..wire import WireTree

    if request.topology == "line":
        return WireTree.line(segments=request.stages,
                             resistance=request.resistance,
                             capacitance=request.capacitance,
                             load=request.sink_load)
    if request.topology == "fanout":
        return WireTree.fanout(branches=request.branches, stem=1,
                               segments=request.stages,
                               resistance=request.resistance,
                               capacitance=request.capacitance,
                               load=request.sink_load)
    raise ParameterError(
        f"unknown wire topology {request.topology!r}; choose "
        "'line' or 'fanout'")


def _wire_spice_delays(tree, model: str, delays) -> dict[str, float]:
    """Transient ground truth: sink Vdd/2-crossing shifts, seconds.

    Drives the lowered tree with an ideal-source edge matched to the
    model's regime — near-step for ``two_pole`` (its moments match
    the step response), a slow settled ramp for ``elmore`` (whose
    mean-of-impulse-response delay is exact for settled ramps).
    """
    from ..spice.measure import crossing_after
    from ..spice.netlist import Circuit
    from ..spice.transient import transient_analysis
    from ..spice.waveforms import EdgeTrain
    from ..wire import lower_wire

    worst = float(max(delays))
    if model == "elmore":
        edge_time = 50.0 * worst
        shape = "linear"
    else:
        edge_time = worst / 20.0
        shape = "raised-cosine"
    t0 = 0.75 * edge_time
    t_stop = t0 + edge_time + 20.0 * worst
    circuit = Circuit("wire_validate")
    circuit.voltage_source(
        "Vin", "in", "0",
        EdgeTrain([(t0, 1)], vdd=1.0, edge_time=edge_time,
                  shape=shape))
    nodes = lower_wire(circuit, tree, "in")
    circuit.validate()
    result = transient_analysis(circuit, t_stop)
    return {sink: crossing_after(result, nodes[sink], 0.5, 0.0, 1)
            - t0
            for sink in tree.sinks}


def _wire(session: "Session", request: WireRequest) -> WireResult:
    from ..analysis.reporting import ascii_table
    from ..wire import reduce_tree, scaled_delays

    tree = _wire_tree(request)
    timing = reduce_tree(tree, model=request.model)
    delays = timing.delays()
    slews = timing.slews()
    elmore = np.asarray([timing.timing(sink).elmore
                         for sink in tree.sinks])

    measured: dict[str, float] | None = None
    max_error = None
    if request.validate:
        measured = _wire_spice_delays(tree, request.model, delays)
        max_error = float(max(
            abs(measured[sink] - float(delay))
            for sink, delay in zip(tree.sinks, delays)))

    headers = ["sink", "Elmore [ps]", "delay [ps]", "slew [ps]"]
    if measured is not None:
        headers += ["spice [ps]", "error [fs]"]
    rows = []
    for j, sink in enumerate(tree.sinks):
        row = [sink, f"{to_ps(elmore[j]):.3f}",
               f"{to_ps(delays[j]):.3f}", f"{to_ps(slews[j]):.3f}"]
        if measured is not None:
            row += [f"{to_ps(measured[sink]):.3f}",
                    f"{to_ps(abs(measured[sink] - delays[j])) * 1000.0:.2f}"]
        rows.append(tuple(row))
    lines = [ascii_table(
        headers, rows,
        title=f"wire '{request.topology}' ({len(tree.segments)} "
              f"segments, {to_ps(tree.total_capacitance() * 1e3):.3f} fF "
              f"total) via '{request.model}'")]

    corner_min = corner_max = None
    if request.corners > 0:
        rng = np.random.default_rng(request.seed)
        r_scale = rng.uniform(0.8, 1.2, request.corners)
        c_scale = rng.uniform(0.8, 1.2, request.corners)
        worst = scaled_delays(timing, r_scale, c_scale).max(axis=-1)
        corner_min = float(worst.min())
        corner_max = float(worst.max())
        lines.append(
            f"{request.corners} R/C corners (±20 %, seed "
            f"{request.seed}): worst sink delay in "
            f"[{to_ps(corner_min):.3f}, {to_ps(corner_max):.3f}] ps")
    if max_error is not None:
        lines.append(
            f"transient cross-validation: max |model - spice| = "
            f"{to_ps(max_error) * 1000.0:.2f} fs")
    return WireResult(
        topology=request.topology, model=request.model,
        sinks=tuple(tree.sinks),
        elmore=tuple(float(v) for v in elmore),
        delays=tuple(float(v) for v in delays),
        slews=tuple(float(v) for v in slews),
        total_capacitance=float(tree.total_capacitance()),
        corners=int(request.corners),
        corner_delay_min=corner_min, corner_delay_max=corner_max,
        max_error=max_error, text="\n".join(lines))


#: Request type -> handler, consumed by :meth:`Session.run`.
HANDLERS: dict[type[Request],
               Callable[["Session", Request], Result]] = {
    DescribeRequest: _describe,
    VersionRequest: _version,
    DelayRequest: _delay,
    SweepRequest: _sweep,
    MultiInputRequest: _multi_input,
    ExperimentRequest: _experiment,
    CharacterizeRequest: _characterize,
    LibraryRequest: _library,
    StaRequest: _sta,
    StatsRequest: _stats,
    WireRequest: _wire,
}
