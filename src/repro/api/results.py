"""Typed, JSON-round-trippable result objects of :meth:`Session.run`.

Each request type of :mod:`repro.api.requests` resolves to exactly one
result type here.  Results are frozen dataclasses of plain data: every
field serializes through the :mod:`repro.api.serialization` envelope
(``result.to_json()``) and decodes back with
``Result.from_json`` / :func:`repro.api.from_json` — the round-trip
contract the property tests enforce.

Every result carries a ``text`` field with the human rendering the CLI
prints; the structured fields carry the same information for
machines.  All physical quantities are SI seconds unless a field name
says otherwise.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar

from .serialization import ApiRecord

__all__ = [
    "CharacterizeResult",
    "DelayResult",
    "DescribeResult",
    "ErrorResult",
    "ExperimentResult",
    "LibraryInspectResult",
    "MultiInputResult",
    "Result",
    "StaRunResult",
    "StatsResult",
    "SweepResult",
    "VersionResult",
    "WireResult",
]


@dataclasses.dataclass(frozen=True)
class Result(ApiRecord):
    """Base class of everything :meth:`Session.run` returns.

    Parameters
    ----------
    timings : dict of str to float, optional
        Per-request timing breakdown (span name -> seconds summed
        over that request), attached by :meth:`Session.run` **only
        while tracing is enabled** (``Session(trace=...)``,
        ``REPRO_TRACE``, or ``repro ... --trace``).  ``None`` by
        default and then omitted from the JSON envelope entirely, so
        untraced envelopes are byte-identical to previous releases.
    """

    #: Fields dropped from the envelope when ``None`` (instead of
    #: serializing as ``null``) — keeps ``timings`` schema-compatible.
    _omit_none: ClassVar[frozenset] = frozenset({"timings"})

    timings: dict[str, float] | None = None


@dataclasses.dataclass(frozen=True)
class ErrorResult(Result):
    """A failed request, as a first-class envelope.

    :meth:`Session.run` *raises* on bad requests (the CLI turns that
    into exit code 2); transports that must keep going — the HTTP
    service of :mod:`repro.server`, a batch job where one bad JSONL
    line must not abort the others — wrap the failure in this record
    instead, so error outcomes travel through exactly the same
    schema-versioned envelope as successes.

    Parameters
    ----------
    error : str
        One-line human-readable failure message.
    exception : str
        Class name of the underlying exception (``"ParameterError"``,
        ``"TimeoutError"``, ...).
    request_kind : str, optional
        ``kind`` tag of the offending request, when it decoded far
        enough to tell.
    status : int
        The HTTP status the service mapped the failure to (400 bad
        request, 404 unknown resource, 504 timeout, 500 internal);
        ``0`` outside an HTTP context.
    text : str
        The rendered one-line error (what a CLI would print).
    """

    kind: ClassVar[str] = "error"
    error: str = ""
    exception: str = ""
    request_kind: str | None = None
    status: int = 0
    text: str = ""

    @classmethod
    def from_exception(cls, exc: BaseException,
                       request_kind: str | None = None,
                       status: int = 0) -> "ErrorResult":
        """Wrap an exception into the envelope.

        Parameters
        ----------
        exc : BaseException
            The failure; its ``str()`` becomes the message (falling
            back to the class name for message-less exceptions).
        request_kind : str, optional
            ``kind`` tag of the offending request, if known.
        status : int, optional
            HTTP status code the caller maps the failure to.
        """
        message = str(exc) or type(exc).__name__
        return cls(error=message, exception=type(exc).__name__,
                   request_kind=request_kind, status=status,
                   text=f"error: {message}")


@dataclasses.dataclass(frozen=True)
class DescribeResult(Result):
    """Catalog of the session's capabilities (``repro list``).

    Parameters
    ----------
    version : str
        Package version.
    engines : tuple of str
        Registered delay-engine backend names.
    experiments : dict of str to str
        Experiment name -> one-line description.
    workflows : dict of str to str
        Workflow command name -> one-line description.
    text : str
        The two-column listing the CLI prints.
    cache : dict, optional
        Persistent-cache report: ``{"enabled": False}`` when no
        cache root is configured, else ``{"enabled": True, "dir",
        "hits", "misses", "writes", "entries"}`` (process-wide
        counters, see :mod:`repro.cache`).
    """

    kind: ClassVar[str] = "describe_result"
    version: str = ""
    engines: tuple[str, ...] = ()
    experiments: dict[str, str] = dataclasses.field(
        default_factory=dict)
    workflows: dict[str, str] = dataclasses.field(default_factory=dict)
    text: str = ""
    cache: dict[str, bool | int | str] = dataclasses.field(
        default_factory=dict)


@dataclasses.dataclass(frozen=True)
class VersionResult(Result):
    """The package version (``repro version`` / ``repro --version``).

    Parameters
    ----------
    version : str
        The version string from :mod:`repro._version`.
    text : str
        ``"repro <version>"``.
    cache : dict, optional
        Persistent-cache report (see :class:`DescribeResult`); lets
        operators poll warm-cache ratios via ``repro version
        --json``.
    """

    kind: ClassVar[str] = "version_result"
    version: str = ""
    text: str = ""
    cache: dict[str, bool | int | str] = dataclasses.field(
        default_factory=dict)


@dataclasses.dataclass(frozen=True)
class DelayResult(Result):
    """MIS delays at explicit input separations.

    Parameters
    ----------
    gate : str
        Evaluated gate width (``nor2`` / ``nor3`` / ``nor4``).
    direction : str
        ``"falling"`` or ``"rising"``.
    engine : str
        Name of the backend that produced the delays.
    deltas : tuple of tuple of float
        The queried Δ-vectors, echoed back (seconds).
    delays : tuple of float
        One delay per query point, seconds, ``δ_min`` included.
    text : str
        Rendered Δ/delay table.
    """

    kind: ClassVar[str] = "delay_result"
    gate: str = "nor2"
    direction: str = "falling"
    engine: str = ""
    deltas: tuple[tuple[float, ...], ...] = ()
    delays: tuple[float, ...] = ()
    text: str = ""


@dataclasses.dataclass(frozen=True)
class SweepResult(Result):
    """Backend parity and throughput of one MIS-sweep workload.

    Parameters
    ----------
    points : int
        Δ grid size per direction.
    seconds : dict of str to float
        Backend name -> wall time of a falling+rising sweep.
    points_per_second : dict of str to float
        Backend name -> sweep throughput.
    speedup : float
        Reference time / vectorized time.
    max_abs_difference : float
        Worst |backend − reference| delay, seconds.
    text : str
        Rendered comparison table.
    """

    kind: ClassVar[str] = "sweep_result"
    points: int = 0
    seconds: dict[str, float] = dataclasses.field(default_factory=dict)
    points_per_second: dict[str, float] = dataclasses.field(
        default_factory=dict)
    speedup: float = 0.0
    max_abs_difference: float = 0.0
    text: str = ""


@dataclasses.dataclass(frozen=True)
class MultiInputResult(Result):
    """Outcome of the n-input Δ-vector generalization probe.

    Parameters
    ----------
    gate : str
        Probed gate width (``nor3`` / ``nor4``).
    reduction_error : float
        Worst |generalized − closed-form| disagreement on the n = 2
        sweep, seconds.
    batch_error : float
        Worst |batched − scalar| disagreement on the Δ-vector grid,
        seconds.
    speedup : float
        Batched-vs-scalar throughput ratio.
    text : str
        Rendered summary.
    """

    kind: ClassVar[str] = "multi_input_result"
    gate: str = "nor3"
    reduction_error: float = 0.0
    batch_error: float = 0.0
    speedup: float = 0.0
    text: str = ""


@dataclasses.dataclass(frozen=True)
class CharacterizeResult(Result):
    """A characterized gate library plus its accuracy audit.

    Parameters
    ----------
    cells : tuple of str
        Characterized cell names (sorted).
    worst_error : float
        Worst table-vs-direct interpolation error, seconds.
    engine : str
        Backend that swept the grids.
    library : dict
        The serialized :class:`~repro.library.GateLibrary` payload
        (``GateLibrary.to_dict()``); load it back with
        ``GateLibrary.from_dict`` or write it as the library JSON.
    text : str
        Rendered per-cell accuracy listing.
    """

    kind: ClassVar[str] = "characterize_result"
    cells: tuple[str, ...] = ()
    worst_error: float = 0.0
    engine: str = ""
    library: dict[str, Any] = dataclasses.field(default_factory=dict)
    text: str = ""


@dataclasses.dataclass(frozen=True)
class LibraryInspectResult(Result):
    """Inspection of an on-disk characterized library.

    Parameters
    ----------
    name : str
        Library name from the JSON header.
    cells : tuple of str
        Inspected cell names.
    text : str
        Rendered listing (surface detail / verification lines
        included when requested).
    """

    kind: ClassVar[str] = "library_inspect_result"
    name: str = ""
    cells: tuple[str, ...] = ()
    text: str = ""


@dataclasses.dataclass(frozen=True)
class StaRunResult(Result):
    """A static-timing run: report, optional sweep, or validation.

    Parameters
    ----------
    circuit : str, optional
        Analyzed circuit name (``None`` for the cross-validation
        mode, which runs its own scenario set).
    engine : str
        Backend driving the timing arcs.
    analysis : dict, optional
        The full analysis payload (arrivals, slacks, paths, and the
        corner sweep under ``"sweep"``) — the shape
        :func:`repro.sta.sta_payload` documents.  ``None`` in
        cross-validation mode.
    max_error : float, optional
        Worst |STA − event-simulation| disagreement in seconds
        (cross-validation mode only).
    text : str
        Rendered report / validation table.
    """

    kind: ClassVar[str] = "sta_result"
    circuit: str | None = None
    engine: str = ""
    analysis: dict[str, Any] | None = None
    max_error: float | None = None
    text: str = ""


@dataclasses.dataclass(frozen=True)
class StatsResult(Result):
    """Statistical delay analysis outcome (``repro stats``).

    Deliberately carries **no** engine name: identical seeds produce
    byte-identical envelopes across the ``reference`` /
    ``vectorized`` / ``parallel`` backends (the determinism contract
    of :mod:`repro.stats`), and an engine field would break that.

    For ``method = "yield"`` the per-Δ statistics columns collapse
    to one pseudo-column holding the worst-endpoint-arrival
    distribution and ``deltas`` is empty.

    Parameters
    ----------
    method : str
        ``"mc"``, ``"surrogate"`` or ``"yield"``.
    gate : str
        Evaluated gate width (``mc`` / ``surrogate``).
    direction : str
        ``"falling"`` or ``"rising"`` (``mc`` / ``surrogate``).
    circuit : str, optional
        Analyzed circuit (``yield`` only, else ``None``).
    samples : int
        Samples behind the statistics; for ``surrogate`` the
        model-evaluation count (the collocation design size).
    deltas : tuple of float
        The Δ grid, seconds (empty for ``yield``).
    mean, std, minimum, maximum : tuple of float
        Per-column moments/extremes, seconds (``std`` ddof = 1).
    percentile_levels : tuple of float
        Reported percentile levels in percent.
    percentile_values : tuple of tuple of float
        Per-level, per-column percentiles, seconds.
    histogram_edges : tuple of tuple of float, optional
        Per-column bin edges (``None`` when no histogram was
        requested).
    histogram_counts : tuple of tuple of float, optional
        Per-column bin counts.
    yield_fraction : float, optional
        Fraction of corners with non-negative worst slack
        (``yield`` only).
    required : float, optional
        Endpoint requirement, seconds (``yield`` only).
    text : str
        Rendered statistics table / yield report.
    """

    kind: ClassVar[str] = "stats_result"
    method: str = "mc"
    gate: str = "nor2"
    direction: str = "falling"
    circuit: str | None = None
    samples: int = 0
    deltas: tuple[float, ...] = ()
    mean: tuple[float, ...] = ()
    std: tuple[float, ...] = ()
    minimum: tuple[float, ...] = ()
    maximum: tuple[float, ...] = ()
    percentile_levels: tuple[float, ...] = ()
    percentile_values: tuple[tuple[float, ...], ...] = ()
    histogram_edges: tuple[tuple[float, ...], ...] | None = None
    histogram_counts: tuple[tuple[float, ...], ...] | None = None
    yield_fraction: float | None = None
    required: float | None = None
    text: str = ""


@dataclasses.dataclass(frozen=True)
class WireResult(Result):
    """RC-interconnect reduction outcome (``repro wire``).

    Parameters
    ----------
    topology : str
        ``"line"`` or ``"fanout"``.
    model : str
        Reduced-order model used (``"elmore"`` / ``"two_pole"``).
    sinks : tuple of str
        Sink node names, in tree order.
    elmore : tuple of float
        Per-sink Elmore delay, seconds.
    delays : tuple of float
        Per-sink model 50 % delay, seconds.
    slews : tuple of float
        Per-sink 10–90 % output slew, seconds.
    total_capacitance : float
        Total tree capacitance (wire + sink loads), farads — the
        load the driving gate prices through
        :func:`repro.wire.loaded_params`.
    corners : int
        R/C corner count of the vectorized sweep (0 when skipped).
    corner_delay_min, corner_delay_max : float, optional
        Extremes of the worst-sink delay across the corner grid,
        seconds (``None`` when the sweep was skipped).
    max_error : float, optional
        Largest |analytic − SPICE| sink-delay error of the
        transient cross-validation, seconds (``None`` unless
        ``validate`` was requested).
    text : str
        Rendered per-sink table / validation report.
    """

    kind: ClassVar[str] = "wire_result"
    topology: str = "line"
    model: str = "two_pole"
    sinks: tuple[str, ...] = ()
    elmore: tuple[float, ...] = ()
    delays: tuple[float, ...] = ()
    slews: tuple[float, ...] = ()
    total_capacitance: float = 0.0
    corners: int = 0
    corner_delay_min: float | None = None
    corner_delay_max: float | None = None
    max_error: float | None = None
    text: str = ""


@dataclasses.dataclass(frozen=True)
class ExperimentResult(Result):
    """Rendered outcome of one reproduction experiment.

    Parameters
    ----------
    name : str
        Experiment name.
    text : str
        The experiment's rendered rows (what the figure shows).
    """

    kind: ClassVar[str] = "experiment_result"
    name: str = ""
    text: str = ""
