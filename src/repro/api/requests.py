"""Typed, JSON-round-trippable request objects for :class:`Session`.

One request class per workload the package serves.  Requests are
frozen (hashable) dataclasses carrying only plain data — every field
is a string, number, boolean, ``None`` or a (nested) tuple of those —
so they serialize through the :mod:`repro.api.serialization` envelope
and key the per-session result cache.

Requests deliberately do **not** carry an engine or technology: those
are *session* bindings (:class:`repro.api.Session`), so the same
serialized request can be replayed against any backend or corner.
All physical quantities are SI (seconds, volts), like the rest of the
package.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar

from .serialization import ApiRecord

__all__ = [
    "CharacterizeRequest",
    "DelayRequest",
    "DescribeRequest",
    "ExperimentRequest",
    "LibraryRequest",
    "MultiInputRequest",
    "Request",
    "StaRequest",
    "StatsRequest",
    "SweepRequest",
    "VersionRequest",
    "WireRequest",
]


class Request(ApiRecord):
    """Marker base class of everything :meth:`Session.run` accepts."""


@dataclasses.dataclass(frozen=True)
class DescribeRequest(Request):
    """Enumerate the available experiments, workflows and engines.

    The CLI's ``repro list`` is this request; the rendered text is the
    same two-column listing.
    """

    kind: ClassVar[str] = "describe"


@dataclasses.dataclass(frozen=True)
class VersionRequest(Request):
    """Report the package version (single-sourced from
    :mod:`repro._version`)."""

    kind: ClassVar[str] = "version"


@dataclasses.dataclass(frozen=True)
class DelayRequest(Request):
    """Evaluate MIS delays at explicit input separations.

    Parameters
    ----------
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    deltas : tuple of tuple of float
        One entry per query point.  Each entry is a Δ-vector of
        sibling offsets in seconds: length 1 for ``nor2`` (the
        paper's scalar Δ), length ``n − 1`` for ``nor3`` / ``nor4``.
    gate : str
        Gate width: ``"nor2"`` (closed-form path), ``"nor3"`` or
        ``"nor4"`` (generalized Δ-vector path).
    vn_init : float
        Initial internal-node voltage in volts, rising direction
        only (default 0.0, the GND worst case).
    """

    kind: ClassVar[str] = "delay"
    direction: str = "falling"
    deltas: tuple[tuple[float, ...], ...] = ((0.0,),)
    gate: str = "nor2"
    vn_init: float = 0.0


@dataclasses.dataclass(frozen=True)
class SweepRequest(Request):
    """Backend parity/throughput sweep across every registered engine.

    The CLI's ``repro engines``: one falling+rising Δ sweep of
    *points* per direction through each backend, timed and checked
    against the scalar reference.

    Parameters
    ----------
    points : int
        Δ grid size per direction.
    repeats : int
        Timing repetitions (best-effort smoothing).
    """

    kind: ClassVar[str] = "sweep"
    points: int = 4096
    repeats: int = 1


@dataclasses.dataclass(frozen=True)
class MultiInputRequest(Request):
    """n-input NOR generalization probe (``repro multi_input``).

    Parameters
    ----------
    gate : str
        Probed gate width, ``"nor3"`` or ``"nor4"``.
    points : int
        Per-axis Δ-vector grid size of the batched-vs-scalar probe.
    """

    kind: ClassVar[str] = "multi_input"
    gate: str = "nor3"
    points: int = 25


@dataclasses.dataclass(frozen=True)
class CharacterizeRequest(Request):
    """Characterize a gate library (``repro characterize``).

    The result embeds the serialized
    :class:`~repro.library.GateLibrary` payload; writing it to disk is
    the caller's choice (the CLI's ``--out``).

    Parameters
    ----------
    gate : str
        ``"nor2"`` runs the paper's four-cell NOR2/NAND2 grid,
        ``"nor3"`` / ``"nor4"`` the n-input Δ-vector flow.
    fit : bool
        Fit gate parameters from an analog characterization of the
        session's technology instead of the paper's Table I (slower).
    core_points : int, optional
        Uniform Δ samples across the MIS core (``None``: the
        library's standard grid).
    state_points : int, optional
        Internal-node voltage grid size, 2-input grid only (``None``:
        the library's standard grid).
    library_name : str
        Library name stored in the JSON header.
    """

    kind: ClassVar[str] = "characterize"
    gate: str = "nor2"
    fit: bool = False
    core_points: int | None = None
    state_points: int | None = None
    library_name: str = "repro-hybrid"


@dataclasses.dataclass(frozen=True)
class LibraryRequest(Request):
    """Inspect / verify a characterized library JSON file.

    Parameters
    ----------
    path : str
        Path of a ``repro characterize`` output file.
    cell : str, optional
        Restrict inspection to one cell (adds the per-direction
        surface detail).
    verify : bool
        Re-measure the interpolation error of every listed table
        against the session's engine.
    """

    kind: ClassVar[str] = "library"
    path: str = ""
    cell: str | None = None
    verify: bool = False


@dataclasses.dataclass(frozen=True)
class StaRequest(Request):
    """MIS-aware static timing analysis (``repro sta``).

    Parameters
    ----------
    circuit : str
        Built-in test circuit name (see ``repro.sta.STA_CIRCUITS``).
    library_path : str, optional
        Characterized library JSON; gates use table lookups instead
        of direct evaluation (requires *cell*).
    cell : str, optional
        Cell of *library_path* driving the gates.
    required : float, optional
        Endpoint required arrival time in seconds (enables slack).
    top : int
        Number of ranked critical paths.
    corners : int, optional
        Also run an N-corner vectorized sweep (random
        parameter/arrival corners).
    seed : int
        Corner-sampling seed.
    validate : bool
        Run the STA-vs-event-simulation cross-validation instead of
        a report.
    """

    kind: ClassVar[str] = "sta"
    circuit: str = "tree"
    library_path: str | None = None
    cell: str | None = None
    required: float | None = None
    top: int = 3
    corners: int | None = None
    seed: int = 0
    validate: bool = False


@dataclasses.dataclass(frozen=True)
class ExperimentRequest(Request):
    """Run one of the paper's reproduction experiments by name.

    Covers the figure/table subcommands (``fig2`` … ``faithfulness``)
    plus the ``library`` characterization-accuracy experiment; the
    engine-comparison and n-input probes have their own richer
    request types (:class:`SweepRequest`, :class:`MultiInputRequest`).

    Parameters
    ----------
    name : str
        Experiment name (``repro list`` enumerates them).
    with_analog : bool
        Also run the analog golden sweep for the ``fig5`` / ``fig6``
        / ``fig8`` comparisons (slower).
    transitions : int, optional
        ``fig7`` transitions per configuration (``None``: the
        experiment's default).
    repetitions : int, optional
        ``fig7`` random repetitions (``None``: the experiment's
        default).
    seed : int
        RNG seed for the randomized experiments.
    """

    kind: ClassVar[str] = "experiment"
    name: str = "fig4"
    with_analog: bool = False
    transitions: int | None = None
    repetitions: int | None = None
    seed: int = 0


@dataclasses.dataclass(frozen=True)
class StatsRequest(Request):
    """Statistical delay analysis (``repro stats``).

    One request kind for the three statistical methods of
    :mod:`repro.stats`: vectorized Monte-Carlo delay sampling
    (``"mc"``), the probabilistic-collocation surrogate
    (``"surrogate"``) and Monte-Carlo timing yield (``"yield"``).
    The parameter distribution is centered on the session's bound
    parameter set; the request carries only its shape.

    Parameters
    ----------
    method : str
        ``"mc"``, ``"surrogate"`` or ``"yield"``.
    gate : str
        ``"nor2"`` (block-kernel path), ``"nor3"`` or ``"nor4"``
        (``mc`` / ``surrogate``).
    direction : str
        ``"falling"`` or ``"rising"`` (``mc`` / ``surrogate``).
    deltas : tuple of float
        Input separations in seconds, one statistics row each
        (``mc`` / ``surrogate``).
    samples : int
        Monte-Carlo sample count; for ``surrogate`` the polynomial
        *resample* count behind percentiles/histograms (the model-
        evaluation cost is the fixed collocation design).
    seed : int
        Draw seed; identical seeds give byte-identical results
        across processes and engine backends.
    sigma : tuple of (str, float)
        Relative spread per varied parameter, e.g.
        ``(("r1", 0.1), ("co", 0.05))``; empty (default) varies all
        six R/C parameters at 5 %.
    distribution : str
        Marginal family, ``"lognormal"`` (default) or ``"normal"``.
    correlation : float
        Equicorrelation ``0 <= rho < 1`` between the varied
        parameters' underlying normals.
    vn_init : float
        Rising-direction internal-node voltage, volts.
    percentiles : tuple of float
        Reported percentile levels in percent.
    bins : int
        Histogram bin count per Δ (0 disables histograms).
    degree : int
        Total polynomial degree of the surrogate expansion, 1–5.
    circuit : str
        Built-in test circuit (``yield``).
    required : float, optional
        Endpoint requirement in seconds (``yield``).
    arrival_sigma : float
        Absolute σ of Gaussian input-arrival jitter, seconds
        (``yield``).
    per_instance : bool
        Draw an independent parameter sample per circuit instance
        (local/uncorrelated process variation) instead of one shared
        sample per corner (``yield``).
    """

    kind: ClassVar[str] = "stats"
    method: str = "mc"
    gate: str = "nor2"
    direction: str = "falling"
    deltas: tuple[float, ...] = (0.0,)
    samples: int = 1024
    seed: int = 0
    sigma: tuple[tuple[str, float], ...] = ()
    distribution: str = "lognormal"
    correlation: float = 0.0
    vn_init: float = 0.0
    percentiles: tuple[float, ...] = (1.0, 50.0, 99.0)
    bins: int = 0
    degree: int = 3
    circuit: str = "tree"
    required: float | None = None
    arrival_sigma: float = 0.0
    per_instance: bool = False


@dataclasses.dataclass(frozen=True)
class WireRequest(Request):
    """RC-interconnect reduction and validation (``repro wire``).

    Builds a parametric :class:`~repro.wire.WireTree` (a uniform
    line or a symmetric fanout), reduces it to analytic per-sink
    delay/slew models, sweeps the reduction across R/C corner scale
    factors, and optionally cross-validates the analytic model
    against a lowered transient SPICE simulation of the same tree.

    Parameters
    ----------
    topology : str
        ``"line"`` (default) or ``"fanout"``.
    stages : int
        Segments per line, or per fanout branch.
    branches : int
        Branch count (``fanout`` only).
    resistance : float
        Per-segment resistance, ohms.
    capacitance : float
        Per-segment capacitance to ground, farads.
    sink_load : float
        Extra lumped load at each sink, farads (e.g. the receiving
        gate's input capacitance).
    model : str
        Reduced-order model: ``"elmore"`` or ``"two_pole"``
        (default).
    corners : int
        R/C corner scale-factor grid size of the vectorized sweep
        (0 disables the sweep).
    seed : int
        Corner-sampling seed.
    validate : bool
        Also lower the tree to R/C devices and compare the analytic
        sink delays against transient SPICE crossings.
    """

    kind: ClassVar[str] = "wire"
    topology: str = "line"
    stages: int = 3
    branches: int = 2
    resistance: float = 2e3
    capacitance: float = 0.4e-15
    sink_load: float = 0.0
    model: str = "two_pole"
    corners: int = 0
    seed: int = 0
    validate: bool = False
