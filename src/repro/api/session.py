"""The session facade: one front door to every workload.

A :class:`Session` binds the things every layer used to re-plumb
through its own keyword arguments — the technology card, the delay
engine, the base electrical parameters, loaded gate libraries — and
serves every workload through one dispatch seam::

    from repro.api import Session, StaRequest
    session = Session(engine="vectorized")
    result = session.run(StaRequest(circuit="tree", corners=100))
    print(result.text)              # the human report
    payload = result.to_json()      # the machine envelope

Requests and results are plain serializable data
(:mod:`repro.api.requests` / :mod:`repro.api.results`), so the same
seam serves an HTTP service or a distributed dispatcher unchanged:
``session.run_json(envelope)`` accepts a serialized request and
returns the typed result.

Results are memoized per session, keyed by the (hashable) request —
repeating a request is a dictionary lookup.  The cache never expires
within a session; requests that read files (:class:`LibraryRequest`,
:class:`StaRequest` with a library) therefore see the file as it was
first read.  Use :meth:`Session.clear_cache` (or ``cache=False``)
when that matters.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any

from .. import cache as disk_cache
from ..obs import metrics as _metrics
from ..obs import trace as obs_trace
from ..core.parameters import PAPER_TABLE_I, NorGateParameters
from ..engine import DelayEngine, get_engine
from ..errors import ParameterError
from ..library import GateLibrary
from ..spice.technology import TechnologyCard
from .catalog import TECHNOLOGIES
from .handlers import HANDLERS
from .requests import Request
from .results import Result
from .serialization import from_json as _record_from_json

__all__ = ["Session"]


class Session:
    """Bound technology + engine + parameters, one ``run()`` seam.

    Parameters
    ----------
    tech : str or TechnologyCard, optional
        Technology card, by registry name (``"finfet15"`` /
        ``"bulk65"``) or as an instance (default ``"finfet15"``).
    engine : str or DelayEngine or None, optional
        Delay-evaluation backend, by registry name or as an
        instance; ``None`` picks the package default.  Resolution is
        lazy, so constructing a session is always cheap.
    parameters : NorGateParameters, optional
        Base 2-input electrical parameter set (default: the paper's
        Table I).
    cache : bool, optional
        Memoize per-request results, loaded libraries and lowered
        timing graphs within this session (default ``True``;
        ``False`` re-reads and re-builds on every call).
    cache_dir : str or Path, optional
        Root directory of the *persistent* cross-process cache (see
        :mod:`repro.cache`): eigendecompositions and characterized
        tables are stored there and shared with parallel workers and
        other processes.  ``None`` (default) leaves the process-wide
        setting alone — the ``REPRO_CACHE_DIR`` environment variable
        still applies.
    trace : str or Tracer, optional
        Enable span tracing process-wide (see
        :mod:`repro.obs.trace`): ``"jsonl:<path>"`` (or a bare path)
        appends finished spans to a JSONL file, ``"mem"`` records
        into the in-memory buffer only, and a
        :class:`~repro.obs.trace.Tracer` instance is used as-is.
        While tracing is on, freshly computed results carry a
        ``timings`` breakdown (span name -> seconds).  ``None``
        (default) leaves the process-wide setting alone — the
        ``REPRO_TRACE`` environment variable still applies.

    Raises
    ------
    ParameterError
        If *tech* names no registered technology card.
    """

    def __init__(self, tech: "str | TechnologyCard" = "finfet15",
                 engine: "str | DelayEngine | None" = None,
                 parameters: NorGateParameters | None = None,
                 cache: bool = True,
                 cache_dir: "str | None" = None,
                 trace: "str | obs_trace.Tracer | None" = None
                 ) -> None:
        if isinstance(tech, str):
            try:
                card = TECHNOLOGIES[tech]
            except KeyError:
                raise ParameterError(
                    f"unknown technology {tech!r}; available: "
                    f"{', '.join(sorted(TECHNOLOGIES))}") from None
            self._tech_name, self._tech = tech, card
        else:
            self._tech_name, self._tech = tech.name, tech
        self._engine_spec = engine
        self._engine: DelayEngine | None = None
        self._parameters = (PAPER_TABLE_I if parameters is None
                            else parameters)
        self._cache_enabled = bool(cache)
        if cache_dir is not None:
            disk_cache.configure(cache_dir)
        if trace is not None:
            obs_trace.configure(trace)
        self._results: dict[Request, Result] = {}
        self._libraries: dict[str, GateLibrary] = {}
        self._graphs: dict[str, Any] = {}
        self._hits = 0
        self._misses = 0
        # Pre-resolved registry instruments, keyed by (kind, outcome)
        # or kind, so the hot dispatch path skips the registry lookup.
        self._instruments: dict = {}

    # ------------------------------------------------------------------
    # bindings
    # ------------------------------------------------------------------

    @property
    def engine(self) -> DelayEngine:
        """The resolved delay backend (resolved once, then pinned).

        Raises
        ------
        ValueError
            If the session was built with an unknown engine name.
        """
        if self._engine is None:
            self._engine = get_engine(self._engine_spec)
        return self._engine

    @property
    def engine_name(self) -> str:
        """Registry name of the resolved backend."""
        return self.engine.name

    @property
    def technology(self) -> TechnologyCard:
        """The bound technology card."""
        return self._tech

    @property
    def tech_name(self) -> str:
        """Registry name of the bound technology card."""
        return self._tech_name

    @property
    def parameters(self) -> NorGateParameters:
        """The bound 2-input electrical parameter set."""
        return self._parameters

    def generalized(self, num_inputs: int):
        """The bound parameters widened to an n-input NOR.

        Parameters
        ----------
        num_inputs : int
            Gate width (>= 2).

        Returns
        -------
        GeneralizedNorParameters
            :func:`repro.core.multi_input.paper_generalized` of the
            session's base parameters.
        """
        from ..core.multi_input import paper_generalized
        return paper_generalized(num_inputs, self._parameters)

    def load_library(self, path: str) -> GateLibrary:
        """Load (and memoize) a characterized library JSON.

        Parameters
        ----------
        path : str
            A ``repro characterize`` output file.

        Raises
        ------
        ValueError
            With a one-line message if the file is missing or is not
            a gate-library payload.
        """
        key = str(path)
        if key in self._libraries:
            return self._libraries[key]
        try:
            library = GateLibrary.load(key)
        except FileNotFoundError:
            raise ValueError(f"no such file: {key}") from None
        except (ParameterError, json.JSONDecodeError) as error:
            raise ValueError(f"cannot read {key}: {error}") from None
        if self._cache_enabled:
            self._libraries[key] = library
        return library

    def timing_graph(self, circuit: str):
        """Lower (and memoize) a built-in STA circuit to its graph.

        Parameters
        ----------
        circuit : str
            A ``repro.sta.STA_CIRCUITS`` name.

        Returns
        -------
        TimingGraph
            The engine-backed graph, one instance per session per
            circuit name.
        """
        if circuit in self._graphs:
            return self._graphs[circuit]
        from ..sta import build_timing_graph, sta_circuit
        graph = build_timing_graph(
            sta_circuit(circuit, self._parameters),
            engine=self.engine)
        if self._cache_enabled:
            self._graphs[circuit] = graph
        return graph

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _requests_total(self, kind: str, outcome: str):
        key = (kind, outcome)
        counter = self._instruments.get(key)
        if counter is None:
            counter = _metrics.registry().counter(
                "repro_session_requests_total",
                "session.run dispatches by request kind and memo "
                "outcome",
                labels={"kind": kind, "outcome": outcome})
            self._instruments[key] = counter
        return counter

    def _run_seconds(self, kind: str):
        histogram = self._instruments.get(kind)
        if histogram is None:
            histogram = _metrics.registry().histogram(
                "repro_session_run_seconds",
                "handler wall time per request kind",
                labels={"kind": kind})
            self._instruments[kind] = histogram
        return histogram

    def run(self, request: Request) -> Result:
        """Dispatch a request to its handler; memoize the result.

        Parameters
        ----------
        request : Request
            Any :mod:`repro.api.requests` instance.

        Returns
        -------
        Result
            The matching typed result (cached on repeats when the
            session cache is enabled).  While tracing is enabled
            (see the *trace* parameter / ``REPRO_TRACE``), freshly
            computed results additionally carry a ``timings``
            breakdown: span name -> seconds summed over this
            request, ``session.run`` being the total.

        Raises
        ------
        ParameterError
            If *request* is not a known request type.
        """
        handler = HANDLERS.get(type(request))
        if handler is None:
            raise ParameterError(
                f"not a known request: {type(request).__name__}; "
                f"expected one of "
                f"{', '.join(sorted(c.__name__ for c in HANDLERS))}")
        kind = type(request).kind
        if self._cache_enabled and request in self._results:
            self._hits += 1
            self._requests_total(kind, "hit").inc()
            return self._results[request]
        self._misses += 1
        self._requests_total(kind, "miss").inc()
        tracer = obs_trace.active_tracer()
        if tracer is None:
            started = time.perf_counter()
            result = handler(self, request)
            self._run_seconds(kind).observe(
                time.perf_counter() - started)
            if self._cache_enabled:
                self._results[request] = result
            return result
        with tracer.capture() as captured:
            with tracer.span("session.run", kind=kind):
                result = handler(self, request)
        if self._cache_enabled:
            # Memoize the result *without* timings: a later cache
            # hit did not redo this work, so it must not replay the
            # first computation's breakdown.
            self._results[request] = result
        timings: dict[str, float] = {}
        for record in captured:
            timings[record["name"]] = (timings.get(record["name"],
                                                   0.0)
                                       + record["dur_s"])
        self._run_seconds(kind).observe(
            timings.get("session.run", 0.0))
        return dataclasses.replace(result, timings=timings)

    def run_json(self, payload: "str | dict[str, Any]") -> Result:
        """Decode a serialized request envelope and :meth:`run` it.

        Parameters
        ----------
        payload : str or dict
            A request envelope produced by ``request.to_json()`` (or
            an equivalent dict).

        Raises
        ------
        ParameterError
            If the payload is malformed, carries a foreign schema
            version, or decodes to a result type.
        """
        record = _record_from_json(payload)
        if not isinstance(record, Request):
            raise ParameterError(
                f"payload kind {type(record).kind!r} is a result, "
                "not a request")
        return self.run(record)

    # ------------------------------------------------------------------
    # cache control
    # ------------------------------------------------------------------

    def clear_cache(self) -> None:
        """Drop every memoized result, library and timing graph."""
        self._results.clear()
        self._libraries.clear()
        self._graphs.clear()
        self._hits = 0
        self._misses = 0

    def cache_info(self) -> dict:
        """Cache counters: ``{"hits", "misses", "size"}``.

        When the persistent cross-process cache is active (see
        :mod:`repro.cache`), a ``"disk"`` entry is added with its
        location and process-wide counters: ``{"dir", "hits",
        "misses", "writes", "entries"}``.
        """
        info: dict = {"hits": self._hits, "misses": self._misses,
                      "size": len(self._results)}
        store = disk_cache.get_store()
        if store is not None:
            info["disk"] = store.info()
        return info

    def __repr__(self) -> str:
        """Compact binding summary (engine shown unresolved-lazy)."""
        engine = (self._engine.name if self._engine is not None
                  else repr(self._engine_spec))
        return (f"Session(tech={self._tech_name!r}, engine={engine}, "
                f"cached={len(self._results)})")
