"""JSON envelope and type-driven (de)serialization for the API types.

Every request and result of :mod:`repro.api` serializes to the same
strict-JSON envelope::

    {"schema": "repro.api/1", "kind": "sta", "data": {...}}

* ``schema`` carries the API schema version; :func:`check_schema`
  rejects payloads from a different major version with a one-line
  :class:`~repro.errors.ParameterError`.
* ``kind`` names the concrete request/result type (each class declares
  its own), so :func:`from_json` can dispatch without the caller
  knowing the type up front.
* ``data`` holds the dataclass fields.  Encoding is type-driven off
  the dataclass annotations: tuples become JSON arrays and are coerced
  *back* to tuples on decode, non-finite floats are stored as the
  strings ``"Infinity"`` / ``"-Infinity"`` / ``"NaN"`` (strict JSON
  has no literal for them) and restored on decode, ``None`` maps to
  ``null``.

The round-trip contract — ``from_json(to_json(x)) == x`` for every
request and result type — is enforced property-based in
``tests/api/test_roundtrip.py``.
"""

from __future__ import annotations

import dataclasses
import json
import math
import types
import typing
from typing import Any, ClassVar

from ..errors import ParameterError

__all__ = [
    "API_SCHEMA",
    "API_SCHEMA_VERSION",
    "ApiRecord",
    "check_schema",
    "from_json",
    "known_kinds",
]

#: Family name of the request/response schema.
API_SCHEMA = "repro.api"

#: Major version of the request/response schema.  Bump on an
#: incompatible change of any request or result shape.
API_SCHEMA_VERSION = 1

#: Spelling of non-finite floats inside the strict-JSON payload.
_NONFINITE = {"Infinity": math.inf, "-Infinity": -math.inf,
              "NaN": math.nan}

#: kind -> concrete record class, populated by ``__init_subclass__``.
_KINDS: dict[str, type["ApiRecord"]] = {}


def _schema_tag() -> str:
    return f"{API_SCHEMA}/{API_SCHEMA_VERSION}"


def check_schema(payload: dict) -> None:
    """Validate the envelope's ``schema`` field.

    Parameters
    ----------
    payload : dict
        A decoded envelope (must carry ``schema``).

    Raises
    ------
    ParameterError
        If the schema family or major version does not match this
        build's :data:`API_SCHEMA` / :data:`API_SCHEMA_VERSION`.
    """
    tag = payload.get("schema")
    if not isinstance(tag, str) or "/" not in tag:
        raise ParameterError(
            f"not a {API_SCHEMA} payload (schema={tag!r})")
    family, _, version = tag.partition("/")
    if family != API_SCHEMA:
        raise ParameterError(
            f"not a {API_SCHEMA} payload (schema={tag!r})")
    if version != str(API_SCHEMA_VERSION):
        raise ParameterError(
            f"unsupported {API_SCHEMA} schema version {version!r} "
            f"(this build speaks version {API_SCHEMA_VERSION})")


def _encode(value: Any) -> Any:
    """Lower a field value to strict-JSON-safe plain data."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        if math.isnan(value):
            return "NaN"
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _encode(item)
                for key, item in value.items()}
    raise ParameterError(
        f"cannot serialize field value of type {type(value).__name__}")


def _decode(value: Any, annotation: Any) -> Any:
    """Coerce decoded JSON back to the annotated field type."""
    origin = typing.get_origin(annotation)
    if annotation is Any:
        return value
    if origin in (typing.Union, types.UnionType):
        arms = typing.get_args(annotation)
        if value is None and type(None) in arms:
            return None
        for arm in arms:
            if arm is type(None):
                continue
            try:
                return _decode(value, arm)
            except (ParameterError, TypeError, ValueError):
                continue
        raise ParameterError(
            f"value {value!r} fits no arm of {annotation}")
    if annotation is float:
        if isinstance(value, str):
            try:
                return _NONFINITE[value]
            except KeyError:
                raise ParameterError(
                    f"not a float spelling: {value!r}") from None
        if isinstance(value, bool) or not isinstance(value,
                                                     (int, float)):
            raise ParameterError(f"expected a number, got {value!r}")
        return float(value)
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ParameterError(f"expected an int, got {value!r}")
        return value
    if annotation is bool:
        if not isinstance(value, bool):
            raise ParameterError(f"expected a bool, got {value!r}")
        return value
    if annotation is str:
        if not isinstance(value, str):
            raise ParameterError(f"expected a string, got {value!r}")
        return value
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise ParameterError(f"expected an array, got {value!r}")
        args = typing.get_args(annotation)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode(item, args[0]) for item in value)
        if len(args) != len(value):
            raise ParameterError(
                f"expected {len(args)} entries, got {len(value)}")
        return tuple(_decode(item, arm)
                     for item, arm in zip(value, args))
    if origin is dict:
        if not isinstance(value, dict):
            raise ParameterError(f"expected an object, got {value!r}")
        _, value_arm = typing.get_args(annotation)
        return {str(key): _decode(item, value_arm)
                for key, item in value.items()}
    raise ParameterError(
        f"unsupported field annotation {annotation!r}")


class ApiRecord:
    """Base class of every serializable request/result dataclass.

    Subclasses are frozen dataclasses that declare a unique class-level
    ``kind`` string; declaring it registers the class so
    :func:`from_json` can round-trip arbitrary envelopes.
    """

    #: Envelope tag of the concrete record type.
    kind: ClassVar[str] = ""

    #: Field names to drop from the envelope when their value is
    #: ``None`` (instead of serializing ``null``) — how optional
    #: late additions like ``Result.timings`` stay schema-compatible.
    _omit_none: ClassVar[frozenset] = frozenset()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        """Register the subclass's ``kind`` in the dispatch table."""
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("kind", "")
        if kind:
            _KINDS[kind] = cls

    def to_dict(self) -> dict[str, Any]:
        """The strict-JSON envelope as a plain dict."""
        data = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value is None and field.name in self._omit_none:
                continue
            data[field.name] = _encode(value)
        return {"schema": _schema_tag(), "kind": type(self).kind,
                "data": data}

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a strict-JSON string (no NaN/Infinity literals).

        Parameters
        ----------
        indent : int, optional
            Pretty-print indentation; compact when ``None``.
        """
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True, allow_nan=False)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ApiRecord":
        """Rebuild an instance from an envelope dict.

        Raises
        ------
        ParameterError
            On schema mismatch, a foreign ``kind``, unknown fields,
            or field values that do not fit their annotations.
        """
        check_schema(payload)
        kind = payload.get("kind")
        if cls is not ApiRecord and kind != cls.kind:
            raise ParameterError(
                f"expected a {cls.kind!r} payload, got {kind!r}")
        target = cls if cls is not ApiRecord else _KINDS.get(kind)
        if target is None:
            raise ParameterError(
                f"unknown payload kind {kind!r}; known kinds: "
                f"{', '.join(known_kinds())}")
        data = payload.get("data")
        if not isinstance(data, dict):
            raise ParameterError("envelope has no 'data' object")
        hints = typing.get_type_hints(target)
        fields = {field.name: field
                  for field in dataclasses.fields(target)}
        unknown = set(data) - set(fields)
        if unknown:
            raise ParameterError(
                f"unknown field(s) for {kind!r}: {sorted(unknown)}")
        kwargs = {name: _decode(value, hints[name])
                  for name, value in data.items()}
        return target(**kwargs)

    @classmethod
    def from_json(cls, payload: "str | dict[str, Any]") -> "ApiRecord":
        """Inverse of :meth:`to_json`; also accepts an envelope dict.

        Raises
        ------
        ParameterError
            If the text is not JSON, or :meth:`from_dict` rejects the
            envelope.
        """
        if isinstance(payload, str):
            try:
                payload = json.loads(payload)
            except json.JSONDecodeError as error:
                raise ParameterError(
                    f"not a JSON payload: {error}") from None
        if not isinstance(payload, dict):
            raise ParameterError("payload must be a JSON object")
        return cls.from_dict(payload)


def from_json(payload: "str | dict[str, Any]") -> ApiRecord:
    """Decode any known request/result envelope by its ``kind``.

    Parameters
    ----------
    payload : str or dict
        JSON text or an already-decoded envelope dict.

    Returns
    -------
    ApiRecord
        The concrete request/result instance.

    Raises
    ------
    ParameterError
        On malformed JSON, schema mismatch, or an unknown ``kind``.
    """
    return ApiRecord.from_json(payload)


def known_kinds() -> tuple[str, ...]:
    """Sorted ``kind`` tags of every registered request/result type."""
    return tuple(sorted(_KINDS))
