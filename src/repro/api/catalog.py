"""The capability catalog shared by the session and the CLI.

One place for the name -> description tables and name -> object
registries the front ends render: experiment descriptions, workflow
descriptions, technology cards and gate-width choices.  The CLI builds
its parsers from these, the :class:`~repro.api.Session` dispatcher
validates against them — so the two can never drift apart.
"""

from __future__ import annotations

from ..spice.technology import BULK65, FINFET15, TechnologyCard

__all__ = [
    "EXPERIMENT_DESCRIPTIONS",
    "GATE_CHOICES",
    "TECHNOLOGIES",
    "WORKFLOW_DESCRIPTIONS",
    "experiment_names",
]

#: Technology cards selectable by name (the CLI's ``--tech``).
TECHNOLOGIES: dict[str, TechnologyCard] = {
    "finfet15": FINFET15,
    "bulk65": BULK65,
}

#: Experiment name -> one-line description (``repro list``).
EXPERIMENT_DESCRIPTIONS: dict[str, str] = {
    "fig2": "analog MIS characterization (delay vs input separation)",
    "fig4": "mode-system trajectories",
    "fig5": "model vs analog falling MIS delays",
    "fig6": "model rising MIS delays for VN in {GND, VDD/2, VDD}",
    "fig7": "normalized deviation areas on random traces",
    "fig8": "falling matching with/without the pure delay",
    "table1": "least-squares parametrization (Table I)",
    "analytic": "eqs. (8)-(12) vs exact crossings",
    "engines": "delay-engine backends: parity and sweep throughput",
    "library": "batch library characterization accuracy",
    "multi_input": "n-input NOR generalization: Δ-vector batch vs "
                   "scalar, n=2 reduction",
    "runtime": "digital-simulation runtime comparison",
    "faithfulness": "short-pulse filtration probe",
}

#: Workflow command name -> one-line description (``repro list``).
WORKFLOW_DESCRIPTIONS: dict[str, str] = {
    "characterize": "characterize a gate library into a JSON file",
    "library": "inspect / verify a characterized library JSON "
               "(with a path)",
    "sta": "MIS-aware static timing analysis (report, corner "
           "sweeps, cross-validation)",
    "stats": "statistical delay: vectorized Monte-Carlo, "
             "collocation surrogate, timing yield",
    "delay": "evaluate MIS delays at explicit input separations",
    "wire": "reduce an RC wire tree to analytic delays (corner "
            "sweeps, SPICE cross-validation)",
    "serve": "run the HTTP delay service (POST /v1/run + async "
             "batch jobs)",
    "metrics": "print Prometheus metrics (in-process, or scraped "
               "from a running server with --url)",
    "version": "print the package version",
}

#: Gate widths ``characterize`` / ``delay`` / ``multi_input`` accept
#: (the n-input flow covers NOR3/NOR4; ``nor2`` is the paper's
#: closed-form cell).
GATE_CHOICES = ("nor2", "nor3", "nor4")


def experiment_names() -> tuple[str, ...]:
    """Names :class:`~repro.api.ExperimentRequest` (and the CLI
    experiment subcommands) accept, in listing order."""
    return tuple(EXPERIMENT_DESCRIPTIONS)
