"""Unified session API: typed requests, one dispatch seam.

The front door of the package.  Every workload the layers below serve
— delay evaluation (:mod:`repro.core` / :mod:`repro.engine`), library
characterization (:mod:`repro.library`), static timing analysis
(:mod:`repro.sta`) and the paper's reproduction experiments
(:mod:`repro.analysis`) — is reachable through one seam::

    from repro.api import Session, DelayRequest, StaRequest

    session = Session(tech="finfet15", engine="vectorized")
    sta = session.run(StaRequest(circuit="tree", corners=100))
    print(sta.text)                    # human report
    envelope = sta.to_json()           # machine envelope

Three properties make the seam production-shaped:

* **Typed and serializable** — every request and result is a frozen
  dataclass that round-trips through a schema-versioned strict-JSON
  envelope (``to_json`` / ``from_json``); ``session.run_json`` accepts
  a serialized request directly, so an HTTP service or a distributed
  dispatcher plugs in without new glue.
* **One resolution point** — the session binds technology, engine and
  base parameters once; requests carry only workload data, so the
  same request replays against any binding.
* **Per-session memoization** — repeated requests are dictionary
  lookups (``benchmarks/bench_api.py`` records the cold-vs-warm
  dispatch numbers in ``BENCH_api.json``).

The CLI (:mod:`repro.cli`) is a thin adapter over this package: each
subcommand parses argv into one request, runs it, and renders
``result.text`` (or the JSON envelope with ``--json``).
"""

from .catalog import (EXPERIMENT_DESCRIPTIONS, GATE_CHOICES,
                      TECHNOLOGIES, WORKFLOW_DESCRIPTIONS,
                      experiment_names)
from .requests import (CharacterizeRequest, DelayRequest,
                       DescribeRequest, ExperimentRequest,
                       LibraryRequest, MultiInputRequest, Request,
                       StaRequest, StatsRequest, SweepRequest,
                       VersionRequest, WireRequest)
from .results import (CharacterizeResult, DelayResult, DescribeResult,
                      ErrorResult, ExperimentResult,
                      LibraryInspectResult, MultiInputResult, Result,
                      StaRunResult, StatsResult, SweepResult,
                      VersionResult, WireResult)
from .serialization import (API_SCHEMA, API_SCHEMA_VERSION, ApiRecord,
                            check_schema, from_json, known_kinds)
from .session import Session

__all__ = [
    "API_SCHEMA",
    "API_SCHEMA_VERSION",
    "ApiRecord",
    "CharacterizeRequest",
    "CharacterizeResult",
    "DelayRequest",
    "DelayResult",
    "DescribeRequest",
    "DescribeResult",
    "EXPERIMENT_DESCRIPTIONS",
    "ErrorResult",
    "ExperimentRequest",
    "ExperimentResult",
    "GATE_CHOICES",
    "LibraryInspectResult",
    "LibraryRequest",
    "MultiInputRequest",
    "MultiInputResult",
    "Request",
    "Result",
    "Session",
    "StaRequest",
    "StaRunResult",
    "StatsRequest",
    "StatsResult",
    "SweepRequest",
    "SweepResult",
    "TECHNOLOGIES",
    "VersionRequest",
    "VersionResult",
    "WORKFLOW_DESCRIPTIONS",
    "WireRequest",
    "WireResult",
    "check_schema",
    "experiment_names",
    "from_json",
    "known_kinds",
]
