"""The paper's primary contribution: the hybrid ODE NOR-gate delay model.

Public surface:

* :class:`~repro.core.parameters.NorGateParameters` and the paper's
  Table I values :data:`~repro.core.parameters.PAPER_TABLE_I`;
* :class:`~repro.core.hybrid_model.HybridNorModel` — MIS delays;
* :mod:`~repro.core.analytic` — paper eqs. (8)–(12);
* :func:`~repro.core.parametrization.fit_nor_parameters` — Table I fit;
* :class:`~repro.core.charlie.CharacteristicDelays` /
  :class:`~repro.core.charlie.MisCurve` — Charlie-effect containers.
"""

from .charlie import CharacteristicDelays, MisCurve
from .duality import HybridNandModel
from .hybrid_model import DelayComputation, HybridNorModel
from .modes import Mode, mode_system
from .multi_input import (GeneralizedNorModel,
                          GeneralizedNorParameters,
                          generalized_model, paper_generalized,
                          sibling_offsets)
from .parameters import PAPER_DELTA_MIN, PAPER_TABLE_I, NorGateParameters
from .parametrization import (
    CharacteristicTargets,
    FitResult,
    falling_feasible_without_pure_delay,
    fit_nor_parameters,
    infer_delta_min,
)
from .solutions import ModeSolution, solve_mode
from .trajectory import PiecewiseTrajectory

__all__ = [
    "CharacteristicDelays",
    "CharacteristicTargets",
    "DelayComputation",
    "FitResult",
    "GeneralizedNorModel",
    "GeneralizedNorParameters",
    "generalized_model",
    "paper_generalized",
    "sibling_offsets",
    "HybridNandModel",
    "HybridNorModel",
    "MisCurve",
    "Mode",
    "ModeSolution",
    "NorGateParameters",
    "PAPER_DELTA_MIN",
    "PAPER_TABLE_I",
    "PiecewiseTrajectory",
    "falling_feasible_without_pure_delay",
    "fit_nor_parameters",
    "infer_delta_min",
    "mode_system",
    "solve_mode",
]
