"""The four ODE modes of the hybrid NOR model (paper Section III).

For each input state ``(A, B)`` the NOR gate's RC abstraction yields a
first-order linear ODE system with constant coefficients

.. math::  V'(t) = A \\cdot V(t) + g, \\qquad V = (V_N, V_O)^T

where :math:`V_N` is the voltage of the internal node between the two
series pMOS transistors and :math:`V_O` the output voltage.

This module builds the system matrices, their eigen-decompositions in the
exact closed forms of the paper's equations (1)–(7), and the equilibria.
The actual trajectory evaluation lives in :mod:`repro.core.solutions`.

Mode conventions
----------------
A mode is identified by the *logical* input pair ``(a, b)``; ``a = 1``
means input A is above ``Vth``.  The resulting switch states are

* nMOS T3 conducting iff ``a == 1``; nMOS T4 conducting iff ``b == 1``;
* pMOS T1 conducting iff ``a == 0``; pMOS T2 conducting iff ``b == 0``.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import math

import numpy as np

from ..errors import ParameterError
from .parameters import NorGateParameters

__all__ = [
    "Mode",
    "EigenPair",
    "CoupledModeConstants",
    "ModeSystem",
    "mode_system",
    "mode_10_constants",
    "mode_00_constants",
    "all_mode_systems",
]


class Mode(enum.Enum):
    """Input state ``(A, B)`` of the NOR gate, each 0 or 1."""

    BOTH_LOW = (0, 0)
    A_LOW_B_HIGH = (0, 1)
    A_HIGH_B_LOW = (1, 0)
    BOTH_HIGH = (1, 1)

    @classmethod
    def from_inputs(cls, a: int, b: int) -> "Mode":
        """Return the mode for logical input values ``a`` and ``b``."""
        try:
            return cls((int(bool(a)), int(bool(b))))
        except ValueError as exc:  # pragma: no cover - defensive
            raise ParameterError(f"invalid input state ({a}, {b})") from exc

    @property
    def a(self) -> int:
        """Logical value of input A in this mode."""
        return self.value[0]

    @property
    def b(self) -> int:
        """Logical value of input B in this mode."""
        return self.value[1]

    @property
    def nor_output(self) -> int:
        """Steady-state logical NOR output for this input state."""
        return int(not (self.a or self.b))

    def with_a(self, a: int) -> "Mode":
        """Return the mode reached when input A switches to ``a``."""
        return Mode.from_inputs(a, self.b)

    def with_b(self, b: int) -> "Mode":
        """Return the mode reached when input B switches to ``b``."""
        return Mode.from_inputs(self.a, b)

    def __str__(self) -> str:
        return f"({self.a}, {self.b})"


@dataclasses.dataclass(frozen=True)
class EigenPair:
    """One eigenvalue and its (unnormalized) eigenvector."""

    eigenvalue: float
    eigenvector: tuple[float, float]


@dataclasses.dataclass(frozen=True)
class CoupledModeConstants:
    """The closed-form constants α, β, γ, λ₁, λ₂ of a coupled mode.

    These are exactly the quantities of the paper's equations (1)–(3)
    (mode ``(1, 0)``) and (4)–(7) (mode ``(0, 0)``).  The eigenvectors are
    ``(1/(CN*R2), α + β)`` for λ₁ and ``(1/(CN*R2), α − β)`` for λ₂.
    """

    alpha: float
    beta: float
    gamma: float
    lambda1: float
    lambda2: float
    #: first eigenvector component, ``1 / (CN * R2)``.
    vn_component: float

    @property
    def eigenpairs(self) -> tuple[EigenPair, EigenPair]:
        """Both eigen-pairs, λ₁ (slow/fast per sign of β) first."""
        return (
            EigenPair(self.lambda1,
                      (self.vn_component, self.alpha + self.beta)),
            EigenPair(self.lambda2,
                      (self.vn_component, self.alpha - self.beta)),
        )


@functools.lru_cache(maxsize=256)
def mode_10_constants(params: NorGateParameters) -> CoupledModeConstants:
    """Constants of mode ``(1, 0)`` — paper equations (1), (2), (3).

    In mode (1,0) the pMOS T2 connects N to O and the nMOS T3 drains O, so
    both capacitances discharge through the shared resistor R3.
    """
    r2, r3 = params.r2, params.r3
    cn, co = params.cn, params.co
    denom = 2.0 * co * cn * r2 * r3
    alpha = (co * r3 - cn * (r2 + r3)) / denom
    radicand = (co * r3 + cn * (r2 + r3)) ** 2 - 4.0 * co * cn * r2 * r3
    if radicand < 0.0:  # pragma: no cover - mathematically impossible
        raise ParameterError("mode (1,0) discriminant is negative")
    beta = math.sqrt(radicand) / denom
    gamma = -(co * r3 + cn * (r2 + r3)) / denom
    return CoupledModeConstants(
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        lambda1=gamma + beta,
        lambda2=gamma - beta,
        vn_component=1.0 / (cn * r2),
    )


@functools.lru_cache(maxsize=256)
def mode_00_constants(params: NorGateParameters) -> CoupledModeConstants:
    """Constants of mode ``(0, 0)`` — paper equations (4), (5), (6), (7).

    In mode (0,0) both pMOS conduct: N charges from VDD through R1 and O
    charges from N through R2.
    """
    r1, r2 = params.r1, params.r2
    cn, co = params.cn, params.co
    denom = 2.0 * co * cn * r1 * r2
    alpha = (co * (r1 + r2) - cn * r1) / denom
    radicand = (cn * r1 + co * (r1 + r2)) ** 2 - 4.0 * co * cn * r1 * r2
    if radicand < 0.0:  # pragma: no cover - mathematically impossible
        raise ParameterError("mode (0,0) discriminant is negative")
    beta = math.sqrt(radicand) / denom
    gamma = -(cn * r1 + co * (r1 + r2)) / denom
    return CoupledModeConstants(
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        lambda1=gamma + beta,
        lambda2=gamma - beta,
        vn_component=1.0 / (cn * r2),
    )


@dataclasses.dataclass(frozen=True)
class ModeSystem:
    """One mode's linear system ``V' = A V + g`` plus derived data."""

    mode: Mode
    matrix: np.ndarray
    forcing: np.ndarray
    equilibrium: np.ndarray
    constants: CoupledModeConstants | None

    def derivative(self, state: np.ndarray) -> np.ndarray:
        """Evaluate ``V' = A V + g`` at the given state."""
        return self.matrix @ np.asarray(state, dtype=float) + self.forcing


def mode_system(mode: Mode, params: NorGateParameters) -> ModeSystem:
    """Build the ODE system of *mode* for the given parameters.

    The four systems correspond to the paper's Sections III-B through
    III-E and Fig. 3:

    * ``(1, 1)``: both nMOS drain O in parallel; N is isolated.
    * ``(1, 0)``: T2 couples N to O; both discharge through R3.
    * ``(0, 1)``: N charges from VDD through R1; O drains through R4.
    * ``(0, 0)``: N and O charge from VDD through R1 (and R2).
    """
    r1, r2, r3, r4 = params.r1, params.r2, params.r3, params.r4
    cn, co = params.cn, params.co
    vdd = params.vdd

    if mode is Mode.BOTH_HIGH:  # (1, 1) -- paper Section III-B
        matrix = np.array([
            [0.0, 0.0],
            [0.0, -(1.0 / (co * r3) + 1.0 / (co * r4))],
        ])
        forcing = np.zeros(2)
        # VN keeps its value; equilibrium VN is state-dependent, we record
        # the VO equilibrium only (VN entry is NaN on purpose).
        equilibrium = np.array([math.nan, 0.0])
        constants = None
    elif mode is Mode.A_HIGH_B_LOW:  # (1, 0) -- paper Section III-C
        matrix = np.array([
            [-1.0 / (cn * r2), 1.0 / (cn * r2)],
            [1.0 / (co * r2), -(1.0 / (co * r2) + 1.0 / (co * r3))],
        ])
        forcing = np.zeros(2)
        equilibrium = np.zeros(2)
        constants = mode_10_constants(params)
    elif mode is Mode.A_LOW_B_HIGH:  # (0, 1) -- paper Section III-D
        matrix = np.array([
            [-1.0 / (cn * r1), 0.0],
            [0.0, -1.0 / (co * r4)],
        ])
        forcing = np.array([vdd / (cn * r1), 0.0])
        equilibrium = np.array([vdd, 0.0])
        constants = None
    elif mode is Mode.BOTH_LOW:  # (0, 0) -- paper Section III-E
        matrix = np.array([
            [-(1.0 / (cn * r1) + 1.0 / (cn * r2)), 1.0 / (cn * r2)],
            [1.0 / (co * r2), -1.0 / (co * r2)],
        ])
        forcing = np.array([vdd / (cn * r1), 0.0])
        equilibrium = np.array([vdd, vdd])
        constants = mode_00_constants(params)
    else:  # pragma: no cover - exhaustive enum
        raise ParameterError(f"unknown mode {mode!r}")

    return ModeSystem(mode=mode, matrix=matrix, forcing=forcing,
                      equilibrium=equilibrium, constants=constants)


def all_mode_systems(params: NorGateParameters) -> dict[Mode, ModeSystem]:
    """Build the systems of all four modes."""
    return {mode: mode_system(mode, params) for mode in Mode}
