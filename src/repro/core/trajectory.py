"""Piecewise-mode trajectories and threshold-crossing extraction.

A hybrid-model run is a sequence of modes: the gate starts in some mode at
``t = 0`` and switches modes at the (possibly ``delta_min``-deferred) input
threshold-crossing times, carrying the continuous state ``(V_N, V_O)``
across each switch.  :class:`PiecewiseTrajectory` stores the closed-form
solution of every segment and can locate output threshold crossings
exactly.

The crossing finder exploits the structure of the per-mode solutions: a
voltage is always ``K0 + K1 e^{λ1 t} + K2 e^{λ2 t}``, whose derivative has
at most one zero, so each segment consists of at most two monotone pieces.
Single-exponential segments are inverted with a logarithm; two-exponential
segments are bracketed per monotone piece and solved with Brent's method.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Sequence

import numpy as np
from scipy.optimize import brentq

from ..errors import NoCrossingError, ParameterError
from .modes import Mode
from .parameters import NorGateParameters
from .solutions import ExpSum, ModeSolution, solve_mode

__all__ = [
    "first_crossing",
    "all_crossings",
    "Crossing",
    "Segment",
    "PiecewiseTrajectory",
]

#: Relative time tolerance for root polishing (dimensionless).
_REL_TOL = 1e-13
#: Absolute time tolerance in seconds (well below femtosecond resolution).
_ABS_TOL = 1e-24


def _stationary_point(expsum: ExpSum) -> float | None:
    """Return the unique zero of ``expsum``'s derivative, if any.

    For ``f'(t) = K1 λ1 e^{λ1 t} + K2 λ2 e^{λ2 t}`` the zero satisfies
    ``e^{(λ1-λ2) t} = -K2 λ2 / (K1 λ1)``.
    """
    if len(expsum.coeffs) < 2:
        return None
    (k1, k2) = expsum.coeffs
    (l1, l2) = expsum.rates
    if k1 * l1 == 0.0 or l1 == l2:
        return None
    ratio = -(k2 * l2) / (k1 * l1)
    if ratio <= 0.0:
        return None
    return math.log(ratio) / (l1 - l2)


def _monotone_crossing(expsum: ExpSum, threshold: float,
                       t_lo: float, t_hi: float) -> float | None:
    """First crossing on a *monotone* piece ``[t_lo, t_hi]`` (or None)."""
    f_lo = expsum(t_lo) - threshold
    f_hi = expsum(t_hi) - threshold
    if f_lo == 0.0:
        return t_lo
    if f_hi == 0.0:
        return t_hi
    if f_lo * f_hi > 0.0:
        return None
    span = max(abs(t_lo), abs(t_hi), 1e-15)
    root = brentq(lambda t: expsum(t) - threshold, t_lo, t_hi,
                  xtol=max(_ABS_TOL, span * _REL_TOL), rtol=8.9e-16)
    return float(root)


def _bracket_infinity(expsum: ExpSum, threshold: float,
                      t_lo: float) -> float | None:
    """Find a finite right bracket for a crossing on ``[t_lo, inf)``.

    Assumes all rates are negative (decaying exponentials), so the value
    converges to ``expsum.limit``.  Returns ``None`` if the limit is on
    the same side of the threshold as ``expsum(t_lo)``.
    """
    limit = expsum.limit
    f_lo = expsum(t_lo) - threshold
    f_limit = limit - threshold
    if f_lo == 0.0:
        return t_lo
    if f_lo * f_limit >= 0.0:
        # No sign change towards infinity on a monotone piece.
        return None
    slowest = expsum.slowest_rate
    if slowest == 0.0:  # pragma: no cover - constant cannot sign-change
        return None
    # Start from a couple of slowest time constants and expand.
    step = 2.0 / abs(slowest)
    t_hi = t_lo + step
    for _ in range(200):
        if (expsum(t_hi) - threshold) * f_lo <= 0.0:
            return t_hi
        t_hi += step
        step *= 1.5
    raise NoCrossingError(  # pragma: no cover - defensive
        "failed to bracket a crossing that the limit analysis promised")


def all_crossings(expsum: ExpSum, threshold: float,
                  t_lo: float = 0.0,
                  t_hi: float | None = None) -> list[float]:
    """All threshold crossings of an :class:`ExpSum` on ``[t_lo, t_hi]``.

    ``t_hi = None`` means "until the function has settled" (valid only
    when all rates are negative).  The result is sorted ascending and has
    at most two entries, by the monotonicity structure of two-exponential
    sums.
    """
    if t_hi is not None and t_hi < t_lo:
        raise ParameterError("t_hi must be >= t_lo")
    if not expsum.coeffs:
        return []

    pieces: list[tuple[float, float | None]] = []
    stationary = _stationary_point(expsum)
    if stationary is not None and stationary > t_lo and (
            t_hi is None or stationary < t_hi):
        pieces.append((t_lo, stationary))
        pieces.append((stationary, t_hi))
    else:
        pieces.append((t_lo, t_hi))

    found: list[float] = []
    for lo, hi in pieces:
        if hi is None:
            hi = _bracket_infinity(expsum, threshold, lo)
            if hi is None:
                continue
            if hi == lo:
                found.append(lo)
                continue
        root = _monotone_crossing(expsum, threshold, lo, hi)
        if root is not None:
            if not found or not math.isclose(root, found[-1],
                                             rel_tol=1e-9, abs_tol=1e-21):
                found.append(root)
    return found


def first_crossing(expsum: ExpSum, threshold: float,
                   t_lo: float = 0.0,
                   t_hi: float | None = None) -> float | None:
    """First threshold crossing on ``[t_lo, t_hi]``, or ``None``.

    For the common single-exponential case the crossing is computed with
    an exact logarithm.
    """
    if len(expsum.coeffs) == 1:
        k0, (k1,), (rate,) = expsum.offset, expsum.coeffs, expsum.rates
        argument = (threshold - k0) / k1
        if argument <= 0.0:
            return None
        t = math.log(argument) / rate
        if t < t_lo - _ABS_TOL:
            return None
        t = max(t, t_lo)
        if t_hi is not None and t > t_hi:
            return None
        return t
    crossings = all_crossings(expsum, threshold, t_lo, t_hi)
    return crossings[0] if crossings else None


@dataclasses.dataclass(frozen=True)
class Crossing:
    """A threshold crossing of the output voltage."""

    time: float
    #: +1 if the voltage is increasing at the crossing, -1 if decreasing.
    direction: int


@dataclasses.dataclass(frozen=True)
class Segment:
    """One mode segment of a piecewise trajectory.

    ``solution`` is expressed in segment-local time; the segment covers
    global times ``[start, end)`` (``end = inf`` for the final segment).
    """

    start: float
    end: float
    solution: ModeSolution

    @property
    def mode(self) -> Mode:
        return self.solution.mode

    def local(self, t: float) -> float:
        """Convert a global time to segment-local time."""
        return t - self.start


class PiecewiseTrajectory:
    """The full hybrid trajectory across a sequence of mode switches.

    Parameters
    ----------
    params : NorGateParameters
        Electrical parameters of the gate (SI units).
    initial_mode : Mode
        Mode active at ``t = 0``.
    initial_state : tuple of float
        ``(V_N, V_O)`` in volts at ``t = 0``.
    switches : iterable of tuple, optional
        ``(time, mode)`` pairs, strictly increasing in time with all
        times ``>= 0`` seconds.  The continuous state is carried over
        at each switch.
    """

    def __init__(self, params: NorGateParameters, initial_mode: Mode,
                 initial_state: tuple[float, float],
                 switches: Iterable[tuple[float, Mode]] = ()):
        self.params = params
        switch_list = sorted(switches, key=lambda item: item[0])
        for time, _mode in switch_list:
            if time < 0.0:
                raise ParameterError("switch times must be non-negative")
        segments: list[Segment] = []
        mode = initial_mode
        state = (float(initial_state[0]), float(initial_state[1]))
        start = 0.0
        for time, next_mode in switch_list:
            if time == start and segments:
                raise ParameterError("duplicate switch time "
                                     f"{time!r}")
            solution = solve_mode(mode, params, *state)
            if time > start or not segments:
                segments.append(Segment(start, time, solution))
            state = solution.state_at(time - start)
            mode = next_mode
            start = time
        segments.append(Segment(start, math.inf,
                                solve_mode(mode, params, *state)))
        self.segments: tuple[Segment, ...] = tuple(segments)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _segment_at(self, t: float) -> Segment:
        if t < 0.0:
            raise ParameterError("trajectory is defined for t >= 0")
        for segment in self.segments:
            if t < segment.end:
                return segment
        return self.segments[-1]  # pragma: no cover - end == inf

    def state_at(self, t: float) -> tuple[float, float]:
        """Return ``(V_N(t), V_O(t))`` at global time ``t``."""
        segment = self._segment_at(t)
        return segment.solution.state_at(segment.local(t))

    def vo_at(self, t: float) -> float:
        """Output voltage at global time ``t``."""
        return self.state_at(t)[1]

    def vn_at(self, t: float) -> float:
        """Internal node voltage at global time ``t``."""
        return self.state_at(t)[0]

    def sample(self, times) -> np.ndarray:
        """Evaluate the trajectory on an array of times.

        Returns an array of shape ``(len(times), 2)`` with columns
        ``(V_N, V_O)``.
        """
        times = np.asarray(times, dtype=float)
        out = np.empty((times.size, 2))
        for i, t in enumerate(np.ravel(times)):
            out[i] = self.state_at(float(t))
        return out

    @property
    def final_mode(self) -> Mode:
        """Mode of the last (open-ended) segment."""
        return self.segments[-1].mode

    # ------------------------------------------------------------------
    # Crossings
    # ------------------------------------------------------------------

    def output_crossings(self, threshold: float | None = None,
                         t_max: float | None = None) -> list[Crossing]:
        """All crossings of ``V_O`` through *threshold* (default Vth).

        The final open-ended segment is searched until settling.  A
        crossing exactly at a segment boundary is reported once.
        """
        if threshold is None:
            threshold = self.params.vth
        crossings: list[Crossing] = []
        for segment in self.segments:
            end = segment.end if math.isfinite(segment.end) else None
            if t_max is not None:
                if segment.start >= t_max:
                    break
                end = min(end, t_max) if end is not None else t_max
            local_end = None if end is None else segment.local(end)
            vo = segment.solution.vo
            for local_t in all_crossings(vo, threshold, 0.0, local_end):
                t = segment.start + local_t
                slope = vo.derivative()(local_t)
                direction = 1 if slope > 0 else -1
                if crossings and math.isclose(
                        crossings[-1].time, t, rel_tol=1e-9, abs_tol=1e-18):
                    continue
                crossings.append(Crossing(time=t, direction=direction))
        return crossings

    def first_output_crossing(self, threshold: float | None = None,
                              direction: int | None = None) -> float:
        """Time of the first output crossing (optionally of a direction).

        Raises:
            NoCrossingError: if the output never crosses the threshold.
        """
        for crossing in self.output_crossings(threshold):
            if direction is None or crossing.direction == direction:
                return crossing.time
        raise NoCrossingError(
            f"output never crosses {threshold if threshold is not None else self.params.vth} V"
            + (f" in direction {direction:+d}" if direction else ""))


def trajectory_from_modes(params: NorGateParameters,
                          modes: Sequence[Mode],
                          switch_times: Sequence[float],
                          initial_state: tuple[float, float]
                          ) -> PiecewiseTrajectory:
    """Convenience constructor: ``modes[0]`` from 0, then switches.

    ``switch_times[i]`` is when ``modes[i + 1]`` becomes active.
    """
    if len(modes) != len(switch_times) + 1:
        raise ParameterError("need exactly one more mode than switch time")
    return PiecewiseTrajectory(
        params, modes[0], initial_state,
        list(zip(switch_times, modes[1:])))
