"""Parametrization of the hybrid model (paper Section V).

Given the six characteristic Charlie delays of a real gate —
``δ↓(−∞), δ↓(0), δ↓(∞)`` for falling and ``δ↑(−∞), δ↑(0), δ↑(∞)`` for
rising output transitions — find resistances ``R1..R4`` and capacitances
``C_N, C_O`` such that the hybrid model reproduces them.

The paper's central observation: because the two nMOS drain the output in
parallel, the model forces

.. math:: \\frac{δ↓(−∞) − δ_{min}}{δ↓(0) − δ_{min}} = \\frac{R3+R4}{R3}
          \\approx 2

(for the physically required ``R3 ≈ R4``), while real gates exhibit a
much smaller ratio (≈ 38 ps / 28 ps in the paper's 15 nm NOR).  The fix
is a *pure delay* ``δ_min`` subtracted from all characteristic values
before fitting.  Requiring the effective ratio to be exactly 2 yields

.. math:: δ_{min} = 2 δ↓(0) − δ↓(−∞)

which for the paper's measurements gives ``2·28 − 38 = 18 ps`` — exactly
the value the paper reports.  :func:`infer_delta_min` implements this.

The actual fit is a bounded nonlinear least-squares over the logarithms
of the six electrical parameters, with closed-form seeding for
``R3, R4, C_O`` from eqs. (8)–(9).  Because ``δ↑(0)|X=0 = δ↑(−∞)`` holds
identically in the model, only five of the six targets are independent
and the solution manifold is one-dimensional; callers can pin ``C_O``
(usually known: it is the gate's output load) to make the fit unique.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
from scipy.optimize import least_squares

from ..errors import FittingError, ParameterError
from ..units import KOHM, to_ps
from .charlie import CharacteristicDelays
from .hybrid_model import HybridNorModel
from .parameters import NorGateParameters

__all__ = [
    "CharacteristicTargets",
    "FitResult",
    "infer_delta_min",
    "falling_ratio",
    "falling_feasible_without_pure_delay",
    "seed_parameters",
    "fit_nor_parameters",
]

#: Maximal ratio (R3+R4)/R3 achievable with R4 <= R3 ... R4 ~ R3.
_MODEL_RATIO_LIMIT = 2.0


@dataclasses.dataclass(frozen=True)
class CharacteristicTargets:
    """The six characteristic delays a parametrization should match.

    Parameters
    ----------
    falling : CharacteristicDelays
        ``δ↓(−∞), δ↓(0), δ↓(∞)`` in seconds.
    rising : CharacteristicDelays
        ``δ↑(−∞), δ↑(0), δ↑(∞)`` in seconds.  ``rising.zero`` is
        understood as measured with the worst-case initial
        internal-node voltage ``X = GND``, matching the paper's
        Section VI choice.
    vdd : float, optional
        Supply voltage in volts (default 0.8).
    """

    falling: CharacteristicDelays
    rising: CharacteristicDelays
    vdd: float = 0.8

    def shifted(self, delta: float) -> "CharacteristicTargets":
        """All six targets shifted by *delta* (pure-delay removal)."""
        return CharacteristicTargets(
            falling=self.falling.shifted(delta),
            rising=self.rising.shifted(delta),
            vdd=self.vdd,
        )

    def as_array(self) -> np.ndarray:
        """``[δ↓(−∞), δ↓(0), δ↓(∞), δ↑(−∞), δ↑(0), δ↑(∞)]``."""
        return np.array(self.falling.as_tuple() + self.rising.as_tuple())


def falling_ratio(falling: CharacteristicDelays,
                  delta_min: float = 0.0) -> float:
    """Effective ratio ``(δ↓(−∞) − δ_min) / (δ↓(0) − δ_min)``."""
    denominator = falling.zero - delta_min
    if denominator <= 0.0:
        raise FittingError("delta_min exceeds the MIS delay δ↓(0)")
    return (falling.minus_inf - delta_min) / denominator


def falling_feasible_without_pure_delay(
        falling: CharacteristicDelays,
        tolerance: float = 0.25) -> bool:
    """Can the falling Charlie values be fit with plausible R3 ≈ R4?

    The model requires ``δ↓(−∞)/δ↓(0) = (R3+R4)/R3``; with on-resistances
    within ``(1 ± tolerance)`` of each other, the reachable ratio band is
    ``[2 − tolerance, 2 + tolerance]`` (approximately).  Real 15 nm
    measurements give ≈ 1.36, far below the band — the paper's
    impossibility observation.
    """
    ratio = falling_ratio(falling, 0.0)
    return abs(ratio - _MODEL_RATIO_LIMIT) <= tolerance


def infer_delta_min(falling: CharacteristicDelays) -> float:
    """The pure delay that makes the effective falling ratio exactly 2.

    Solves ``(δ↓(−∞) − δmin) / (δ↓(0) − δmin) = 2`` for ``δmin``:

    .. math:: δ_{min} = 2 δ↓(0) − δ↓(−∞)

    For the paper's measurements (38 ps, 28 ps) this yields 18 ps — the
    value used throughout the paper.

    Parameters
    ----------
    falling : CharacteristicDelays
        Measured falling characteristic delays in seconds.

    Returns
    -------
    float
        The inferred pure delay ``δ_min`` in seconds.

    Raises
    ------
    FittingError
        If the targets already have ratio >= 2 (no pure delay
        needed) or are internally inconsistent.
    """
    delta_min = 2.0 * falling.zero - falling.minus_inf
    if delta_min < 0.0:
        raise FittingError(
            "targets already have ratio >= 2; no pure delay needed "
            f"(computed δ_min = {to_ps(delta_min):.2f} ps)")
    if delta_min >= falling.zero:
        raise FittingError("inferred δ_min exceeds δ↓(0); targets are "
                           "inconsistent")  # pragma: no cover - paranoid
    return delta_min


def seed_parameters(targets: CharacteristicTargets, delta_min: float,
                    co: float | None = None,
                    r_scale: float = 45.0 * KOHM) -> NorGateParameters:
    """Closed-form starting point for the least-squares fit.

    ``R4`` and ``R3`` follow from eqs. (9) and (8) once ``C_O`` is chosen;
    ``C_O`` itself is either given (it is the known output load) or set so
    that ``R4 == r_scale``.  ``R1`` and ``C_N`` are seeded from the rising
    SIS delay ``δ↑(∞)``: entering mode (0,0) with ``V_N = VDD``, the
    output charges roughly through ``R1 + R2`` — we use the single-pole
    estimate ``δ↑(∞) ≈ ln 2 · C_O (R1 + R2)`` with ``R2 = r_scale``.
    """
    effective = targets.shifted(-delta_min)
    t_minus = effective.falling.minus_inf
    t_zero = effective.falling.zero
    if t_minus <= 0.0 or t_zero <= 0.0:
        raise FittingError("effective falling targets must be positive")

    if co is None:
        co = t_minus / (math.log(2.0) * r_scale)
    r4 = t_minus / (math.log(2.0) * co)
    parallel = t_zero / (math.log(2.0) * co)
    if parallel >= r4:
        raise FittingError("δ↓(0) must be smaller than δ↓(−∞)")
    r3 = 1.0 / (1.0 / parallel - 1.0 / r4)

    r2 = r_scale
    r1 = max(effective.rising.plus_inf / (math.log(2.0) * co) - r2,
             0.1 * r_scale)
    cn = 0.1 * co  # parasitic node is small compared to the load
    return NorGateParameters(r1=r1, r2=r2, r3=r3, r4=r4, cn=cn, co=co,
                             vdd=targets.vdd, delta_min=delta_min)


@dataclasses.dataclass(frozen=True)
class FitResult:
    """Outcome of :func:`fit_nor_parameters`.

    Attributes:
        params: the fitted :class:`NorGateParameters` (δ_min included).
        targets: the characteristic values that were fitted.
        achieved: the model's characteristic values at the optimum.
        cost: final least-squares cost (residuals in ps).
        success: optimizer status flag.
    """

    params: NorGateParameters
    targets: CharacteristicTargets
    achieved: CharacteristicTargets
    cost: float
    success: bool

    @property
    def max_error(self) -> float:
        """Largest |achieved − target| over the six values, seconds."""
        return float(np.max(np.abs(self.achieved.as_array()
                                   - self.targets.as_array())))

    def table(self) -> list[tuple[str, float, float]]:
        """``(name, target_ps, achieved_ps)`` rows for reporting."""
        names = ["falling(-inf)", "falling(0)", "falling(+inf)",
                 "rising(-inf)", "rising(0)", "rising(+inf)"]
        return [(name, to_ps(t), to_ps(a))
                for name, t, a in zip(names, self.targets.as_array(),
                                      self.achieved.as_array())]


def _model_characteristics(params: NorGateParameters
                           ) -> CharacteristicTargets:
    model = HybridNorModel(params)
    return CharacteristicTargets(
        falling=model.characteristic_falling(),
        rising=model.characteristic_rising(vn_init=0.0),
        vdd=params.vdd,
    )


def fit_nor_parameters(targets: CharacteristicTargets,
                       delta_min: float | None = None,
                       co: float | None = None,
                       seed: NorGateParameters | None = None,
                       weights: np.ndarray | None = None,
                       regularization: float = 0.3,
                       max_nfev: int = 200) -> FitResult:
    """Least-squares fit of the hybrid model to characteristic delays.

    Parameters
    ----------
    targets : CharacteristicTargets
        Six characteristic delays in seconds (with pure delay
        *included*, i.e. as measured).
    delta_min : float, optional
        Pure delay in seconds; ``None`` infers it from the falling
        values via :func:`infer_delta_min` (paper Section V
        procedure).
    co : float, optional
        Pin the output capacitance to this value in farads
        (recommended: the fit manifold is otherwise
        one-dimensional).
    seed : NorGateParameters, optional
        Explicit starting point.
    weights : numpy.ndarray, optional
        Per-target weights (length 6).
    regularization : float, optional
        Weight of a gentle log-space pull towards the seed.  Because
        ``δ↑(0)|X=0 ≡ δ↑(−∞)`` the target set leaves flat directions
        in parameter space; the prior pins those without noticeably
        degrading the target match (the seed is the closed-form
        solution of eqs. (8)–(9)).  Set to 0 to disable.
    max_nfev : int, optional
        Function-evaluation budget of the optimizer.

    Returns
    -------
    FitResult
        Fitted parameters plus achieved-vs-target bookkeeping.

    Raises
    ------
    FittingError
        If the optimizer fails badly.
    """
    if delta_min is None:
        delta_min = infer_delta_min(targets.falling)

    if seed is None:
        seed = seed_parameters(targets, delta_min, co=co)
    if weights is None:
        weights = np.ones(6)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (6,):
        raise ParameterError("weights must have shape (6,)")
    if regularization < 0.0:
        raise ParameterError("regularization must be >= 0")

    target_ps = targets.as_array() / 1e-12

    fit_co = co is None
    names = ["r1", "r2", "r3", "r4", "cn"] + (["co"] if fit_co else [])
    x0 = np.log([getattr(seed, name) for name in names])

    def unpack(log_values: np.ndarray) -> NorGateParameters:
        values = dict(zip(names, np.exp(log_values)))
        if not fit_co:
            values["co"] = co
        return NorGateParameters(vdd=targets.vdd, delta_min=delta_min,
                                 **values)

    def residuals(log_values: np.ndarray) -> np.ndarray:
        prior = regularization * (log_values - x0)
        try:
            params = unpack(log_values)
            achieved = _model_characteristics(params)
        except (ParameterError, FloatingPointError):
            return np.concatenate([np.full(6, 1e6), prior])
        res = (achieved.as_array() / 1e-12 - target_ps) * weights
        return np.concatenate([res, prior])

    solution = least_squares(residuals, x0, method="lm", xtol=1e-14,
                             ftol=1e-14, max_nfev=max_nfev)

    params = unpack(solution.x)
    achieved = _model_characteristics(params)
    result = FitResult(
        params=params,
        targets=targets,
        achieved=achieved,
        cost=float(solution.cost),
        success=bool(solution.success),
    )
    if not math.isfinite(result.cost):
        raise FittingError("least-squares fit diverged")
    return result
