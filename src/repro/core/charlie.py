"""Characteristic Charlie delays and MIS delay curves.

The paper characterizes the multiple-input-switching (MIS, "Charlie")
behaviour of a gate by three values per output transition direction:

* ``δ(−∞)`` — single-input-switching (SIS) delay when input B switches
  long before input A,
* ``δ(∞)``  — SIS delay when input A switches long before input B,
* ``δ(0)``  — MIS delay for simultaneous transitions.

(Recall ``Δ = t_B − t_A``: large *positive* Δ means B switches long
*after* A, i.e. A alone determines a falling output transition.)

This module provides containers for these values, extraction of the
values and the paper's Fig. 2 percentage annotations from sampled delay
curves, and a :class:`MisCurve` helper used by sweeps, plots and benches.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np

from ..errors import ParameterError
from ..units import percent_change, to_ps

__all__ = ["CharacteristicDelays", "MisCurve"]


@dataclasses.dataclass(frozen=True)
class CharacteristicDelays:
    """The three characteristic Charlie delays of one output direction.

    Parameters
    ----------
    minus_inf : float
        SIS delay ``δ(−∞)`` (input B switched first), seconds.
    zero : float
        MIS delay ``δ(0)`` (simultaneous switching), seconds.
    plus_inf : float
        SIS delay ``δ(∞)`` (input A switched first), seconds.
    """

    minus_inf: float
    zero: float
    plus_inf: float

    @property
    def mis_effect_vs_minus_inf(self) -> float:
        """Percent change of ``δ(0)`` vs ``δ(−∞)`` (Fig. 2 annotation)."""
        return percent_change(self.zero, self.minus_inf)

    @property
    def mis_effect_vs_plus_inf(self) -> float:
        """Percent change of ``δ(0)`` vs ``δ(∞)`` (Fig. 2 annotation)."""
        return percent_change(self.zero, self.plus_inf)

    @property
    def is_speedup(self) -> bool:
        """True if simultaneous switching is faster than both SIS cases."""
        return self.zero < min(self.minus_inf, self.plus_inf)

    @property
    def is_slowdown(self) -> bool:
        """True if simultaneous switching is slower than both SIS cases."""
        return self.zero > max(self.minus_inf, self.plus_inf)

    def shifted(self, delta: float) -> "CharacteristicDelays":
        """Return a copy with *delta* added to every value.

        Used for moving a pure delay ``δ_min`` in and out of the
        characteristic values during parametrization (paper Section V).
        """
        return CharacteristicDelays(
            minus_inf=self.minus_inf + delta,
            zero=self.zero + delta,
            plus_inf=self.plus_inf + delta,
        )

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(δ(−∞), δ(0), δ(∞))``."""
        return (self.minus_inf, self.zero, self.plus_inf)

    def describe(self, label: str = "delta") -> str:
        """One-line human-readable summary in picoseconds."""
        return (f"{label}(-inf) = {to_ps(self.minus_inf):.2f} ps, "
                f"{label}(0) = {to_ps(self.zero):.2f} ps, "
                f"{label}(+inf) = {to_ps(self.plus_inf):.2f} ps")


@dataclasses.dataclass(frozen=True)
class MisCurve:
    """A sampled MIS delay curve ``δ(Δ)``.

    Parameters
    ----------
    deltas : tuple of float
        Strictly increasing input separations ``Δ = t_B − t_A`` in
        seconds.
    delays : tuple of float
        Gate delays in seconds, one per Δ.
    direction : str
        ``'falling'`` or ``'rising'`` (output transition).
    label : str, optional
        Free-form label for reporting.
    """

    deltas: tuple[float, ...]
    delays: tuple[float, ...]
    direction: str
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.deltas) != len(self.delays):
            raise ParameterError("deltas and delays must have equal length")
        if self.direction not in ("falling", "rising"):
            raise ParameterError("direction must be 'falling' or 'rising'")
        if len(self.deltas) > 1 and not np.all(
                np.diff(np.asarray(self.deltas)) > 0.0):
            raise ParameterError("deltas must be strictly increasing")

    @classmethod
    def from_arrays(cls, deltas, delays, direction: str,
                    label: str = "") -> "MisCurve":
        """Build from any 1-D float sequences/arrays (no Python loop)."""
        deltas = np.asarray(deltas, dtype=float)
        delays = np.asarray(delays, dtype=float)
        if deltas.ndim > 1 or delays.ndim > 1:
            raise ParameterError("curve samples must be 1-dimensional")
        return cls(tuple(deltas.tolist()), tuple(delays.tolist()),
                   direction, label)

    def __len__(self) -> int:
        return len(self.deltas)

    @property
    def deltas_array(self) -> np.ndarray:
        """The separations as a NumPy array, seconds."""
        return np.asarray(self.deltas)

    @property
    def delays_array(self) -> np.ndarray:
        """The delays as a NumPy array, seconds."""
        return np.asarray(self.delays)

    def delay_at(self, delta: float) -> float:
        """Linearly interpolated delay at separation *delta*.

        Parameters
        ----------
        delta : float
            Input separation in seconds, within the sampled range.

        Returns
        -------
        float
            Interpolated delay in seconds.

        Raises
        ------
        ValueError
            If *delta* lies outside the sampled range — ``np.interp``
            would otherwise clamp to the edge values and silently
            report a plateau that was never measured.  (Characterized
            tables in :mod:`repro.library` clamp deliberately; their
            grids end on the SIS plateaus.)
        """
        if not self.deltas[0] <= delta <= self.deltas[-1]:
            raise ValueError(
                f"delta {delta!r} s is outside the sampled range "
                f"[{self.deltas[0]!r}, {self.deltas[-1]!r}] s; "
                "resample the curve instead of extrapolating")
        return float(np.interp(delta, self.deltas, self.delays))

    def extreme_near_zero(self) -> tuple[float, float]:
        """Return ``(Δ*, δ(Δ*))`` of the most extreme delay of the curve.

        For a speed-up curve this is the minimum, for a slow-down curve
        the maximum — decided by comparing against the curve edges.
        """
        delays = self.delays_array
        edge = 0.5 * (delays[0] + delays[-1])
        idx_min = int(np.argmin(delays))
        idx_max = int(np.argmax(delays))
        if edge - delays[idx_min] >= delays[idx_max] - edge:
            idx = idx_min
        else:
            idx = idx_max
        return (self.deltas[idx], self.delays[idx])

    def characteristic(self) -> CharacteristicDelays:
        """Extract the characteristic delays from the sampled curve.

        ``δ(±∞)`` are taken from the curve edges (which is valid as long
        as the sweep extends past the settling region) and ``δ(0)`` is
        interpolated at ``Δ = 0``.
        """
        return CharacteristicDelays(
            minus_inf=self.delays[0],
            zero=self.delay_at(0.0),
            plus_inf=self.delays[-1],
        )

    def max_abs_difference(self, other: "MisCurve") -> float:
        """Maximum |δ_self(Δ) − δ_other(Δ)| on the overlap of supports."""
        lo = max(self.deltas[0], other.deltas[0])
        hi = min(self.deltas[-1], other.deltas[-1])
        if hi < lo:
            raise ParameterError("curves do not overlap")
        grid = np.linspace(lo, hi, 512)
        mine = np.interp(grid, self.deltas, self.delays)
        theirs = np.interp(grid, other.deltas, other.delays)
        return float(np.max(np.abs(mine - theirs)))

    def mean_abs_difference(self, other: "MisCurve") -> float:
        """Mean |δ_self(Δ) − δ_other(Δ)| on the overlap of supports."""
        lo = max(self.deltas[0], other.deltas[0])
        hi = min(self.deltas[-1], other.deltas[-1])
        if hi < lo:
            raise ParameterError("curves do not overlap")
        grid = np.linspace(lo, hi, 512)
        mine = np.interp(grid, self.deltas, self.delays)
        theirs = np.interp(grid, other.deltas, other.delays)
        return float(np.mean(np.abs(mine - theirs)))

    def shifted(self, delta: float) -> "MisCurve":
        """Return a copy with *delta* added to every delay value."""
        return MisCurve(self.deltas,
                        tuple(d + delta for d in self.delays),
                        self.direction, self.label)

    def rows(self) -> list[tuple[float, float]]:
        """``(Δ [ps], δ [ps])`` rows for reporting."""
        return [(to_ps(d), to_ps(v))
                for d, v in zip(self.deltas, self.delays)]


def characteristic_from_samples(deltas: Sequence[float],
                                delays: Sequence[float],
                                direction: str) -> CharacteristicDelays:
    """Convenience wrapper: build a curve and extract its characteristics."""
    return MisCurve.from_arrays(deltas, delays, direction).characteristic()
