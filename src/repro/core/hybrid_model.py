"""The hybrid NOR-gate delay model (the paper's primary contribution).

:class:`HybridNorModel` computes multiple-input-switching (MIS) gate
delays by chaining the closed-form mode solutions of
:mod:`repro.core.solutions` through the mode sequences of paper
Section IV:

Falling output transition (inputs rise, ``Δ = t_B − t_A``):

* ``Δ > 0`` (A first):  (0,0) → (1,0) at ``t=0`` → (1,1) at ``t=Δ``
* ``Δ < 0`` (B first):  (0,0) → (0,1) at ``t=0`` → (1,1) at ``t=|Δ|``
* delay ``δ↓(Δ) = t_O − min(t_A, t_B) + δ_min = t_O + δ_min``

Rising output transition (inputs fall):

* ``Δ > 0`` (A first):  (1,1) → (0,1) at ``t=0`` → (0,0) at ``t=Δ``
* ``Δ < 0`` (B first):  (1,1) → (1,0) at ``t=0`` → (0,0) at ``t=|Δ|``
* delay ``δ↑(Δ) = t_O − max(t_A, t_B) + δ_min = t_O − |Δ| + δ_min``

The rising case needs the initial internal-node voltage ``V_N = X`` in
mode (1,1), which mode (1,1) itself never changes; the paper studies
``X ∈ {GND, VDD/2, VDD}`` and uses ``X = GND`` (the worst case, matching
the SIS delays) for the accuracy evaluation — so does this class by
default.

All returned delays include the pure delay ``δ_min`` carried by the
parameter set (paper Section V).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..errors import NoCrossingError, ParameterError
from .charlie import CharacteristicDelays, MisCurve
from .modes import Mode
from .parameters import NorGateParameters
from .trajectory import PiecewiseTrajectory

__all__ = ["HybridNorModel", "DelayComputation", "settle_time"]

#: Multiple of the slowest time constant treated as "infinite" separation.
_SETTLE_FACTOR = 60.0


def settle_time(params: NorGateParameters) -> float:
    """A conservative 'long time' after which every mode has settled.

    Separations beyond this are treated as ``±inf``; the evaluation
    backends in :mod:`repro.engine` share this exact cutoff so that the
    scalar and vectorized paths branch identically.
    """
    taus = (params.tau_parallel, params.tau_r3, params.tau_r4,
            params.tau_n_charge, params.cn * params.r2,
            params.co * params.r2, params.co * params.r1)
    return _SETTLE_FACTOR * max(taus)


@dataclasses.dataclass(frozen=True)
class DelayComputation:
    """The result of one delay computation, with its trajectory attached.

    Parameters
    ----------
    delta : float
        Input separation time ``t_B − t_A`` in seconds (may be ±inf).
    delay : float
        The gate delay including ``δ_min``, seconds.
    crossing_time : float
        Global trajectory time of the output crossing, seconds.
    trajectory : PiecewiseTrajectory
        The underlying piecewise trajectory (switch times are *not*
        deferred by ``δ_min``; the pure delay is added to the
        reported delay instead, as in the paper).
    """

    delta: float
    delay: float
    crossing_time: float
    trajectory: PiecewiseTrajectory


class HybridNorModel:
    """MIS-aware delay model of a 2-input CMOS NOR gate.

    Parameters
    ----------
    params : NorGateParameters
        Electrical parameters in SI units (including ``vdd`` and the
        pure delay ``δ_min``).

    Notes
    -----
    The model is stateless; all methods are pure functions of
    *params*.  All returned delays are in seconds and include
    ``δ_min``.
    """

    def __init__(self, params: NorGateParameters):
        self.params = params

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def _settle_time(self) -> float:
        """See :func:`settle_time`."""
        return settle_time(self.params)

    def _is_effectively_infinite(self, delta: float) -> bool:
        return math.isinf(delta) or abs(delta) >= self._settle_time

    # ------------------------------------------------------------------
    # falling output transition (both inputs rise, output 1 -> 0)
    # ------------------------------------------------------------------

    def falling_computation(self, delta: float) -> DelayComputation:
        """Full falling-transition computation for separation *delta*.

        The gate rests in mode (0,0) with ``V_N = V_O = VDD``; the first
        rising input arrives at ``t = 0``.
        """
        p = self.params
        vdd = p.vdd
        initial = (vdd, vdd)

        if self._is_effectively_infinite(delta):
            first = Mode.A_HIGH_B_LOW if delta > 0 else Mode.A_LOW_B_HIGH
            trajectory = PiecewiseTrajectory(p, first, initial)
        elif delta >= 0.0:
            # A rises at 0, B rises at delta.
            switches = [(delta, Mode.BOTH_HIGH)] if delta > 0.0 else []
            start = Mode.A_HIGH_B_LOW if delta > 0.0 else Mode.BOTH_HIGH
            trajectory = PiecewiseTrajectory(p, start, initial, switches)
        else:
            # B rises at 0, A rises at |delta|.
            trajectory = PiecewiseTrajectory(
                p, Mode.A_LOW_B_HIGH, initial,
                [(-delta, Mode.BOTH_HIGH)])

        crossing = trajectory.first_output_crossing(direction=-1)
        return DelayComputation(
            delta=delta,
            delay=crossing + p.delta_min,
            crossing_time=crossing,
            trajectory=trajectory,
        )

    def delay_falling(self, delta: float) -> float:
        """Falling-output MIS delay ``δ↓_M(Δ)`` (paper Fig. 5)."""
        return self.falling_computation(delta).delay

    def delay_falling_zero(self) -> float:
        """Exact ``δ↓(0)`` — paper eq. (8): ``ln 2 · CO·R3·R4/(R3+R4)``."""
        p = self.params
        return math.log(2.0) * p.tau_parallel + p.delta_min

    def delay_falling_minus_inf(self) -> float:
        """Exact ``δ↓(−∞)`` — paper eq. (9): ``ln 2 · CO·R4``."""
        p = self.params
        return math.log(2.0) * p.tau_r4 + p.delta_min

    def delay_falling_plus_inf(self) -> float:
        """``δ↓(∞)``: crossing within mode (1,0), found numerically.

        No elementary closed form exists (two exponentials); the paper
        gives the Newton-step approximation of eq. (10), available in
        :mod:`repro.core.analytic`.
        """
        return self.delay_falling(math.inf)

    # ------------------------------------------------------------------
    # rising output transition (both inputs fall, output 0 -> 1)
    # ------------------------------------------------------------------

    def rising_computation(self, delta: float,
                           vn_init: float = 0.0) -> DelayComputation:
        """Full rising-transition computation for separation *delta*.

        The gate rests in mode (1,1) with ``V_O = 0`` and ``V_N =
        vn_init`` (invariant in that mode); the first falling input
        arrives at ``t = 0``, the second at ``t = |Δ|``.  The delay is
        referenced to the *later* input.
        """
        p = self.params
        initial = (float(vn_init), 0.0)

        if self._is_effectively_infinite(delta):
            # Let the intermediate mode settle completely, then (0,0).
            intermediate = (Mode.A_LOW_B_HIGH if delta > 0
                            else Mode.A_HIGH_B_LOW)
            settle = self._settle_time
            trajectory = PiecewiseTrajectory(
                p, intermediate, initial, [(settle, Mode.BOTH_LOW)])
            reference = settle
        elif delta >= 0.0:
            # A falls at 0 -> (0,1); B falls at delta -> (0,0).
            if delta > 0.0:
                trajectory = PiecewiseTrajectory(
                    p, Mode.A_LOW_B_HIGH, initial,
                    [(delta, Mode.BOTH_LOW)])
            else:
                trajectory = PiecewiseTrajectory(p, Mode.BOTH_LOW, initial)
            reference = delta
        else:
            # B falls at 0 -> (1,0); A falls at |delta| -> (0,0).
            trajectory = PiecewiseTrajectory(
                p, Mode.A_HIGH_B_LOW, initial,
                [(-delta, Mode.BOTH_LOW)])
            reference = -delta

        crossing = trajectory.first_output_crossing(direction=+1)
        return DelayComputation(
            delta=delta,
            delay=crossing - reference + p.delta_min,
            crossing_time=crossing,
            trajectory=trajectory,
        )

    def delay_rising(self, delta: float, vn_init: float = 0.0) -> float:
        """Rising-output MIS delay ``δ↑_M(Δ)`` (paper Fig. 6).

        Parameters
        ----------
        delta : float
            Input separation ``t_B − t_A`` in seconds (may be ±inf).
        vn_init : float, optional
            Internal node voltage ``X`` in volts while in mode (1,1)
            (default 0.0).

        Returns
        -------
        float
            Delay in seconds, referenced to the later input,
            ``δ_min`` included.
        """
        return self.rising_computation(delta, vn_init).delay

    def delay_rising_plus_inf(self) -> float:
        """``δ↑(∞)``: mode (0,0) entered with ``V_N`` fully charged."""
        return self.delay_rising(math.inf)

    def delay_rising_minus_inf(self) -> float:
        """``δ↑(−∞)``: mode (0,0) entered with ``V_N`` fully drained."""
        return self.delay_rising(-math.inf)

    def delay_rising_zero(self, vn_init: float = 0.0) -> float:
        """``δ↑(0)``: simultaneous falling inputs."""
        return self.delay_rising(0.0, vn_init)

    # ------------------------------------------------------------------
    # batch evaluation, curves and characteristics
    # ------------------------------------------------------------------

    def delays_falling(self, deltas, engine=None) -> np.ndarray:
        """Array-in/array-out falling MIS delays ``δ↓_M(Δ)``.

        Parameters
        ----------
        deltas : array_like of float
            Input separations in seconds, any shape; ``±inf``
            allowed.
        engine : str or DelayEngine or None, optional
            Evaluation backend — a name from
            :func:`repro.engine.available_engines`, an engine
            instance, or ``None`` for the vectorized default.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        from ..engine import get_engine  # local: engine wraps this module
        return get_engine(engine).delays_falling(self.params, deltas)

    def delays_rising(self, deltas, vn_init: float = 0.0,
                      engine=None) -> np.ndarray:
        """Array-in/array-out rising MIS delays ``δ↑_M(Δ)``.

        Parameters
        ----------
        deltas : array_like of float
            Input separations in seconds, any shape; ``±inf``
            allowed.
        vn_init : float, optional
            Mode-(1,1) internal-node voltage in volts (default 0.0).
        engine : str or DelayEngine or None, optional
            Evaluation backend (see :meth:`delays_falling`).

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), same shape as
            *deltas*.
        """
        from ..engine import get_engine
        return get_engine(engine).delays_rising(self.params, deltas,
                                                vn_init)

    def falling_curve(self, deltas, engine=None) -> MisCurve:
        """Sample ``δ↓_M`` over an array of separations (paper Fig. 5)."""
        deltas = np.asarray(deltas, dtype=float)
        return MisCurve.from_arrays(
            deltas, self.delays_falling(deltas, engine=engine),
            "falling", label="hybrid model")

    def rising_curve(self, deltas, vn_init: float = 0.0,
                     engine=None) -> MisCurve:
        """Sample ``δ↑_M`` over an array of separations (paper Fig. 6)."""
        deltas = np.asarray(deltas, dtype=float)
        return MisCurve.from_arrays(
            deltas, self.delays_rising(deltas, vn_init, engine=engine),
            "rising", label=f"hybrid model (VN={vn_init} V)")

    def characteristic_falling(self) -> CharacteristicDelays:
        """``(δ↓(−∞), δ↓(0), δ↓(∞))`` — the falling Charlie triple."""
        return CharacteristicDelays(
            minus_inf=self.delay_falling_minus_inf(),
            zero=self.delay_falling_zero(),
            plus_inf=self.delay_falling_plus_inf(),
        )

    def characteristic_rising(self,
                              vn_init: float = 0.0) -> CharacteristicDelays:
        """``(δ↑(−∞), δ↑(0), δ↑(∞))`` — the rising Charlie triple."""
        return CharacteristicDelays(
            minus_inf=self.delay_rising_minus_inf(),
            zero=self.delay_rising_zero(vn_init),
            plus_inf=self.delay_rising_plus_inf(),
        )

    # ------------------------------------------------------------------
    # single-transition interface used by the timing channel
    # ------------------------------------------------------------------

    def output_crossings_for_inputs(
            self, a_events: list[tuple[float, int]],
            b_events: list[tuple[float, int]],
            initial_state: tuple[float, float] | None = None,
            t_max: float | None = None,
            a_initial: int | None = None,
            b_initial: int | None = None) -> list[tuple[float, int]]:
        """Digitized output of the hybrid automaton for full input traces.

        Args:
            a_events: ``(time, value)`` transitions of input A, sorted.
            b_events: ``(time, value)`` transitions of input B, sorted.
            initial_state: ``(V_N, V_O)`` at ``t = 0``; defaults to the
                equilibrium of the initial input state.
            t_max: stop searching for crossings after this time.
            a_initial: logic value of A before its first event (inferred
                from the first event when omitted; 0 for an empty trace).
            b_initial: same for input B.

        Returns:
            ``(time, value)`` output transitions (0/1 at Vth crossings).
            Mode switches are deferred by ``δ_min``.

        This is the reference implementation behind the event-driven
        channel in :mod:`repro.timing.channels.hybrid`; both are tested
        against each other.
        """
        p = self.params
        if a_initial is None:
            a_initial = 1 - a_events[0][1] if a_events else 0
        if b_initial is None:
            b_initial = 1 - b_events[0][1] if b_events else 0
        a0, b0 = int(a_initial), int(b_initial)
        if a_events and a_events[0][0] < 0:
            raise ParameterError("input events must have t >= 0")
        mode0 = Mode.from_inputs(a0, b0)

        # Merge the two input event streams into mode switches.
        switches: list[tuple[float, Mode]] = []
        a, b = a0, b0
        merged = sorted(
            [(t, "a", v) for t, v in a_events] +
            [(t, "b", v) for t, v in b_events])
        for t, which, value in merged:
            if which == "a":
                a = value
            else:
                b = value
            switches.append((t + p.delta_min, Mode.from_inputs(a, b)))
        # Collapse simultaneous switches (keep the last mode at each time).
        collapsed: list[tuple[float, Mode]] = []
        for t, mode in switches:
            if collapsed and math.isclose(collapsed[-1][0], t,
                                          rel_tol=0.0, abs_tol=1e-18):
                collapsed[-1] = (collapsed[-1][0], mode)
            else:
                collapsed.append((t, mode))

        if initial_state is None:
            if mode0 is Mode.BOTH_LOW:
                initial_state = (p.vdd, p.vdd)
            elif mode0 is Mode.BOTH_HIGH:
                initial_state = (0.0, 0.0)
            elif mode0 is Mode.A_LOW_B_HIGH:
                initial_state = (p.vdd, 0.0)
            else:
                initial_state = (0.0, 0.0)

        trajectory = PiecewiseTrajectory(p, mode0, initial_state, collapsed)
        out: list[tuple[float, int]] = []
        for crossing in trajectory.output_crossings(t_max=t_max):
            value = 1 if crossing.direction > 0 else 0
            out.append((crossing.time, value))
        return out
