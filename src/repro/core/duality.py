"""NAND2 delay model via the CMOS mirror duality (extension).

The paper's hybrid model is formulated for a NOR gate, but CMOS duality
extends it to the NAND gate for free: mirroring every voltage around
``Vth = VDD/2`` (``V → VDD − V``) maps the NOR's RC network onto a
NAND's —

* the series pMOS stack (R1 from the rail, R2 to the output, internal
  node N with C_N) becomes the NAND's series *nMOS* stack (internal
  node M),
* the parallel nMOS pair (R3, R4) becomes the parallel *pMOS* pair,
* rising and falling output transitions swap roles, and every input
  edge inverts.

Because the logic threshold ``VDD/2`` is the fixed point of the mirror,
input threshold-crossing times — and therefore the separation
``Δ = t_B − t_A`` — are preserved.  The NAND delay functions are the
NOR ones with directions swapped and the internal-node initial value
mirrored:

.. math::
    δ^{NAND}_↓(Δ; V_M(0) = X) &= δ^{NOR}_↑(Δ; V_N(0) = VDD − X) \\\\
    δ^{NAND}_↑(Δ)             &= δ^{NOR}_↓(Δ)

The NAND's MIS landscape follows: a *rising* speed-up from the parallel
pMOS pair, and a *falling* slow-down / order dependence from the series
nMOS stack — mirrored Fig. 2 (verified against the analog NAND2 cell in
the test-suite).  The paper's worst case ``V_N = GND`` maps to
``V_M = VDD``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from .charlie import CharacteristicDelays, MisCurve
from .hybrid_model import HybridNorModel
from .parameters import NorGateParameters

__all__ = ["HybridNandModel"]


class HybridNandModel:
    """MIS-aware delay model of a 2-input CMOS NAND gate.

    Args:
        params: electrical parameters with the *mirrored* reading:
            ``r1`` is the rail-side series nMOS (gate A), ``r2`` the
            output-side series nMOS (gate B), ``r3``/``r4`` the parallel
            pMOS, ``cn`` the capacitance of the internal stack node M.
    """

    def __init__(self, params: NorGateParameters):
        self.params = params
        self._nor = HybridNorModel(params)

    @property
    def nor_model(self) -> HybridNorModel:
        """The underlying mirrored NOR model."""
        return self._nor

    def _mirror_voltage(self, value: float) -> float:
        if not 0.0 <= value <= self.params.vdd:
            raise ParameterError(
                f"node voltage {value!r} outside [0, VDD]")
        return self.params.vdd - value

    # ------------------------------------------------------------------
    # delays
    # ------------------------------------------------------------------

    def delay_falling(self, delta: float,
                      vm_init: float | None = None) -> float:
        """NAND falling-output MIS delay (both inputs rise).

        Args:
            delta: input separation ``t_B − t_A``.
            vm_init: initial internal stack-node voltage ``V_M`` while
                the gate rested with both inputs low; defaults to the
                worst case ``VDD`` (mirror of the paper's ``V_N = GND``).
        """
        if vm_init is None:
            vm_init = self.params.vdd
        return self._nor.delay_rising(delta,
                                      self._mirror_voltage(vm_init))

    def delay_rising(self, delta: float) -> float:
        """NAND rising-output MIS delay (both inputs fall)."""
        return self._nor.delay_falling(delta)

    def delay_rising_zero(self) -> float:
        """Exact rising MIS delay — the mirror of paper eq. (8)."""
        return self._nor.delay_falling_zero()

    def delay_rising_minus_inf(self) -> float:
        """Exact SIS rising delay — the mirror of paper eq. (9)."""
        return self._nor.delay_falling_minus_inf()

    def delay_rising_plus_inf(self) -> float:
        return self._nor.delay_falling_plus_inf()

    def delay_falling_minus_inf(self) -> float:
        return self._nor.delay_rising_minus_inf()

    def delay_falling_plus_inf(self) -> float:
        return self._nor.delay_rising_plus_inf()

    # ------------------------------------------------------------------
    # curves and characteristics
    # ------------------------------------------------------------------

    def rising_curve(self, deltas, engine=None) -> MisCurve:
        """Rising MIS curve — exhibits the parallel-pair speed-up."""
        deltas = np.asarray(deltas, dtype=float)
        delays = self._nor.delays_falling(deltas, engine=engine)
        return MisCurve.from_arrays(deltas, delays, "rising",
                                    label="hybrid NAND model")

    def falling_curve(self, deltas, vm_init: float | None = None,
                      engine=None) -> MisCurve:
        """Falling MIS curve — exhibits the series-stack asymmetry."""
        if vm_init is None:
            vm_init = self.params.vdd
        deltas = np.asarray(deltas, dtype=float)
        delays = self._nor.delays_rising(
            deltas, self._mirror_voltage(vm_init), engine=engine)
        return MisCurve.from_arrays(deltas, delays, "falling",
                                    label="hybrid NAND model")

    def characteristic_rising(self) -> CharacteristicDelays:
        return self._nor.characteristic_falling()

    def characteristic_falling(self,
                               vm_init: float | None = None
                               ) -> CharacteristicDelays:
        if vm_init is None:
            vm_init = self.params.vdd
        return self._nor.characteristic_rising(
            self._mirror_voltage(vm_init))
