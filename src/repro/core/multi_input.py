"""Generalized n-input NOR hybrid model (paper Section VII future work).

The paper's model is a 2-input NOR; its construction generalizes
directly to n inputs:

* the pull-up network is a *series chain* of n pMOS switches from VDD
  to the output with n−1 internal nodes (each with a parasitic
  capacitance),
* the pull-down network is n *parallel* nMOS switches,
* every input state selects one linear RC network, i.e. one
  n-dimensional ODE system ``C V' = −G V + b``.

For n = 2 this reduces — exactly, as the test-suite verifies — to the
closed-form model of :mod:`repro.core.hybrid_model`.  For general n the
per-mode systems are solved by eigendecomposition of the augmented
system matrix (RC networks have real, non-positive eigenvalues), giving
each node voltage as a sum of up to n real exponentials; output
threshold crossings are located by dense sampling plus Brent refinement.

Conventions mirror the 2-input model: input ``i`` gates the i-th pMOS
of the chain counted *from the rail* and the i-th parallel nMOS;
``delta_min`` defers mode switches; internal nodes rest at the paper's
worst case (GND) when their analog history is unknown.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from collections.abc import Sequence

import numpy as np
from scipy.optimize import brentq

from ..errors import NoCrossingError, ParameterError
from .parameters import NorGateParameters
from .solutions import ExpSum

__all__ = ["GeneralizedNorParameters", "GeneralizedNorModel"]

#: Relative eigenvalue imaginary part treated as numerical noise.
_IMAG_TOL = 1e-8
#: Samples used to bracket output crossings per segment.
_CROSSING_SAMPLES = 1024


@dataclasses.dataclass(frozen=True)
class GeneralizedNorParameters:
    """Electrical parameters of an n-input NOR (SI units).

    Attributes:
        r_pullup: on-resistances of the series pMOS chain, rail side
            first (length n).
        r_pulldown: on-resistances of the parallel nMOS (length n).
        c_internal: capacitances of the n−1 internal chain nodes.
        co: output capacitance.
        vdd: supply voltage.
        delta_min: pure delay deferring mode switches.
    """

    r_pullup: tuple[float, ...]
    r_pulldown: tuple[float, ...]
    c_internal: tuple[float, ...]
    co: float
    vdd: float = 0.8
    delta_min: float = 0.0

    def __post_init__(self) -> None:
        n = len(self.r_pullup)
        if n < 2:
            raise ParameterError("need at least two inputs")
        if len(self.r_pulldown) != n:
            raise ParameterError("r_pulldown must match r_pullup")
        if len(self.c_internal) != n - 1:
            raise ParameterError("need exactly n-1 internal "
                                 "capacitances")
        for value in (*self.r_pullup, *self.r_pulldown,
                      *self.c_internal, self.co, self.vdd):
            if not math.isfinite(value) or value <= 0.0:
                raise ParameterError("all electrical parameters must "
                                     "be positive and finite")
        if self.delta_min < 0.0:
            raise ParameterError("delta_min must be non-negative")

    @property
    def num_inputs(self) -> int:
        return len(self.r_pullup)

    @property
    def vth(self) -> float:
        return self.vdd / 2.0

    @classmethod
    def from_two_input(cls, params: NorGateParameters
                       ) -> "GeneralizedNorParameters":
        """Map the paper's 2-input parameters onto the general form."""
        return cls(r_pullup=(params.r1, params.r2),
                   r_pulldown=(params.r3, params.r4),
                   c_internal=(params.cn,),
                   co=params.co, vdd=params.vdd,
                   delta_min=params.delta_min)

    def to_two_input(self) -> NorGateParameters:
        """Inverse of :meth:`from_two_input` (2-input gates only).

        Raises:
            ParameterError: if the gate has more than two inputs.
        """
        if self.num_inputs != 2:
            raise ParameterError(
                f"cannot reduce a {self.num_inputs}-input gate to the "
                "paper's 2-input parameter set")
        return NorGateParameters(
            r1=self.r_pullup[0], r2=self.r_pullup[1],
            r3=self.r_pulldown[0], r4=self.r_pulldown[1],
            cn=self.c_internal[0], co=self.co, vdd=self.vdd,
            delta_min=self.delta_min)


@dataclasses.dataclass(frozen=True)
class _SegmentSolution:
    """Node voltages of one mode segment as per-node ExpSums."""

    nodes: tuple[ExpSum, ...]
    slowest_tau: float

    @property
    def output(self) -> ExpSum:
        return self.nodes[-1]

    def state_at(self, t: float) -> np.ndarray:
        return np.array([node(t) for node in self.nodes])


class GeneralizedNorModel:
    """MIS-aware delay model of an n-input CMOS NOR gate."""

    def __init__(self, params: GeneralizedNorParameters):
        self.params = params
        self._n = params.num_inputs

    # ------------------------------------------------------------------
    # per-mode linear systems
    # ------------------------------------------------------------------

    @functools.lru_cache(maxsize=64)
    def _mode_matrices(self, inputs: tuple[int, ...]
                       ) -> tuple[np.ndarray, np.ndarray]:
        """System matrix ``A = −C⁻¹G`` and forcing ``f = C⁻¹b``.

        States are the chain nodes rail-side first, output last.
        """
        p = self.params
        n = self._n
        g = np.zeros((n, n))
        b = np.zeros(n)
        # Series pMOS chain: resistor i connects node i-1 to node i
        # (node -1 is the VDD rail, node n-1 is the output), present
        # when input i is low.
        for i, (resistance, value) in enumerate(zip(p.r_pullup, inputs)):
            if value:
                continue
            conductance = 1.0 / resistance
            if i == 0:
                g[0, 0] += conductance
                b[0] += conductance * p.vdd
            else:
                g[i - 1, i - 1] += conductance
                g[i, i] += conductance
                g[i - 1, i] -= conductance
                g[i, i - 1] -= conductance
        # Parallel nMOS on the output node, present when the input is
        # high.
        for resistance, value in zip(p.r_pulldown, inputs):
            if value:
                g[n - 1, n - 1] += 1.0 / resistance
        caps = np.array(list(p.c_internal) + [p.co])
        a = -g / caps[:, None]
        f = b / caps
        return a, f

    def _solve_segment(self, inputs: tuple[int, ...],
                       state0: np.ndarray) -> _SegmentSolution:
        """Eigen-solve one mode from the given initial state."""
        a, f = self._mode_matrices(inputs)
        n = self._n
        # Augmented autonomous system d/dt [V; 1] = M [V; 1].
        m = np.zeros((n + 1, n + 1))
        m[:n, :n] = a
        m[:n, n] = f
        eigenvalues, eigenvectors = np.linalg.eig(m)
        if np.max(np.abs(eigenvalues.imag)) > _IMAG_TOL * max(
                1.0, float(np.max(np.abs(eigenvalues.real)))):
            raise ParameterError("complex eigenvalues in RC network")
        eigenvalues = eigenvalues.real
        eigenvectors = eigenvectors.real
        extended = np.append(state0, 1.0)
        coefficients = np.linalg.solve(eigenvectors, extended)

        nodes: list[ExpSum] = []
        rates = eigenvalues
        slowest = 0.0
        for rate in rates:
            if rate < -1e-30:
                slowest = max(slowest, 1.0 / abs(rate))
        for node in range(n):
            terms = []
            offset = 0.0
            for k, rate in enumerate(rates):
                weight = coefficients[k] * eigenvectors[node, k]
                if abs(weight) < 1e-15:
                    continue
                if abs(rate) < 1e-6 / max(slowest, 1e-12):
                    offset += weight
                else:
                    terms.append((weight, rate))
            nodes.append(ExpSum.build(offset, terms))
        return _SegmentSolution(nodes=tuple(nodes),
                                slowest_tau=slowest or 1e-12)

    # ------------------------------------------------------------------
    # resting states
    # ------------------------------------------------------------------

    def resting_state(self, inputs: Sequence[int],
                      floating_value: float = 0.0) -> np.ndarray:
        """Steady-state node voltages for a held input combination.

        Floating internal nodes (cut off by conducting-side switches)
        have no defined equilibrium; they take *floating_value* — GND by
        default, the paper's worst case.
        """
        inputs = tuple(int(bool(v)) for v in inputs)
        a, f = self._mode_matrices(inputs)
        n = self._n
        state = np.full(n, float(floating_value))
        # Nodes that participate in dynamics reach A V + f = 0 on their
        # connected component; lstsq handles the singular (floating)
        # directions, which we then overwrite explicitly.
        solution, *_ = np.linalg.lstsq(a, -f, rcond=None)
        for node in range(n):
            if np.any(np.abs(a[node]) > 0.0):
                state[node] = solution[node]
            else:
                state[node] = float(floating_value)
        return state

    # ------------------------------------------------------------------
    # crossings
    # ------------------------------------------------------------------

    @staticmethod
    def _segment_crossings(expsum: ExpSum, threshold: float,
                           t_end: float) -> list[float]:
        """Crossings of a many-exponential sum via sampling + Brent."""
        if not expsum.coeffs:
            return []
        grid = np.linspace(0.0, t_end, _CROSSING_SAMPLES)
        values = expsum(grid) - threshold
        crossings: list[float] = []
        signs = np.sign(values)
        for i in np.nonzero(signs[1:] * signs[:-1] < 0)[0]:
            root = brentq(lambda t: expsum(t) - threshold,
                          grid[i], grid[i + 1], xtol=1e-20)
            crossings.append(float(root))
        for i in np.nonzero(signs == 0)[0]:
            crossings.append(float(grid[i]))
        return sorted(crossings)

    # ------------------------------------------------------------------
    # trace-level interface
    # ------------------------------------------------------------------

    def output_crossings_for_inputs(
            self, events_by_input: Sequence[Sequence[tuple[float, int]]],
            initial_inputs: Sequence[int] | None = None,
            initial_state: np.ndarray | None = None,
            t_max: float | None = None) -> list[tuple[float, int]]:
        """Digitized output for per-input transition streams.

        Args:
            events_by_input: one sorted ``(time, value)`` list per input.
            initial_inputs: input values before the first events
                (inferred from the first transitions by default).
            initial_state: node voltages at ``t = 0`` (resting state of
                the initial mode by default).
            t_max: stop searching for crossings at this time.
        """
        if len(events_by_input) != self._n:
            raise ParameterError(f"expected {self._n} input event "
                                 "streams")
        p = self.params
        if initial_inputs is None:
            initial_inputs = [1 - events[0][1] if events else 0
                              for events in events_by_input]
        values = [int(bool(v)) for v in initial_inputs]

        merged: list[tuple[float, int, int]] = []
        for index, events in enumerate(events_by_input):
            for t, v in events:
                if t < 0.0:
                    raise ParameterError("input events must have "
                                         "t >= 0")
                merged.append((t, index, int(v)))
        merged.sort()

        switches: list[tuple[float, tuple[int, ...]]] = []
        for t, index, value in merged:
            values[index] = value
            switches.append((t + p.delta_min, tuple(values)))

        mode = tuple(int(bool(v)) for v in initial_inputs)
        if initial_state is None:
            state = self.resting_state(mode)
        else:
            state = np.asarray(initial_state, dtype=float)

        crossings: list[tuple[float, int]] = []
        t_now = 0.0
        segment = self._solve_segment(mode, state)
        horizon = t_max if t_max is not None else math.inf
        pending = switches + [(None, None)]
        for switch_time, next_mode in pending:
            t_end = (switch_time if switch_time is not None
                     else min(horizon, t_now + 60.0 *
                              segment.slowest_tau + 1e-15))
            local_end = max(t_end - t_now, 0.0)
            vo = segment.output
            derivative = vo.derivative()
            for local_t in self._segment_crossings(vo, p.vth,
                                                   local_end):
                t_cross = t_now + local_t
                if t_cross > horizon:
                    continue
                direction = 1 if derivative(local_t) > 0 else 0
                if crossings and math.isclose(crossings[-1][0], t_cross,
                                              rel_tol=1e-9,
                                              abs_tol=1e-18):
                    continue
                crossings.append((t_cross, direction))
            if switch_time is None:
                break
            state = segment.state_at(switch_time - t_now)
            segment = self._solve_segment(next_mode, state)
            t_now = switch_time

        # Enforce alternation against the initial logical output.
        initial_output = int(not any(mode))
        cleaned: list[tuple[float, int]] = []
        current = initial_output
        for t, v in crossings:
            if v == current:
                continue
            cleaned.append((t, v))
            current = v
        return cleaned

    # ------------------------------------------------------------------
    # delays
    # ------------------------------------------------------------------

    def delay_falling(self, rise_times: Sequence[float]) -> float:
        """Falling-output MIS delay for per-input rise times.

        All inputs start low (gate resting high); input ``i`` rises at
        ``rise_times[i]``.  The delay is referenced to the earliest
        input, per the paper's convention.
        """
        if len(rise_times) != self._n:
            raise ParameterError(f"expected {self._n} rise times")
        earliest = min(rise_times)
        shift = -earliest if earliest < 0 else 0.0
        events = [[(t + shift, 1)] for t in rise_times]
        crossings = self.output_crossings_for_inputs(
            events, initial_inputs=[0] * self._n)
        # Mode switches are δ_min-deferred inside the crossing engine,
        # so the returned delay includes the pure delay already.
        for t, value in crossings:
            if value == 0:
                return t - (earliest + shift)
        raise NoCrossingError("output never falls")

    # ------------------------------------------------------------------
    # pairwise MIS sweeps (Δ between the first two inputs)
    # ------------------------------------------------------------------

    def _sweep(self, deltas, direction: str, engine) -> np.ndarray:
        """Pairwise MIS delays over ``Δ = t₁ − t₀`` of inputs 0 and 1.

        For the 2-input gate the sweep is routed through the batch
        delay engine (:mod:`repro.engine`) — the deferred-switch and
        added-``δ_min`` delay conventions are exactly equivalent there
        because the resting first segment absorbs the deferral.  For
        wider gates the remaining inputs switch together with the
        earlier of the pair and the scalar eigen-solver is used
        per point (finite Δ only).
        """
        d = np.asarray(deltas, dtype=float)
        if self._n == 2:
            from ..engine import get_engine  # local: avoid cycle
            backend = get_engine(engine)
            params = self.params.to_two_input()
            if direction == "falling":
                return backend.delays_falling(params, d)
            return backend.delays_rising(params, d)
        if not np.all(np.isfinite(d)):
            raise ParameterError(
                "sweeps of gates with more than two inputs require "
                "finite separations")
        flat = np.ravel(d)
        out = np.empty_like(flat)
        rest = [0.0] * (self._n - 2)
        for i, delta in enumerate(flat):
            pair = [max(0.0, -delta), max(0.0, delta)]
            if direction == "falling":
                out[i] = self.delay_falling(pair + rest)
            else:
                out[i] = self.delay_rising(pair + rest)
        return out.reshape(d.shape)

    def delays_falling_sweep(self, deltas, engine=None) -> np.ndarray:
        """Falling MIS delays for an array of pairwise separations."""
        return self._sweep(deltas, "falling", engine)

    def delays_rising_sweep(self, deltas, engine=None) -> np.ndarray:
        """Rising MIS delays for an array of pairwise separations."""
        return self._sweep(deltas, "rising", engine)

    def delay_rising(self, fall_times: Sequence[float],
                     internal_init: Sequence[float] | None = None
                     ) -> float:
        """Rising-output MIS delay for per-input fall times.

        All inputs start high (gate resting low); input ``i`` falls at
        ``fall_times[i]``.  Referenced to the latest input.  Internal
        chain nodes rest at *internal_init* (GND worst case).
        """
        if len(fall_times) != self._n:
            raise ParameterError(f"expected {self._n} fall times")
        earliest = min(fall_times)
        shift = -earliest if earliest < 0 else 0.0
        events = [[(t + shift, 0)] for t in fall_times]
        if internal_init is None:
            internal_init = [0.0] * (self._n - 1)
        state0 = np.array(list(internal_init) + [0.0])
        crossings = self.output_crossings_for_inputs(
            events, initial_inputs=[1] * self._n,
            initial_state=state0)
        latest = max(fall_times) + shift
        for t, value in crossings:
            if value == 1:
                return t - latest
        raise NoCrossingError("output never rises")
