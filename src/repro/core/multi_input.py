"""Generalized n-input NOR hybrid model (paper Section VII future work).

The paper's model is a 2-input NOR; its construction generalizes
directly to n inputs:

* the pull-up network is a *series chain* of n pMOS switches from VDD
  to the output with n−1 internal nodes (each with a parasitic
  capacitance),
* the pull-down network is n *parallel* nMOS switches,
* every input state selects one linear RC network, i.e. one
  n-dimensional ODE system ``C V' = −G V + b``.

For n = 2 this reduces — exactly, as the test-suite verifies — to the
closed-form model of :mod:`repro.core.hybrid_model`.  For general n the
per-mode systems are solved by eigendecomposition of the augmented
system matrix (RC networks have real, non-positive eigenvalues), giving
each node voltage as a sum of up to n real exponentials; output
threshold crossings are located by dense sampling plus Brent refinement.

Conventions mirror the 2-input model: input ``i`` gates the i-th pMOS
of the chain counted *from the rail* and the i-th parallel nMOS;
``delta_min`` defers mode switches; internal nodes rest at the paper's
worst case (GND) when their analog history is unknown.

Besides the scalar trace interface, the model is *array-native* over
Δ-vectors: :meth:`GeneralizedNorModel.delays_falling_batch` /
:meth:`~GeneralizedNorModel.delays_rising_batch` evaluate whole
``(..., n−1)`` grids of sibling offsets at once through a
:class:`CompiledNorKernel`.  The kernel stacks the per-input-state
eigendecompositions into dense ``(2^n, ...)`` tensors (persisted
across processes via :mod:`repro.cache` when a cache directory is
configured), assigns every ``(row, segment)`` its mode id with one
vectorized cumulative sum over the event ordering, and walks all rows
segment-lockstep: state propagation and eigen-projection are batched
einsums over the per-row mode tensors, threshold crossings are
bracketed on a *shared* time grid (one ``exp`` basis per phase, one
GEMM for the whole batch) and refined by a safeguarded vectorized
Newton iteration with a lockstep-bisection fallback.  This is the
engine behind the ``delays_falling_n`` / ``delays_rising_n`` entry
points of :mod:`repro.engine`.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from collections.abc import Sequence

import numpy as np
from scipy.optimize import brentq

from ..errors import NoCrossingError, ParameterError
from ..obs.trace import span as _span
from .parameters import PAPER_TABLE_I, NorGateParameters
from .solutions import ExpSum

__all__ = ["CompiledNorKernel", "GeneralizedNorParameters",
           "GeneralizedNorModel", "compiled_nor_kernel",
           "delta_vector_grid", "generalized_model",
           "paper_generalized", "sibling_offsets"]

#: Relative eigenvalue imaginary part treated as numerical noise.
_IMAG_TOL = 1e-8
#: Samples used to bracket output crossings per segment.
_CROSSING_SAMPLES = 1024
#: Safeguarded Newton iterations of the batched crossing refinement
#: (quadratic convergence lands well inside this; leftover rows fall
#: back to lockstep bisection).
_NEWTON_STEPS = 12
#: Lockstep bisection steps of the non-convergence fallback.
_BATCH_BISECT_STEPS = 128
#: Bracketing samples per 8-τ phase of the batched crossing search.
#: 129 keeps the bracket cells (τ/16) finer than the scalar
#: reference's coarsest sampling (its 1024-point grid over a 60-τ
#: final segment is ~τ/17), so the batch path never misses a feature
#: the reference resolves.
_BATCH_SAMPLES = 129
#: Row chunk of the batched crossing search (bounds the temporary
#: ``rows x samples`` value matrix / exponential tensor to a few
#: tens of MB).
_BATCH_CHUNK = 2048
#: Finite stand-in span for ``±inf`` sibling offsets, seconds.  One
#: second is ~9 orders of magnitude beyond any gate's settling region,
#: so clipping offsets to ``reference ± _OFFSET_SPAN`` lands on the
#: SIS plateaus without ever producing ``inf − inf`` artifacts.
_OFFSET_SPAN = 1.0


def sibling_offsets(times, reference, span: float = _OFFSET_SPAN
                    ) -> np.ndarray:
    """Δ-vector of per-input event times relative to input 0.

    The engine entry points take ``(n−1)`` sibling offsets
    ``Δ_j = t_{j+1} − t_0``; callers that carry *absolute* event times
    (the STA propagation, the table replay channel) may hold ``±inf``
    entries per the never/long-ago arrival conventions.  Differencing
    those naively produces ``inf − inf = NaN``, so every time is first
    clipped to ``reference ± span`` — beyond the settling region the
    model sits on its SIS plateaus, so the clip does not change any
    delay.

    Parameters
    ----------
    times : array_like of float
        Per-input event times, seconds; leading axis is the input
        index (length n), trailing axes broadcast.  ``±inf`` allowed.
    reference : array_like of float
        Finite reference time(s) the offsets are anchored around
        (the earlier/later input per the direction conventions).
    span : float, optional
        Clip half-width in seconds (default 1.0 — far beyond any
        settling time).

    Returns
    -------
    numpy.ndarray
        Finite offsets ``t_j − t_0`` with the input axis moved last:
        shape ``times.shape[1:] + (n−1,)``.
    """
    t = np.asarray(times, dtype=float)
    ref = np.asarray(reference, dtype=float)
    clipped = np.clip(t, ref - span, ref + span)
    return np.moveaxis(clipped[1:] - clipped[0], 0, -1)


def offset_rows(num_inputs: int, deltas
                ) -> tuple[np.ndarray, tuple[int, ...]]:
    """Validate and flatten a Δ-vector grid to ``(rows, n−1)``.

    The shared input contract of every Δ-vector entry point (the
    batched model solver and all engine backends): the trailing axis
    must carry one offset per sibling input and NaN is rejected;
    ``±inf`` entries pass through (callers clip them onto the
    settling region).

    Parameters
    ----------
    num_inputs : int
        Gate width ``n``.
    deltas : array_like of float
        Sibling offsets, shape ``(..., n−1)``.

    Returns
    -------
    tuple
        ``(rows, shape)`` — the flattened ``(rows, n−1)`` float
        array and the leading shape ``deltas.shape[:-1]`` results
        reshape back to.

    Raises
    ------
    ParameterError
        On a wrong trailing axis or NaN entries.
    """
    d = np.asarray(deltas, dtype=float)
    if d.ndim == 0 or d.shape[-1] != num_inputs - 1:
        raise ParameterError(
            f"delta vectors must have a trailing axis of length "
            f"{num_inputs - 1} (one offset per sibling input), got "
            f"shape {d.shape}")
    flat = d.reshape(-1, num_inputs - 1)
    if np.isnan(flat).any():
        raise ParameterError("sibling offsets must not be NaN")
    return flat, d.shape[:-1]


def _first_bracket(values: np.ndarray, downward: bool
                   ) -> tuple[np.ndarray, np.ndarray]:
    """First directed sign change along each row of sampled values.

    *values* is ``(rows, samples)`` of ``f(t) − threshold`` on a
    monotone time grid.  Returns ``(has, first)`` — whether each row
    brackets a crossing and the index of the grid cell that does.
    """
    above = values > 0.0
    if downward:
        hit = above[:, :-1] & ~above[:, 1:]
    else:
        hit = ~above[:, :-1] & above[:, 1:]
    return hit.any(axis=1), np.argmax(hit, axis=1)


def _newton_bisect_refine(weights, rates, lo, hi, threshold: float,
                          downward: bool,
                          newton_steps: "int | None" = None
                          ) -> np.ndarray:
    """Refine bracketed exp-sum crossings: vectorized Newton with a
    lockstep-bisection fallback.

    Solves ``f(t) = Σ_k weights[r, k]·exp(rates[k]·t) − threshold = 0``
    per row inside the bracket ``[lo[r], hi[r]]``.  Every Newton step
    first shrinks the bracket with the current iterate (so the
    invariant — downward: ``f(lo) > 0 ≥ f(hi)``, upward: ``f(lo) ≤ 0 <
    f(hi)`` — is preserved), then takes the Newton candidate when it
    lands strictly inside the bracket and the midpoint otherwise.  A
    row is converged when its bracket is adjacent-float tight *or*
    its Newton step shrinks below the same tolerance (Newton
    typically approaches the root from one side, so only one bracket
    end tightens).  Rows with neither after *newton_steps* iterations
    finish under plain lockstep bisection, so the result is always a
    point within ``1e-15·|t| + 1e-26`` of the bracketed root, the
    same precision as the pre-Newton lockstep search.

    Parameters
    ----------
    weights : array_like of float
        Per-row exponential coefficients, shape ``(rows, modes)``.
    rates : array_like of float
        Exponential rates: shape ``(modes,)`` when shared across the
        batch (the n-input kernel), or ``(rows, modes)`` when every
        row carries its own eigenvalues (the parameter-block kernels
        of :mod:`repro.engine.blocks`).
    lo, hi : array_like of float
        Bracket endpoints per row (finite; ``lo < hi``).
    threshold : float or array_like of float
        Crossing level — scalar, or one level per row.
    downward : bool
        Crossing direction (decides which bracket side an iterate
        updates).
    newton_steps : int, optional
        Newton iteration budget before the bisection fallback
        (default :data:`_NEWTON_STEPS`).

    Returns
    -------
    numpy.ndarray
        Bracket midpoints after refinement, shape ``(rows,)``.
    """
    if newton_steps is None:
        newton_steps = _NEWTON_STEPS
    weights = np.asarray(weights, dtype=float)
    rates = np.asarray(rates, dtype=float)
    threshold = np.asarray(threshold, dtype=float)
    lo = np.array(lo, dtype=float)
    hi = np.array(hi, dtype=float)
    # Shared (modes,) and per-row (rows, modes) rates broadcast the
    # same way against the (rows, modes) weights and (rows, 1) times.
    wr = weights * rates
    t = 0.5 * (lo + hi)
    step = np.full(t.shape, math.inf)
    # Lockstep over the full batch: every row converges within a few
    # iterations of its neighbours, so index compression would cost
    # more in small-array dispatch than the spare iterations do.
    with np.errstate(divide="ignore", invalid="ignore"):
        for iteration in range(newton_steps):
            e = np.exp(t[:, None] * rates)
            f = np.einsum("rk,rk->r", weights, e) - threshold
            side = f > 0.0 if downward else f <= 0.0
            lo = np.where(side, t, lo)
            hi = np.where(side, hi, t)
            fp = np.einsum("rk,rk->r", wr, e)
            tn = t - f / fp
            # Non-strict bounds: a candidate tying the bracket end it
            # just updated is the converged root, not an escape (NaN
            # and ±inf candidates compare False and take the
            # midpoint).
            inside = (tn >= lo) & (tn <= hi)
            tn = np.where(inside, tn, 0.5 * (lo + hi))
            step = np.abs(tn - t)
            t = tn
            if (iteration >= 3
                    and np.all(step <= 1e-15 * np.abs(t) + 1e-26)):
                break
    pending = np.nonzero(step > 1e-15 * np.abs(t) + 1e-26)[0]
    if pending.size:
        la, ha, w = lo[pending], hi[pending], weights[pending]
        r = rates[pending] if rates.ndim == 2 else rates
        level = threshold[pending] if threshold.ndim else threshold
        for _ in range(_BATCH_BISECT_STEPS):
            mid = 0.5 * (la + ha)
            value = np.einsum(
                "rk,rk->r", w,
                np.exp(mid[:, None] * r)) - level
            upper = value > 0.0 if downward else value <= 0.0
            la = np.where(upper, mid, la)
            ha = np.where(upper, ha, mid)
            if np.all(ha - la <= 1e-15 * np.abs(ha) + 1e-26):
                break
        t[pending] = 0.5 * (la + ha)
    return t


@dataclasses.dataclass(frozen=True)
class GeneralizedNorParameters:
    """Electrical parameters of an n-input NOR (SI units).

    Attributes:
        r_pullup: on-resistances of the series pMOS chain, rail side
            first (length n).
        r_pulldown: on-resistances of the parallel nMOS (length n).
        c_internal: capacitances of the n−1 internal chain nodes.
        co: output capacitance.
        vdd: supply voltage.
        delta_min: pure delay deferring mode switches.
    """

    r_pullup: tuple[float, ...]
    r_pulldown: tuple[float, ...]
    c_internal: tuple[float, ...]
    co: float
    vdd: float = 0.8
    delta_min: float = 0.0

    def __post_init__(self) -> None:
        # Coerce sequence fields to tuples so instances built from
        # JSON payloads (lists) stay hashable / cacheable.
        for name in ("r_pullup", "r_pulldown", "c_internal"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name,
                                   tuple(float(v) for v in value))
        n = len(self.r_pullup)
        if n < 2:
            raise ParameterError("need at least two inputs")
        if len(self.r_pulldown) != n:
            raise ParameterError("r_pulldown must match r_pullup")
        if len(self.c_internal) != n - 1:
            raise ParameterError("need exactly n-1 internal "
                                 "capacitances")
        for value in (*self.r_pullup, *self.r_pulldown,
                      *self.c_internal, self.co, self.vdd):
            if not math.isfinite(value) or value <= 0.0:
                raise ParameterError("all electrical parameters must "
                                     "be positive and finite")
        if self.delta_min < 0.0:
            raise ParameterError("delta_min must be non-negative")

    @property
    def num_inputs(self) -> int:
        return len(self.r_pullup)

    @property
    def vth(self) -> float:
        return self.vdd / 2.0

    @classmethod
    def from_two_input(cls, params: NorGateParameters
                       ) -> "GeneralizedNorParameters":
        """Map the paper's 2-input parameters onto the general form."""
        return cls(r_pullup=(params.r1, params.r2),
                   r_pulldown=(params.r3, params.r4),
                   c_internal=(params.cn,),
                   co=params.co, vdd=params.vdd,
                   delta_min=params.delta_min)

    def to_two_input(self) -> NorGateParameters:
        """Inverse of :meth:`from_two_input` (2-input gates only).

        Raises:
            ParameterError: if the gate has more than two inputs.
        """
        if self.num_inputs != 2:
            raise ParameterError(
                f"cannot reduce a {self.num_inputs}-input gate to the "
                "paper's 2-input parameter set")
        return NorGateParameters(
            r1=self.r_pullup[0], r2=self.r_pullup[1],
            r3=self.r_pulldown[0], r4=self.r_pulldown[1],
            cn=self.c_internal[0], co=self.co, vdd=self.vdd,
            delta_min=self.delta_min)

    def replace(self, **changes) -> "GeneralizedNorParameters":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def without_delta_min(self) -> "GeneralizedNorParameters":
        """Return a copy with the pure delay removed."""
        return self.replace(delta_min=0.0)

    def as_dict(self) -> dict:
        """Plain-JSON representation (tuples rendered as lists)."""
        return {
            "r_pullup": list(self.r_pullup),
            "r_pulldown": list(self.r_pulldown),
            "c_internal": list(self.c_internal),
            "co": self.co,
            "vdd": self.vdd,
            "delta_min": self.delta_min,
        }


def paper_generalized(num_inputs: int,
                      params: NorGateParameters = PAPER_TABLE_I
                      ) -> GeneralizedNorParameters:
    """An n-input NOR parameter set extrapolated from a 2-input one.

    Extends the paper's Table I conventions to a taller stack: the
    rail-side pMOS keeps ``R1`` and every further chain stage repeats
    ``R2``; every parallel nMOS beyond the first pair repeats ``R4``;
    every internal chain node repeats ``CN``.

    Parameters
    ----------
    num_inputs : int
        Gate width ``n >= 2``.
    params : NorGateParameters, optional
        The 2-input base set (default: the paper's Table I).

    Returns
    -------
    GeneralizedNorParameters
        The extrapolated n-input set; for ``n = 2`` it equals
        :meth:`GeneralizedNorParameters.from_two_input`.
    """
    if num_inputs < 2:
        raise ParameterError("need at least two inputs")
    extra = num_inputs - 2
    return GeneralizedNorParameters(
        r_pullup=(params.r1, params.r2) + (params.r2,) * extra,
        r_pulldown=(params.r3, params.r4) + (params.r4,) * extra,
        c_internal=(params.cn,) * (num_inputs - 1),
        co=params.co, vdd=params.vdd, delta_min=params.delta_min)


@dataclasses.dataclass(frozen=True)
class _SegmentSolution:
    """Node voltages of one mode segment as per-node ExpSums."""

    nodes: tuple[ExpSum, ...]
    slowest_tau: float

    @property
    def output(self) -> ExpSum:
        return self.nodes[-1]

    def state_at(self, t: float) -> np.ndarray:
        return np.array([node(t) for node in self.nodes])


class GeneralizedNorModel:
    """MIS-aware delay model of an n-input CMOS NOR gate."""

    def __init__(self, params: GeneralizedNorParameters):
        self.params = params
        self._n = params.num_inputs
        #: Per-input-state eigendecompositions.  A plain dict rather
        #: than an lru_cache: an n-input gate has 2^n modes and the
        #: batched solver revisits all of them, so a bounded cache
        #: would thrash for wide gates (and a cache on the *method*
        #: would pin every model instance alive globally).
        self._eig_cache: dict[tuple[int, ...], tuple] = {}
        self._settle: float | None = None
        self._kernel: "CompiledNorKernel | None" = None

    # ------------------------------------------------------------------
    # per-mode linear systems
    # ------------------------------------------------------------------

    @functools.lru_cache(maxsize=64)
    def _mode_matrices(self, inputs: tuple[int, ...]
                       ) -> tuple[np.ndarray, np.ndarray]:
        """System matrix ``A = −C⁻¹G`` and forcing ``f = C⁻¹b``.

        States are the chain nodes rail-side first, output last.
        """
        p = self.params
        n = self._n
        g = np.zeros((n, n))
        b = np.zeros(n)
        # Series pMOS chain: resistor i connects node i-1 to node i
        # (node -1 is the VDD rail, node n-1 is the output), present
        # when input i is low.
        for i, (resistance, value) in enumerate(zip(p.r_pullup, inputs)):
            if value:
                continue
            conductance = 1.0 / resistance
            if i == 0:
                g[0, 0] += conductance
                b[0] += conductance * p.vdd
            else:
                g[i - 1, i - 1] += conductance
                g[i, i] += conductance
                g[i - 1, i] -= conductance
                g[i, i - 1] -= conductance
        # Parallel nMOS on the output node, present when the input is
        # high.
        for resistance, value in zip(p.r_pulldown, inputs):
            if value:
                g[n - 1, n - 1] += 1.0 / resistance
        caps = np.array(list(p.c_internal) + [p.co])
        a = -g / caps[:, None]
        f = b / caps
        return a, f

    def _solve_segment(self, inputs: tuple[int, ...],
                       state0: np.ndarray) -> _SegmentSolution:
        """Eigen-solve one mode from the given initial state."""
        a, f = self._mode_matrices(inputs)
        n = self._n
        # Augmented autonomous system d/dt [V; 1] = M [V; 1].
        m = np.zeros((n + 1, n + 1))
        m[:n, :n] = a
        m[:n, n] = f
        eigenvalues, eigenvectors = np.linalg.eig(m)
        if np.max(np.abs(eigenvalues.imag)) > _IMAG_TOL * max(
                1.0, float(np.max(np.abs(eigenvalues.real)))):
            raise ParameterError("complex eigenvalues in RC network")
        eigenvalues = eigenvalues.real
        eigenvectors = eigenvectors.real
        extended = np.append(state0, 1.0)
        coefficients = np.linalg.solve(eigenvectors, extended)

        nodes: list[ExpSum] = []
        rates = eigenvalues
        slowest = 0.0
        for rate in rates:
            if rate < -1e-30:
                slowest = max(slowest, 1.0 / abs(rate))
        for node in range(n):
            terms = []
            offset = 0.0
            for k, rate in enumerate(rates):
                weight = coefficients[k] * eigenvectors[node, k]
                if abs(weight) < 1e-15:
                    continue
                if abs(rate) < 1e-6 / max(slowest, 1e-12):
                    offset += weight
                else:
                    terms.append((weight, rate))
            nodes.append(ExpSum.build(offset, terms))
        return _SegmentSolution(nodes=tuple(nodes),
                                slowest_tau=slowest or 1e-12)

    # ------------------------------------------------------------------
    # resting states
    # ------------------------------------------------------------------

    def resting_state(self, inputs: Sequence[int],
                      floating_value: float = 0.0) -> np.ndarray:
        """Steady-state node voltages for a held input combination.

        Floating internal nodes (cut off by conducting-side switches)
        have no defined equilibrium; they take *floating_value* — GND by
        default, the paper's worst case.
        """
        inputs = tuple(int(bool(v)) for v in inputs)
        a, f = self._mode_matrices(inputs)
        n = self._n
        state = np.full(n, float(floating_value))
        # Nodes that participate in dynamics reach A V + f = 0 on their
        # connected component; lstsq handles the singular (floating)
        # directions, which we then overwrite explicitly.
        solution, *_ = np.linalg.lstsq(a, -f, rcond=None)
        for node in range(n):
            if np.any(np.abs(a[node]) > 0.0):
                state[node] = solution[node]
            else:
                state[node] = float(floating_value)
        return state

    # ------------------------------------------------------------------
    # batched Δ-vector evaluation
    # ------------------------------------------------------------------

    def _mode_eig(self, inputs: tuple[int, ...]
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Cached eigendecomposition of one mode's augmented system.

        Returns ``(rates, vectors, inverse, slowest_tau)`` of the
        autonomous matrix ``M = [[A, f], [0, 0]]`` — the per-
        ``(params, input-state)`` solution every batched segment of
        that mode reuses.
        """
        cached = self._eig_cache.get(inputs)
        if cached is not None:
            return cached
        a, f = self._mode_matrices(inputs)
        n = self._n
        m = np.zeros((n + 1, n + 1))
        m[:n, :n] = a
        m[:n, n] = f
        eigenvalues, eigenvectors = np.linalg.eig(m)
        if np.max(np.abs(eigenvalues.imag)) > _IMAG_TOL * max(
                1.0, float(np.max(np.abs(eigenvalues.real)))):
            raise ParameterError("complex eigenvalues in RC network")
        rates = eigenvalues.real
        vectors = eigenvectors.real
        try:
            inverse = np.linalg.inv(vectors)
        except np.linalg.LinAlgError:
            raise ParameterError(
                "defective mode system (repeated eigenvalues without "
                "a full eigenbasis)") from None
        # Conserved directions (the affine constant, and the total
        # charge of rail-disconnected chain islands in partially-open
        # modes) are exact zero eigenvalues that np.linalg.eig may
        # report as numerical dust (|λ| ~ 1e-17 of the spectral
        # radius).  Left in place they masquerade as astronomically
        # slow time constants and poison :meth:`settle_time`; snap
        # them to zero — physical RC rates sit many orders above the
        # threshold.
        tol = 1e-9 * float(np.max(np.abs(rates)))
        rates = np.where(np.abs(rates) < tol, 0.0, rates)
        slowest = 0.0
        for rate in rates:
            if rate < 0.0:
                slowest = max(slowest, 1.0 / abs(rate))
        result = (rates, vectors, inverse, slowest or 1e-12)
        self._eig_cache[inputs] = result
        return result

    def settle_time(self) -> float:
        """Time after which every mode has settled, seconds.

        ``60x`` the slowest RC time constant over all ``2^n`` input
        states — sibling offsets beyond ``±settle_time()`` are
        indistinguishable from ``±inf`` (the SIS plateaus), which is
        what the batched entry points clip them to.  Computed once
        per model and cached.
        """
        if self._settle is None:
            slowest = 0.0
            for state in range(2 ** self._n):
                inputs = tuple((state >> i) & 1
                               for i in range(self._n))
                slowest = max(slowest, self._mode_eig(inputs)[3])
            self._settle = 60.0 * slowest
        return self._settle

    def kernel(self) -> "CompiledNorKernel":
        """The flattened batch evaluator, compiled once per model.

        Building the kernel stacks (or loads from the persistent
        :mod:`repro.cache` store) the eigendecompositions of all
        ``2^n`` input states; both batched delay entry points
        delegate to it.
        """
        if self._kernel is None:
            self._kernel = CompiledNorKernel(self)
        return self._kernel

    def _delays_batch(self, deltas, direction: str,
                      internal_init: float = 0.0) -> np.ndarray:
        """Batched MIS delays over a grid of sibling offset vectors.

        See :meth:`delays_falling_batch` / :meth:`delays_rising_batch`
        for the per-direction conventions.
        """
        return self.kernel().evaluate(deltas, direction, internal_init)

    def delays_falling_batch(self, deltas) -> np.ndarray:
        """Falling MIS delays for a grid of sibling offset vectors.

        All inputs start low; input 0 rises at ``t = 0`` and sibling
        ``j`` at ``deltas[..., j-1]`` (``±inf`` clips to the SIS
        plateaus).  Delays are referenced to the *earliest* input and
        include ``δ_min``, matching :meth:`delay_falling`.

        Parameters
        ----------
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; NaN rejected.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, shape ``deltas.shape[:-1]``.
        """
        return self._delays_batch(deltas, "falling")

    def delays_rising_batch(self, deltas,
                            internal_init: float = 0.0) -> np.ndarray:
        """Rising MIS delays for a grid of sibling offset vectors.

        All inputs start high; input 0 falls at ``t = 0`` and sibling
        ``j`` at ``deltas[..., j-1]``.  Delays are referenced to the
        *latest* input and include ``δ_min``, matching
        :meth:`delay_rising`.

        Parameters
        ----------
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; NaN rejected.
        internal_init : float, optional
            Initial voltage of every internal chain node, volts
            (default 0.0, the paper's GND worst case).

        Returns
        -------
        numpy.ndarray
            Delays in seconds, shape ``deltas.shape[:-1]``.
        """
        return self._delays_batch(deltas, "rising",
                                  float(internal_init))

    # ------------------------------------------------------------------
    # crossings
    # ------------------------------------------------------------------

    @staticmethod
    def _segment_crossings(expsum: ExpSum, threshold: float,
                           t_end: float) -> list[float]:
        """Crossings of a many-exponential sum via sampling + Brent."""
        if not expsum.coeffs:
            return []
        grid = np.linspace(0.0, t_end, _CROSSING_SAMPLES)
        values = expsum(grid) - threshold
        crossings: list[float] = []
        signs = np.sign(values)
        for i in np.nonzero(signs[1:] * signs[:-1] < 0)[0]:
            root = brentq(lambda t: expsum(t) - threshold,
                          grid[i], grid[i + 1], xtol=1e-20)
            crossings.append(float(root))
        for i in np.nonzero(signs == 0)[0]:
            crossings.append(float(grid[i]))
        return sorted(crossings)

    # ------------------------------------------------------------------
    # trace-level interface
    # ------------------------------------------------------------------

    def output_crossings_for_inputs(
            self, events_by_input: Sequence[Sequence[tuple[float, int]]],
            initial_inputs: Sequence[int] | None = None,
            initial_state: np.ndarray | None = None,
            t_max: float | None = None) -> list[tuple[float, int]]:
        """Digitized output for per-input transition streams.

        Args:
            events_by_input: one sorted ``(time, value)`` list per input.
            initial_inputs: input values before the first events
                (inferred from the first transitions by default).
            initial_state: node voltages at ``t = 0`` (resting state of
                the initial mode by default).
            t_max: stop searching for crossings at this time.
        """
        if len(events_by_input) != self._n:
            raise ParameterError(f"expected {self._n} input event "
                                 "streams")
        p = self.params
        if initial_inputs is None:
            initial_inputs = [1 - events[0][1] if events else 0
                              for events in events_by_input]
        values = [int(bool(v)) for v in initial_inputs]

        merged: list[tuple[float, int, int]] = []
        for index, events in enumerate(events_by_input):
            for t, v in events:
                if t < 0.0:
                    raise ParameterError("input events must have "
                                         "t >= 0")
                merged.append((t, index, int(v)))
        merged.sort()

        switches: list[tuple[float, tuple[int, ...]]] = []
        for t, index, value in merged:
            values[index] = value
            switches.append((t + p.delta_min, tuple(values)))

        mode = tuple(int(bool(v)) for v in initial_inputs)
        if initial_state is None:
            state = self.resting_state(mode)
        else:
            state = np.asarray(initial_state, dtype=float)

        crossings: list[tuple[float, int]] = []
        t_now = 0.0
        segment = self._solve_segment(mode, state)
        horizon = t_max if t_max is not None else math.inf
        pending = switches + [(None, None)]
        for switch_time, next_mode in pending:
            t_end = (switch_time if switch_time is not None
                     else min(horizon, t_now + 60.0 *
                              segment.slowest_tau + 1e-15))
            local_end = max(t_end - t_now, 0.0)
            vo = segment.output
            derivative = vo.derivative()
            for local_t in self._segment_crossings(vo, p.vth,
                                                   local_end):
                t_cross = t_now + local_t
                if t_cross > horizon:
                    continue
                direction = 1 if derivative(local_t) > 0 else 0
                if crossings and math.isclose(crossings[-1][0], t_cross,
                                              rel_tol=1e-9,
                                              abs_tol=1e-18):
                    continue
                crossings.append((t_cross, direction))
            if switch_time is None:
                break
            state = segment.state_at(switch_time - t_now)
            segment = self._solve_segment(next_mode, state)
            t_now = switch_time

        # Enforce alternation against the initial logical output.
        initial_output = int(not any(mode))
        cleaned: list[tuple[float, int]] = []
        current = initial_output
        for t, v in crossings:
            if v == current:
                continue
            cleaned.append((t, v))
            current = v
        return cleaned

    # ------------------------------------------------------------------
    # delays
    # ------------------------------------------------------------------

    def delay_falling(self, rise_times: Sequence[float]) -> float:
        """Falling-output MIS delay for per-input rise times.

        All inputs start low (gate resting high); input ``i`` rises at
        ``rise_times[i]``.  The delay is referenced to the earliest
        input, per the paper's convention.
        """
        if len(rise_times) != self._n:
            raise ParameterError(f"expected {self._n} rise times")
        earliest = min(rise_times)
        shift = -earliest if earliest < 0 else 0.0
        events = [[(t + shift, 1)] for t in rise_times]
        crossings = self.output_crossings_for_inputs(
            events, initial_inputs=[0] * self._n)
        # Mode switches are δ_min-deferred inside the crossing engine,
        # so the returned delay includes the pure delay already.
        for t, value in crossings:
            if value == 0:
                return t - (earliest + shift)
        raise NoCrossingError("output never falls")

    # ------------------------------------------------------------------
    # pairwise MIS sweeps (Δ between the first two inputs)
    # ------------------------------------------------------------------

    def _sweep(self, deltas, direction: str, engine) -> np.ndarray:
        """Pairwise MIS delays over ``Δ = t₁ − t₀`` of inputs 0 and 1.

        Routed through the delay-engine seam of :mod:`repro.engine`
        in both arities — the deferred-switch and added-``δ_min``
        delay conventions are exactly equivalent there because the
        resting first segment absorbs the deferral.  For the 2-input
        gate this is the closed-form batch path; for wider gates the
        remaining inputs switch together with the *earlier* of the
        pair and the Δ-vector entry points evaluate the grid
        (``±inf`` separations clip to the SIS plateaus).
        """
        # Local import: repro.engine imports this module.
        from ..engine import delays_for_direction, get_engine
        d = np.asarray(deltas, dtype=float)
        backend = get_engine(engine)
        if self._n == 2:
            return delays_for_direction(backend, direction,
                                        self.params.to_two_input(), d)
        # Absolute switch times (0, Δ, 0, …, 0) relative to input 0:
        # the trailing inputs follow the earlier of the pair, i.e.
        # their offsets are min(0, Δ).
        with np.errstate(invalid="ignore"):
            rest = np.minimum(0.0, d)
        matrix = np.stack([d] + [rest] * (self._n - 2), axis=-1)
        return delays_for_direction(backend, direction, self.params,
                                    matrix)

    def delays_falling_sweep(self, deltas, engine=None) -> np.ndarray:
        """Falling MIS delays for an array of pairwise separations."""
        return self._sweep(deltas, "falling", engine)

    def delays_rising_sweep(self, deltas, engine=None) -> np.ndarray:
        """Rising MIS delays for an array of pairwise separations."""
        return self._sweep(deltas, "rising", engine)

    def delay_rising(self, fall_times: Sequence[float],
                     internal_init: Sequence[float] | None = None
                     ) -> float:
        """Rising-output MIS delay for per-input fall times.

        All inputs start high (gate resting low); input ``i`` falls at
        ``fall_times[i]``.  Referenced to the latest input.  Internal
        chain nodes rest at *internal_init* (GND worst case).
        """
        if len(fall_times) != self._n:
            raise ParameterError(f"expected {self._n} fall times")
        earliest = min(fall_times)
        shift = -earliest if earliest < 0 else 0.0
        events = [[(t + shift, 0)] for t in fall_times]
        if internal_init is None:
            internal_init = [0.0] * (self._n - 1)
        state0 = np.array(list(internal_init) + [0.0])
        crossings = self.output_crossings_for_inputs(
            events, initial_inputs=[1] * self._n,
            initial_state=state0)
        latest = max(fall_times) + shift
        for t, value in crossings:
            if value == 1:
                return t - latest
        raise NoCrossingError("output never rises")


class CompiledNorKernel:
    """Flattened, mode-stacked evaluator of the batched Δ-vector path.

    Compiling the kernel materializes the eigendecompositions of all
    ``2^n`` input states of one :class:`GeneralizedNorModel` into
    dense tensors indexed by *mode id* (the integer whose bit ``i`` is
    the value of input ``i``)::

        rates    (2^n, n+1)        eigenrates of the augmented system
        vectors  (2^n, n+1, n+1)   eigenvectors (columns)
        inverse  (2^n, n+1, n+1)   eigenvector inverses
        out      (2^n, n+1)        output row of ``vectors``
        slow     (2^n,)            slowest time constant per mode

    With the per-mode data stacked, :meth:`evaluate` needs no
    per-event-ordering Python grouping: each ``(row, segment)`` pair
    gets its mode id from one cumulative sum over the sorted event
    bits, eigen-projection and state propagation are batched einsums
    over the per-row mode tensors, and the threshold-crossing search
    runs segment-lockstep with at most one call per *mode* (``≤ 2^n``
    total instead of ``orderings × n``).

    The crossing search brackets on a **shared** time grid: rows of
    one mode walking the same 8-τ phase all sample the identical
    instants, so the exponential basis ``exp(t ⊗ rates)`` is computed
    once per phase and the sampled values are a single GEMM
    (``weights @ basis.T``).  Rows whose remaining window is shorter
    than a phase (at most once per row) fall back to per-row grids.
    Bracketed rows are refined by :func:`_newton_bisect_refine`.

    When a persistent store is active (see :mod:`repro.cache`), the
    stacked eigen tensors are loaded from / saved to disk keyed on the
    parameter content, so any process sharing the cache directory
    skips the ``2^n`` eigendecompositions entirely.
    """

    def __init__(self, model: GeneralizedNorModel):
        self._model = model
        self.num_inputs = model._n
        self._vth = model.params.vth
        n = model._n
        modes = 1 << n
        bundle = self._load(modes)
        if bundle is None:
            rates = np.empty((modes, n + 1))
            vectors = np.empty((modes, n + 1, n + 1))
            inverse = np.empty((modes, n + 1, n + 1))
            slow = np.empty(modes)
            with _span("kernel.eig", n=n, modes=modes):
                for mode in range(modes):
                    inputs = tuple((mode >> i) & 1
                                   for i in range(n))
                    (rates[mode], vectors[mode], inverse[mode],
                     slow[mode]) = model._mode_eig(inputs)
            self._store(rates, vectors, inverse, slow)
        else:
            rates, vectors, inverse, slow = bundle
            # Seed the model's per-mode cache so the scalar paths and
            # settle_time() share the loaded decompositions.
            for mode in range(modes):
                inputs = tuple((mode >> i) & 1 for i in range(n))
                model._eig_cache.setdefault(
                    inputs, (rates[mode], vectors[mode],
                             inverse[mode], float(slow[mode])))
        self._rates = rates
        self._vectors = vectors
        self._inverse = inverse
        self._out = np.ascontiguousarray(vectors[:, n - 1, :])
        self._slow = slow

    # ------------------------------------------------------------------
    # persistent eigendecomposition cache
    # ------------------------------------------------------------------

    def _cache_key(self) -> str:
        from .. import cache
        return cache.content_key({
            "kind": "nor-eig",
            "schema": cache.SCHEMA_VERSION,
            "params": self._model.params.as_dict(),
        })

    def _load(self, modes: int):
        from .. import cache
        store = cache.get_store()
        if store is None:
            return None
        bundle = store.get_arrays(self._cache_key())
        if bundle is None:
            return None
        n = self.num_inputs
        try:
            rates = bundle["rates"]
            vectors = bundle["vectors"]
            inverse = bundle["inverse"]
            slow = bundle["slow"]
        except KeyError:
            return None
        if (rates.shape != (modes, n + 1)
                or vectors.shape != (modes, n + 1, n + 1)
                or inverse.shape != (modes, n + 1, n + 1)
                or slow.shape != (modes,)):
            return None
        return rates, vectors, inverse, slow

    def _store(self, rates, vectors, inverse, slow) -> None:
        from .. import cache
        store = cache.get_store()
        if store is None:
            return
        store.put_arrays(self._cache_key(), {
            "rates": rates, "vectors": vectors,
            "inverse": inverse, "slow": slow,
        })

    # ------------------------------------------------------------------
    # crossing search
    # ------------------------------------------------------------------

    def _mode_crossings(self, weights: np.ndarray, mode: int,
                        windows: np.ndarray,
                        downward: bool) -> np.ndarray:
        """First directed Vth crossing per row within ``[0, window]``.

        All rows share one mode's eigensystem; rows that do not cross
        report NaN.  The window is walked in 8-τ phases on a *shared*
        time grid: one exponential basis per phase, one GEMM per
        chunk.  Rows whose window ends inside the phase have their
        out-of-window samples replaced by the value *at* the window
        end, so the final grid cell brackets ``[last in-window
        sample, window end]`` and no crossing inside the window is
        lost to the shared grid.
        """
        with _span("kernel.crossings", mode=mode,
                   rows=int(weights.shape[0])):
            return self._mode_crossings_inner(weights, mode,
                                              windows, downward)

    def _mode_crossings_inner(self, weights, mode, windows,
                              downward):
        rates = self._rates[mode]
        phase_len = 8.0 * float(self._slow[mode])
        vth = self._vth
        out = np.full(weights.shape[0], math.nan)
        grid = np.linspace(0.0, 1.0, _BATCH_SAMPLES)
        pending = np.nonzero(windows > 0.0)[0]
        phase = 0
        while pending.size:
            start = phase * phase_len
            pending = pending[windows[pending] > start]
            if not pending.size:
                break
            t = start + phase_len * grid
            basis = np.exp(t[:, None] * rates[None, :])
            for c0 in range(0, pending.size, _BATCH_CHUNK):
                chunk = pending[c0:c0 + _BATCH_CHUNK]
                values = weights[chunk] @ basis.T - vth
                ends = windows[chunk]
                clipped = np.nonzero(ends < t[-1])[0]
                if clipped.size:
                    rows = chunk[clipped]
                    end_values = np.einsum(
                        "rk,rk->r", weights[rows],
                        np.exp(ends[clipped, None]
                               * rates[None, :])) - vth
                    values[clipped] = np.where(
                        t[None, :] <= ends[clipped, None],
                        values[clipped], end_values[:, None])
                has, first = _first_bracket(values, downward)
                local = np.nonzero(has)[0]
                if local.size:
                    lo = t[first[local]]
                    hi = np.minimum(t[first[local] + 1], ends[local])
                    with _span("kernel.newton",
                               rows=int(local.size)):
                        out[chunk[local]] = _newton_bisect_refine(
                            weights[chunk[local]], rates, lo, hi,
                            vth, downward)
            pending = pending[np.isnan(out[pending])]
            phase += 1
        return out

    # ------------------------------------------------------------------
    # the flattened segment walk
    # ------------------------------------------------------------------

    def evaluate(self, deltas, direction: str,
                 internal_init: float = 0.0) -> np.ndarray:
        """Batched MIS delays over a grid of sibling offset vectors.

        The array-native core behind
        :meth:`GeneralizedNorModel.delays_falling_batch` /
        :meth:`~GeneralizedNorModel.delays_rising_batch`; see those
        for the per-direction event conventions.

        Parameters
        ----------
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` clips to
            the SIS plateaus, NaN rejected.
        direction : {'falling', 'rising'}
            Output transition searched for.
        internal_init : float, optional
            Rising-only: initial voltage of every internal chain
            node, volts.

        Returns
        -------
        numpy.ndarray
            Delays in seconds (``δ_min`` included), shape
            ``deltas.shape[:-1]``.
        """
        model = self._model
        n = self.num_inputs
        flat, shape = offset_rows(n, deltas)
        with _span("kernel.evaluate", n=n, direction=direction,
                   rows=int(flat.shape[0])):
            return self._evaluate_inner(flat, shape, direction,
                                        internal_init)

    def _evaluate_inner(self, flat, shape, direction,
                        internal_init):
        model = self._model
        n = self.num_inputs
        settle = model.settle_time()
        offsets = np.clip(flat, -settle, settle)
        rows = offsets.shape[0]
        times = np.concatenate(
            [np.zeros((rows, 1)), offsets], axis=1)
        times -= times.min(axis=1, keepdims=True)

        if direction == "falling":
            downward = True
            state0 = model.resting_state((0,) * n)
            reference = np.zeros(rows)
        elif direction == "rising":
            downward = False
            state0 = np.array([float(internal_init)] * (n - 1) + [0.0])
            reference = times.max(axis=1)
        else:
            raise ParameterError(
                f"direction must be 'falling' or 'rising', got "
                f"{direction!r}")

        order = np.argsort(times, axis=1, kind="stable")
        sorted_times = np.take_along_axis(times, order, axis=1)
        # Mode id of segment k = input state once the first k+1 events
        # have fired: falling starts all-zero and each event sets a
        # bit, rising starts all-one and each event clears one.
        flipped = np.cumsum(1 << order, axis=1)
        mode_ids = flipped if downward else ((1 << n) - 1) - flipped

        result = np.full(rows, math.nan)
        active = np.arange(rows)
        state = np.broadcast_to(state0, (rows, n)).astype(float)
        for k in range(n):
            seg_start = sorted_times[active, k]
            modes_k = mode_ids[active, k]
            aug = np.concatenate(
                [state, np.ones((active.size, 1))], axis=1)
            coeffs = np.einsum("rj,rij->ri", aug,
                               self._inverse[modes_k])
            out_weights = coeffs * self._out[modes_k]
            last = k + 1 == n
            if last:
                duration = None
                windows = 60.0 * self._slow[modes_k] + 1e-15
            else:
                duration = sorted_times[active, k + 1] - seg_start
                windows = duration
            local = np.full(active.size, math.nan)
            for mode in np.unique(modes_k):
                sel = np.nonzero(modes_k == mode)[0]
                local[sel] = self._mode_crossings(
                    out_weights[sel], int(mode), windows[sel],
                    downward)
            crossed = ~np.isnan(local)
            if crossed.any():
                result[active[crossed]] = (seg_start[crossed]
                                           + local[crossed])
            keep = ~crossed
            active = active[keep]
            if last or not active.size:
                break
            modes_kept = modes_k[keep]
            growth = np.exp(duration[keep, None]
                            * self._rates[modes_kept])
            state = np.einsum("ri,rji->rj", coeffs[keep] * growth,
                              self._vectors[modes_kept])[:, :n]
        if active.size:  # pragma: no cover - defensive
            raise NoCrossingError(
                "batched crossing search exhausted all segments "
                "without finding the output transition")
        delays = result - reference + model.params.delta_min
        return delays.reshape(shape)


def compiled_nor_kernel(params: GeneralizedNorParameters
                        ) -> CompiledNorKernel:
    """The shared :class:`CompiledNorKernel` of a parameter set.

    Resolves through :func:`generalized_model` so every caller — the
    engine backends, parallel workers, characterization — shares one
    compiled kernel (and its stacked eigen tensors) per parameter set.
    """
    return generalized_model(params).kernel()


def delta_vector_grid(params: GeneralizedNorParameters,
                      axis_points: int,
                      span_taus: float = 4.0) -> np.ndarray:
    """Uniform Δ-vector rows across the gate's MIS core.

    The standard probe grid of the n-input benchmarks and experiments:
    one uniform axis per sibling input, spanning ``±span_taus`` of the
    gate's settle-time-derived core scale, meshed and flattened to
    evaluation-ready rows.  The ``multi_input`` experiment, the
    Δ-vector benchmarks and :class:`repro.api.Session` all build their
    grids here so grid conventions cannot drift apart.

    Parameters
    ----------
    params : GeneralizedNorParameters
        n-input electrical parameter set.
    axis_points : int
        Samples per sibling axis (the grid has
        ``axis_points**(n-1)`` rows).
    span_taus : float, optional
        Half-width of each axis in units of ``settle_time() / 60``
        (default 4.0, the MIS core).

    Returns
    -------
    numpy.ndarray
        Shape ``(axis_points**(n-1), n-1)`` array of sibling offsets
        in seconds.
    """
    model = generalized_model(params)
    tau = model.settle_time() / 60.0
    axis = np.linspace(-span_taus * tau, span_taus * tau, axis_points)
    mesh = np.stack(np.meshgrid(*([axis] * (params.num_inputs - 1)),
                                indexing="ij"), axis=-1)
    return mesh.reshape(-1, params.num_inputs - 1)


@functools.lru_cache(maxsize=128)
def generalized_model(params: GeneralizedNorParameters
                      ) -> GeneralizedNorModel:
    """Shared per-parameter-set model cache.

    The model instance owns the per-``(params, input-state)``
    eigendecomposition caches of the batched Δ-vector evaluation, so
    the engine backends resolve their models through this function to
    share them across calls.
    """
    return GeneralizedNorModel(params)
