"""Closed-form trajectories of the four NOR-gate modes.

Every mode of the hybrid model is a 2-dimensional linear ODE with constant
coefficients, so both voltages are *sums of at most two real exponentials
plus a constant*:

.. math::  v(t) = K_0 + K_1 e^{\\lambda_1 t} + K_2 e^{\\lambda_2 t}

This module computes the coefficients from an arbitrary initial state
``(V_N(0), V_O(0))`` using the eigen-decompositions of
:mod:`repro.core.modes`, and packages them as :class:`ExpSum` objects that
support evaluation, differentiation and exact/bracketed threshold
inversion (the inversion itself lives in :mod:`repro.core.trajectory`).

A generic numeric LTI propagator (:func:`propagate_numeric`) based on the
matrix exponential is provided for cross-validation in the test-suite.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

import numpy as np
from scipy.linalg import expm

from ..errors import ParameterError
from .modes import (Mode, ModeSystem, mode_00_constants,
                    mode_10_constants, mode_system)
from .parameters import NorGateParameters

__all__ = ["ExpSum", "ModeSolution", "solve_mode", "propagate_numeric"]


@dataclasses.dataclass(frozen=True)
class ExpSum:
    """A function ``t -> offset + sum_i coeffs[i] * exp(rates[i] * t)``.

    The representation is canonical enough for our purposes: terms with a
    zero coefficient are dropped at construction, and a zero-rate term is
    folded into the offset.
    """

    offset: float
    coeffs: tuple[float, ...]
    rates: tuple[float, ...]

    @classmethod
    def build(cls, offset: float,
              terms: Sequence[tuple[float, float]]) -> "ExpSum":
        """Create an :class:`ExpSum` from ``(coefficient, rate)`` pairs."""
        total_offset = float(offset)
        coeffs: list[float] = []
        rates: list[float] = []
        for coeff, rate in terms:
            if coeff == 0.0:
                continue
            if rate == 0.0:
                total_offset += coeff
                continue
            coeffs.append(float(coeff))
            rates.append(float(rate))
        return cls(total_offset, tuple(coeffs), tuple(rates))

    def __call__(self, t):
        """Evaluate at scalar or array ``t``."""
        if isinstance(t, (float, int)):
            # Scalar fast path — this is the innermost loop of every
            # delay computation.
            result = self.offset
            for coeff, rate in zip(self.coeffs, self.rates):
                result += coeff * math.exp(rate * t)
            return result
        t = np.asarray(t, dtype=float)
        result = np.full_like(t, self.offset, dtype=float)
        for coeff, rate in zip(self.coeffs, self.rates):
            result = result + coeff * np.exp(rate * t)
        if result.ndim == 0:
            return float(result)
        return result

    def derivative(self) -> "ExpSum":
        """Return the time-derivative as another :class:`ExpSum`."""
        cached = object.__getattribute__(self, "__dict__").get("_deriv")
        if cached is None:
            cached = ExpSum.build(0.0, [(coeff * rate, rate)
                                        for coeff, rate in
                                        zip(self.coeffs, self.rates)])
            object.__setattr__(self, "_deriv", cached)
        return cached

    @property
    def limit(self) -> float:
        """Value for ``t -> +inf`` (assumes all rates are negative)."""
        if any(rate > 0.0 for rate in self.rates):
            raise ParameterError("ExpSum diverges for t -> inf")
        return self.offset

    @property
    def slowest_rate(self) -> float:
        """The rate closest to zero (dominant long-term behaviour)."""
        if not self.rates:
            return 0.0
        return max(self.rates, key=lambda r: r if r < 0 else -math.inf)

    def shifted(self, dt: float) -> "ExpSum":
        """Return ``s`` with ``s(t) = self(t + dt)`` (time re-basing)."""
        return ExpSum.build(
            self.offset,
            [(coeff * math.exp(rate * dt), rate)
             for coeff, rate in zip(self.coeffs, self.rates)],
        )


@dataclasses.dataclass(frozen=True)
class ModeSolution:
    """Closed-form solution of one mode from a given initial state.

    ``t`` is measured from the moment the mode was entered.
    """

    mode: Mode
    vn: ExpSum
    vo: ExpSum
    initial_state: tuple[float, float]

    def state_at(self, t: float) -> tuple[float, float]:
        """Return ``(V_N(t), V_O(t))``."""
        return (self.vn(t), self.vo(t))

    def states_at(self, times) -> np.ndarray:
        """Vectorized evaluation, returns shape ``(len(times), 2)``."""
        times = np.asarray(times, dtype=float)
        return np.stack([self.vn(times), self.vo(times)], axis=-1)


def _solve_coupled(constants, offset_vn: float, offset_vo: float,
                   vn0: float, vo0: float) -> tuple[ExpSum, ExpSum]:
    """Common solver for the coupled modes (1,0) and (0,0).

    The general solution (paper Sections III-C and III-E) is::

        VN(t) = offset_vn + (c1 e^{λ1 t} + c2 e^{λ2 t}) / (CN R2)
        VO(t) = offset_vo + c1 (α+β) e^{λ1 t} + c2 (α−β) e^{λ2 t}

    with ``c1, c2`` fixed by the initial conditions.
    """
    alpha, beta = constants.alpha, constants.beta
    lambda1, lambda2 = constants.lambda1, constants.lambda2
    vn_comp = constants.vn_component  # 1 / (CN R2)

    dn0 = vn0 - offset_vn
    do0 = vo0 - offset_vo
    # c1 + c2 = dn0 / vn_comp ; c1 (α+β) + c2 (α−β) = do0
    total = dn0 / vn_comp
    c1 = (do0 - total * (alpha - beta)) / (2.0 * beta)
    c2 = total - c1

    vn = ExpSum.build(offset_vn,
                      [(c1 * vn_comp, lambda1), (c2 * vn_comp, lambda2)])
    vo = ExpSum.build(offset_vo,
                      [(c1 * (alpha + beta), lambda1),
                       (c2 * (alpha - beta), lambda2)])
    return vn, vo


def solve_mode(mode: Mode, params: NorGateParameters,
               vn0: float, vo0: float) -> ModeSolution:
    """Solve one mode analytically from the initial state ``(vn0, vo0)``.

    Parameters
    ----------
    mode : Mode
        Input state of the gate during this mode.
    params : NorGateParameters
        Electrical parameters (SI units).
    vn0 : float
        Internal node voltage in volts when the mode is entered.
    vo0 : float
        Output voltage in volts when the mode is entered.

    Returns
    -------
    ModeSolution
        The closed-form node-voltage solutions (functions of time in
        seconds).
    """
    if mode is Mode.BOTH_HIGH:  # (1, 1): VN frozen, VO drains in parallel
        rate = -(1.0 / params.tau_r3 + 1.0 / params.tau_r4)
        vn = ExpSum.build(vn0, [])
        vo = ExpSum.build(0.0, [(vo0, rate)])
    elif mode is Mode.A_LOW_B_HIGH:  # (0, 1): decoupled charge/drain
        vn = ExpSum.build(params.vdd,
                          [(vn0 - params.vdd, -1.0 / params.tau_n_charge)])
        vo = ExpSum.build(0.0, [(vo0, -1.0 / params.tau_r4)])
    elif mode is Mode.A_HIGH_B_LOW:  # (1, 0): coupled drain through R3
        vn, vo = _solve_coupled(mode_10_constants(params), 0.0, 0.0,
                                vn0, vo0)
    elif mode is Mode.BOTH_LOW:  # (0, 0): coupled charge from VDD
        vn, vo = _solve_coupled(mode_00_constants(params), params.vdd,
                                params.vdd, vn0, vo0)
    else:  # pragma: no cover - exhaustive enum
        raise ParameterError(f"unknown mode {mode!r}")
    return ModeSolution(mode=mode, vn=vn, vo=vo,
                        initial_state=(float(vn0), float(vo0)))


def propagate_numeric(system: ModeSystem, state0, times) -> np.ndarray:
    """Numerically exact LTI propagation via the matrix exponential.

    Solves ``V' = A V + g`` from ``state0`` and returns the states at the
    requested ``times`` (shape ``(len(times), 2)``).  Used to cross-check
    the closed forms; the matrix of mode (1,1) is singular, so the affine
    part is handled through the standard augmented-matrix trick::

        d/dt [V; 1] = [[A, g], [0, 0]] [V; 1]
    """
    a = system.matrix
    g = system.forcing
    augmented = np.zeros((3, 3))
    augmented[:2, :2] = a
    augmented[:2, 2] = g
    state0 = np.asarray(state0, dtype=float)
    times = np.asarray(times, dtype=float)
    out = np.empty((times.size, 2))
    extended = np.append(state0, 1.0)
    for i, t in enumerate(np.ravel(times)):
        out[i] = (expm(augmented * t) @ extended)[:2]
    return out
