"""Parameters of the hybrid NOR-gate model.

The hybrid model of the paper (Fig. 1) abstracts the four transistors of a
CMOS NOR gate into ideal switches with on-resistances ``R1``–``R4`` and two
capacitances: ``CN`` at the internal node *N* between the series pMOS pair
and ``CO`` at the output *O*.

Mapping between resistors and transistors (paper Fig. 1):

====  ==========  =======================================================
name  transistor  role
====  ==========  =======================================================
R1    T1 (pMOS)   connects N to VDD when input A is low
R2    T2 (pMOS)   connects O to N when input B is low
R3    T3 (nMOS)   drains O to GND when input A is high
R4    T4 (nMOS)   drains O to GND when input B is high
====  ==========  =======================================================

``delta_min`` is the pure delay the paper adds in Section V in order to make
the characteristic delays fittable; it defers every mode switch by a fixed
amount, equivalently it is added to every computed delay.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import ParameterError
from ..units import AF, KOHM, PS, eng_format

__all__ = ["NorGateParameters", "PAPER_TABLE_I", "PAPER_DELTA_MIN"]


@dataclasses.dataclass(frozen=True)
class NorGateParameters:
    """Electrical parameters of the hybrid NOR model (SI units).

    Parameters
    ----------
    r1 : float
        On-resistance of pMOS T1 (VDD -> N path), ohms.
    r2 : float
        On-resistance of pMOS T2 (N -> O path), ohms.
    r3 : float
        On-resistance of nMOS T3 (O -> GND path, input A), ohms.
    r4 : float
        On-resistance of nMOS T4 (O -> GND path, input B), ohms.
    cn : float
        Capacitance at the internal node N, farads.
    co : float
        Capacitance at the output node O, farads.
    vdd : float, optional
        Supply voltage, volts (default 0.8).
    delta_min : float, optional
        Pure delay applied to every mode switch, seconds
        (default 0.0; paper Section V).
    """

    r1: float
    r2: float
    r3: float
    r4: float
    cn: float
    co: float
    vdd: float = 0.8
    delta_min: float = 0.0

    def __post_init__(self) -> None:
        for name in ("r1", "r2", "r3", "r4", "cn", "co", "vdd"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0.0:
                raise ParameterError(f"{name} must be positive and finite, "
                                     f"got {value!r}")
        if not math.isfinite(self.delta_min) or self.delta_min < 0.0:
            raise ParameterError(f"delta_min must be non-negative, got "
                                 f"{self.delta_min!r}")

    @property
    def vth(self) -> float:
        """Discretization threshold voltage, ``VDD / 2`` in the paper."""
        return self.vdd / 2.0

    # ------------------------------------------------------------------
    # Characteristic time constants (used all over the closed forms).
    # ------------------------------------------------------------------

    @property
    def tau_parallel(self) -> float:
        """Time constant of mode (1,1): ``CO * (R3 || R4)``."""
        return self.co * self.r3 * self.r4 / (self.r3 + self.r4)

    @property
    def tau_r3(self) -> float:
        """Time constant ``CO * R3`` (single nMOS T3 draining the output)."""
        return self.co * self.r3

    @property
    def tau_r4(self) -> float:
        """Time constant ``CO * R4`` (single nMOS T4 draining the output)."""
        return self.co * self.r4

    @property
    def tau_n_charge(self) -> float:
        """Time constant ``CN * R1`` of charging node N in mode (0,1)."""
        return self.cn * self.r1

    # ------------------------------------------------------------------

    def replace(self, **changes: float) -> "NorGateParameters":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def without_delta_min(self) -> "NorGateParameters":
        """Return a copy with the pure delay removed (``delta_min = 0``)."""
        return self.replace(delta_min=0.0)

    def as_dict(self) -> dict[str, float]:
        """Return the parameters as a plain dictionary."""
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """Human-readable multi-line description (Table I style)."""
        rows = [
            ("R1", eng_format(self.r1, "Ohm")),
            ("R2", eng_format(self.r2, "Ohm")),
            ("R3", eng_format(self.r3, "Ohm")),
            ("R4", eng_format(self.r4, "Ohm")),
            ("CN", eng_format(self.cn, "F")),
            ("CO", eng_format(self.co, "F")),
            ("VDD", eng_format(self.vdd, "V")),
            ("delta_min", eng_format(self.delta_min, "s")),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


#: Pure delay the paper empirically determined in Section V.
PAPER_DELTA_MIN = 18.0 * PS

#: The empirically obtained parameter values of the paper's Table I
#: (15 nm technology, VDD = 0.8 V), including the 18 ps pure delay.
PAPER_TABLE_I = NorGateParameters(
    r1=37.088 * KOHM,
    r2=44.926 * KOHM,
    r3=45.150 * KOHM,
    r4=48.761 * KOHM,
    cn=59.486 * AF,
    co=617.259 * AF,
    vdd=0.8,
    delta_min=PAPER_DELTA_MIN,
)
