"""Closed-form characteristic Charlie delays — paper equations (8)–(12).

The paper derives, by inverting the per-mode trajectories, exact or
approximate expressions for the six characteristic delays
``δ↓(−∞), δ↓(0), δ↓(∞), δ↑(−∞), δ↑(0), δ↑(∞)``:

* eq. (8): exact ``δ↓(0)   = ln 2 · CO · R3·R4/(R3+R4)``
* eq. (9): exact ``δ↓(−∞)  = ln 2 · CO · R4``
* eq. (10)–(12): one Newton step (first-order Taylor) of the closed-form
  two-exponential trajectory, taken at a probe time ``w``.

Two deliberate deviations from the printed paper (see DESIGN.md §2):

1. The paper prints the literal constants ``0.6`` and ``0.3`` where the
   derivation requires ``VDD/2`` and ``VDD/4``; the printed values
   correspond to the authors' 65 nm library (``VDD = 1.2 V``).  We
   implement the VDD-general form; at ``VDD = 1.2 V`` it reproduces the
   printed constants exactly (tested).
2. Eq. (12) uses an undeclared symbol ``D``; dimensional analysis against
   eqs. (1)–(3) identifies ``D = C_N``.

Both the *literal* paper parametrization (global-time coefficients
``c^Δ₁, c^Δ₂`` with the helper constants ``l, a, b``) and a streamlined
local-time form are implemented; the test-suite proves them equal.  The
default probe is chosen automatically from the dominant eigenmode, which
keeps the one-step approximation accurate for any technology; the paper's
hard-coded probes (``w = 1e-10`` / ``2e-10`` s) are available as
constants.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import NoCrossingError, ParameterError
from .modes import Mode, mode_00_constants, mode_10_constants
from .parameters import NorGateParameters
from .solutions import ExpSum, solve_mode

__all__ = [
    "PAPER_PROBE_FALLING",
    "PAPER_PROBE_RISING_POS",
    "PAPER_PROBE_RISING_NEG",
    "delta_falling_zero",
    "delta_falling_minus_inf",
    "delta_falling_plus_inf",
    "delta_rising",
    "newton_step_crossing",
    "Mode00PaperConstants",
    "mode_00_paper_constants",
]

#: Probe times hard-coded in the paper (suited to the 65 nm library).
PAPER_PROBE_FALLING = 1e-10        # eq. (10): w = 10^-10 s
PAPER_PROBE_RISING_POS = 2e-10     # eq. (11): w = 2*10^-10 s
PAPER_PROBE_RISING_NEG = 1e-10     # eq. (12): w = 10^-10 s


# ----------------------------------------------------------------------
# Exact formulas, eqs. (8) and (9)
# ----------------------------------------------------------------------

def delta_falling_zero(params: NorGateParameters,
                       include_delta_min: bool = True) -> float:
    """Exact ``δ↓(0)`` — paper eq. (8).

    With both nMOS draining the output in parallel from ``VDD``, the
    output is a single exponential with time constant ``CO·(R3 || R4)``;
    it halves after ``ln 2`` time constants.
    """
    value = math.log(2.0) * params.tau_parallel
    if include_delta_min:
        value += params.delta_min
    return value


def delta_falling_minus_inf(params: NorGateParameters,
                            include_delta_min: bool = True) -> float:
    """Exact ``δ↓(−∞)`` — paper eq. (9).

    Input B alone (mode (0,1)) drains the output through R4 only.
    """
    value = math.log(2.0) * params.tau_r4
    if include_delta_min:
        value += params.delta_min
    return value


# ----------------------------------------------------------------------
# Newton-step machinery for the two-exponential cases
# ----------------------------------------------------------------------

def newton_step_crossing(expsum: ExpSum, threshold: float,
                         probe: float) -> float:
    """One Newton iteration for ``expsum(t) = threshold`` from ``probe``.

    This is the first-order Taylor inversion used by paper eqs.
    (10)–(12)::

        d = [threshold - f(w) + w f'(w)] / f'(w)

    Args:
        expsum: the trajectory to invert.
        threshold: target value (``Vth`` in the paper).
        probe: linearization time ``w``.
    """
    value = expsum(probe)
    slope = expsum.derivative()(probe)
    if slope == 0.0:
        raise NoCrossingError("flat trajectory at the probe point")
    return probe + (threshold - value) / slope


def _auto_probe(expsum: ExpSum, threshold: float) -> float:
    """Probe time from the dominant (slowest) eigenmode.

    Solves ``K0 + K_slow * exp(λ_slow t) = threshold`` exactly; by the
    time of the crossing the fast mode has decayed, so one Newton step
    from here is accurate to high order.
    """
    if not expsum.coeffs:
        raise NoCrossingError("constant trajectory has no crossing")
    slow_index = max(range(len(expsum.rates)),
                     key=lambda i: expsum.rates[i])
    k_slow = expsum.coeffs[slow_index]
    rate = expsum.rates[slow_index]
    argument = (threshold - expsum.offset) / k_slow
    if argument <= 0.0 or rate == 0.0:
        # Dominant term alone cannot reach the threshold; fall back to
        # one time constant of the dominant mode.
        return 1.0 / abs(rate) if rate != 0.0 else 0.0
    return math.log(argument) / rate


def _approx_crossing(expsum: ExpSum, threshold: float,
                     probe: float | None) -> float:
    """Newton-step crossing with automatic probe selection.

    With an explicit *probe* this is the paper's literal one-step form.
    In automatic mode the step is iterated twice more from the
    dominant-mode probe — still closed-form evaluations only, but
    robust in degenerate corners where the crossing nearly coincides
    with the mode switch (far outside the regime eqs. (10)–(12) were
    derived for).
    """
    if probe is not None:
        return newton_step_crossing(expsum, threshold, probe)
    t = _auto_probe(expsum, threshold)
    for _ in range(3):
        t = newton_step_crossing(expsum, threshold, t)
    return max(t, 0.0)


# ----------------------------------------------------------------------
# δ↓(∞) — eq. (10)
# ----------------------------------------------------------------------

def delta_falling_plus_inf(params: NorGateParameters,
                           probe: float | None = None,
                           include_delta_min: bool = True) -> float:
    """Approximate ``δ↓(∞)`` — paper eq. (10).

    Mode (1,0) entered from the resting state ``V_N = V_O = VDD``; the
    output drains through R3 while also discharging ``C_N`` through R2.
    The paper's coefficients (for mode (1,0) constants α, β, λ of eqs.
    (1)–(3)) are::

        c2 = (VDD/2) [ (α+β) C_N R2 − 1 ] / β      # '0.6' == VDD/2
        c1 = VDD C_N R2 − c2

    which is exactly the solution of the initial-value problem; we build
    the same trajectory via :func:`repro.core.solutions.solve_mode` (the
    equality is asserted in the tests) and apply the Newton step.

    Args:
        probe: linearization time ``w``; ``None`` selects it from the
            dominant eigenmode (recommended).  The paper uses ``1e-10``.
    """
    solution = solve_mode(Mode.A_HIGH_B_LOW, params, params.vdd, params.vdd)
    value = _approx_crossing(solution.vo, params.vth, probe)
    if include_delta_min:
        value += params.delta_min
    return value


def paper_c_coefficients_falling(params: NorGateParameters
                                 ) -> tuple[float, float]:
    """The literal ``(c1, c2)`` of paper eq. (10), VDD-general.

    Returned in the paper's orientation: ``c1`` multiplies the λ₁
    (``α+β``) eigensolution.
    """
    consts = mode_10_constants(params)
    alpha, beta = consts.alpha, consts.beta
    cnr2 = params.cn * params.r2
    c2 = (params.vdd / 2.0) * ((alpha + beta) * cnr2 - 1.0) / beta
    c1 = params.vdd * cnr2 - c2
    return c1, c2


# ----------------------------------------------------------------------
# δ↑(Δ) — eqs. (11) and (12)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Mode00PaperConstants:
    """The helper constants ``l, a, b`` of paper eqs. (11)–(12).

    ``l`` is algebraically equal to ``VDD`` (the mode-(0,0) equilibrium
    output voltage) and ``a + b = VDD (1/(C_N R2) − (α+β))``; both
    identities are asserted in the tests.
    """

    l: float
    a: float
    b: float


def mode_00_paper_constants(params: NorGateParameters
                            ) -> Mode00PaperConstants:
    """Compute ``l, a, b`` literally as printed in the paper."""
    consts = mode_00_constants(params)
    alpha, beta, gamma = consts.alpha, consts.beta, consts.gamma
    vdd = params.vdd
    denom = gamma ** 2 - beta ** 2  # == λ1 λ2 == det(A) of mode (0,0)
    l = vdd * (-alpha ** 2 + beta ** 2) * params.r2 / (params.r1 * denom)
    a = vdd * (alpha + gamma) * (alpha + beta) / (params.cn * params.r1
                                                  * denom)
    b = vdd * (-alpha ** 2 + beta ** 2) / (params.cn * params.r1 * denom)
    return Mode00PaperConstants(l=l, a=a, b=b)


def vn_after_01(params: NorGateParameters, delta: float,
                vn_init: float) -> float:
    """``V_N^{(0,1)}(Δ) = VDD + (X − VDD) e^{−Δ/(C_N R1)}`` (paper §V)."""
    return params.vdd + (vn_init - params.vdd) * math.exp(
        -delta / params.tau_n_charge)


def state_after_10(params: NorGateParameters, duration: float,
                   vn_init: float) -> tuple[float, float]:
    """State ``(V_N, V_O)`` after *duration* in mode (1,0) from (X, 0).

    This is the paper's ``(V_N^{(1,0)}(Δ), V_O^{(1,0)}(Δ))`` with the
    coefficients ``g1, g2`` (the printed ``g2`` values for ``X ∈ {0,
    VDD/2, VDD}`` are the VDD = 1.2 V instantiations of the general
    ``g2 = (X/2)·C_N R2 (x+y)/y``; tested).
    """
    solution = solve_mode(Mode.A_HIGH_B_LOW, params, vn_init, 0.0)
    return solution.state_at(duration)


def paper_g_coefficients(params: NorGateParameters,
                         vn_init: float) -> tuple[float, float]:
    """The literal ``(g1, g2)`` of paper eq. (12), VDD-general."""
    consts = mode_10_constants(params)
    x, y = consts.alpha, consts.beta
    g2 = (vn_init / 2.0) * (x + y) * params.cn * params.r2 / y
    g1 = (y - x) * g2 / (x + y)
    return g1, g2


def delta_rising(params: NorGateParameters, delta: float,
                 vn_init: float = 0.0,
                 probe: float | None = None,
                 include_delta_min: bool = True) -> float:
    """Approximate ``δ↑(Δ)`` — paper eqs. (11) (Δ ≥ 0) and (12) (Δ < 0).

    The rising delay is referenced to the *later* falling input; the
    trajectory enters mode (0,0) at ``t = |Δ|`` with the state inherited
    from the intermediate mode ((0,1) for Δ ≥ 0, (1,0) for Δ < 0), and
    the delay is the mode-local crossing time of ``Vth``, approximated by
    one Newton step.

    Args:
        delta: input separation ``t_B − t_A``.
        vn_init: internal-node voltage ``X`` in the initial (1,1) mode.
        probe: linearization time ``w`` (``None`` = automatic; the paper
            uses ``2e-10`` for Δ ≥ 0 and ``1e-10`` for Δ < 0).
    """
    if math.isinf(delta):
        raise ParameterError("use a large finite Δ for the SIS limits")
    if delta >= 0.0:
        vn_entry = vn_after_01(params, delta, vn_init)
        vo_entry = 0.0
    else:
        vn_entry, vo_entry = state_after_10(params, -delta, vn_init)
    solution = solve_mode(Mode.BOTH_LOW, params, vn_entry, vo_entry)
    value = _approx_crossing(solution.vo, params.vth, probe)
    if include_delta_min:
        value += params.delta_min
    return value


def paper_c_coefficients_rising(params: NorGateParameters, delta: float,
                                vn_init: float = 0.0
                                ) -> tuple[float, float]:
    """The literal global-time ``(c^Δ₁, c^Δ₂)`` of paper eqs. (11)/(12).

    These describe the mode-(0,0) output voltage in *global* time
    (measured from the first input transition)::

        V_O(t) = l + c^Δ₁ (α+β) e^{λ₁ t} + c^Δ₂ (α−β) e^{λ₂ t},  t ≥ |Δ|

    and are related to the mode-local coefficients by division by
    ``e^{λ_i |Δ|}``.  Implemented exactly as printed (with ``D = C_N``)
    for validation against the streamlined form.
    """
    consts = mode_00_constants(params)
    alpha, beta = consts.alpha, consts.beta
    lambda1, lambda2 = consts.lambda1, consts.lambda2
    paper = mode_00_paper_constants(params)
    a, b = paper.a, paper.b
    cnr2 = params.cn * params.r2
    duration = abs(delta)

    if delta >= 0.0:
        vn = vn_after_01(params, delta, vn_init)
        drive = (alpha + beta) * vn
    else:
        vn, vo = state_after_10(params, duration, vn_init)
        drive = (alpha + beta) * vn - vo / cnr2

    c2 = (drive + a + b) * cnr2 / (2.0 * beta * math.exp(lambda2 * duration))
    # The c1 line only involves the V_N initial condition (first row of
    # the 2x2 initial-value system), exactly as printed.
    c1 = (((alpha + beta) * vn
           - (alpha + beta) / cnr2 * c2 * math.exp(lambda2 * duration)
           + a) * cnr2
          / ((alpha + beta) * math.exp(lambda1 * duration)))
    return c1, c2
