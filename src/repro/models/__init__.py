"""Literature baseline MIS delay models (curve-fitting approaches)."""

from .fitted import FinitePointMisModel, QuadraticMisModel

__all__ = ["FinitePointMisModel", "QuadraticMisModel"]
