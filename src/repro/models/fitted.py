"""Literature-baseline MIS delay models (curve fitting over Δ).

The paper's related work covers MIS modeling by direct fitting of the
delay-vs-separation curve: linear fitting from a few characterization
points (Subramaniam et al., "finite-point method" [7]) and quadratic
fitting of the MIS region (Shin et al. [8]).  These baselines are
implemented here for the ablation benchmarks: they interpolate the
characterized curve well but — unlike the hybrid ODE model — carry no
state, cannot extrapolate across load/parameter changes, and provide no
trajectory information.

Both models are pure functions ``δ(Δ)`` fitted per output-transition
direction.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.charlie import MisCurve
from ..errors import FittingError, ParameterError

__all__ = ["FinitePointMisModel", "QuadraticMisModel"]


@dataclasses.dataclass(frozen=True)
class FinitePointMisModel:
    """Piece-wise linear MIS delay from a handful of support points.

    Mirrors the finite-point characterization approach of [7]: the delay
    curve is sampled at a few separations and linearly interpolated in
    between; outside the sampled window the SIS plateaus are used.
    """

    direction: str
    knots: tuple[float, ...]
    delays: tuple[float, ...]

    @classmethod
    def fit(cls, curve: MisCurve,
            num_points: int = 5) -> "FinitePointMisModel":
        """Pick *num_points* evenly spread support points from a curve."""
        if num_points < 2:
            raise ParameterError("need at least two support points")
        if len(curve) < num_points:
            raise FittingError("curve has fewer samples than requested "
                               "support points")
        indices = np.linspace(0, len(curve) - 1, num_points).round()
        indices = sorted(set(int(i) for i in indices))
        knots = tuple(curve.deltas[i] for i in indices)
        delays = tuple(curve.delays[i] for i in indices)
        return cls(direction=curve.direction, knots=knots, delays=delays)

    def delay(self, delta: float) -> float:
        """Interpolated MIS delay at separation *delta*."""
        return float(np.interp(delta, self.knots, self.delays))

    def evaluate(self, deltas) -> np.ndarray:
        """Array-in/array-out MIS delays (``np.interp`` batch)."""
        return np.interp(np.asarray(deltas, dtype=float),
                         self.knots, self.delays)

    def curve(self, deltas) -> MisCurve:
        """Evaluate on a grid (for plotting/benching)."""
        deltas = np.asarray(deltas, dtype=float)
        return MisCurve.from_arrays(deltas, self.evaluate(deltas),
                                    self.direction,
                                    label="finite-point fit")


@dataclasses.dataclass(frozen=True)
class QuadraticMisModel:
    """Quadratic-in-Δ MIS delay fit with SIS plateaus outside a window.

    Mirrors the temporal-proximity model of [8]: within the MIS window
    the delay is ``a Δ² + b Δ + c`` (least squares); outside, the SIS
    plateau values apply, with continuity enforced at the window edges
    by clamping.
    """

    direction: str
    window: float
    coefficients: tuple[float, float, float]
    plateau_neg: float
    plateau_pos: float

    @classmethod
    def fit(cls, curve: MisCurve,
            window: float | None = None) -> "QuadraticMisModel":
        """Least-squares quadratic over ``|Δ| <= window``."""
        deltas = curve.deltas_array
        delays = curve.delays_array
        if window is None:
            window = 0.5 * float(min(abs(deltas[0]), abs(deltas[-1])))
        if window <= 0.0:
            raise ParameterError("window must be positive")
        mask = np.abs(deltas) <= window
        if int(mask.sum()) < 3:
            raise FittingError("fewer than three samples inside the MIS "
                               "window")
        coeffs = np.polyfit(deltas[mask], delays[mask], deg=2)
        return cls(direction=curve.direction, window=float(window),
                   coefficients=tuple(float(c) for c in coeffs),
                   plateau_neg=float(delays[0]),
                   plateau_pos=float(delays[-1]))

    def delay(self, delta: float) -> float:
        """MIS delay at separation *delta*."""
        if delta < -self.window:
            return self.plateau_neg
        if delta > self.window:
            return self.plateau_pos
        a, b, c = self.coefficients
        return a * delta * delta + b * delta + c

    def evaluate(self, deltas) -> np.ndarray:
        """Array-in/array-out MIS delays (plateaus outside the window)."""
        deltas = np.asarray(deltas, dtype=float)
        a, b, c = self.coefficients
        inside = a * deltas * deltas + b * deltas + c
        return np.where(deltas < -self.window, self.plateau_neg,
                        np.where(deltas > self.window,
                                 self.plateau_pos, inside))

    def curve(self, deltas) -> MisCurve:
        """Evaluate on a grid (for plotting/benching)."""
        deltas = np.asarray(deltas, dtype=float)
        return MisCurve.from_arrays(deltas, self.evaluate(deltas),
                                    self.direction,
                                    label="quadratic fit")
