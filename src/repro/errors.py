"""Exception hierarchy for the ``repro`` package.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch the whole family with one ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "ConvergenceError",
    "NoCrossingError",
    "NetlistError",
    "SimulationError",
    "TraceError",
    "FittingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """A model or device parameter is invalid (non-positive R/C, bad VDD...)."""


class ConvergenceError(ReproError, RuntimeError):
    """A Newton iteration or optimizer failed to converge."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class NoCrossingError(ReproError, RuntimeError):
    """A trajectory never crosses the requested threshold."""


class NetlistError(ReproError, ValueError):
    """A circuit netlist is malformed (unknown node, dangling pin...)."""


class SimulationError(ReproError, RuntimeError):
    """A simulation could not be carried out."""


class TraceError(ReproError, ValueError):
    """A digital trace violates its invariants (ordering, alternation)."""


class FittingError(ReproError, RuntimeError):
    """Model parametrization failed (infeasible targets, optimizer failure)."""
