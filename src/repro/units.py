"""Unit helpers.

All quantities inside the package are plain SI floats: seconds, volts,
ohms, farads, amperes.  The constants and helpers in this module exist so
that code and tests can say ``38 * PICO`` or ``format_time(delay)`` instead
of sprinkling ``1e-12`` literals around.  Conversion to "nice" engineering
strings happens only at the reporting boundary.
"""

from __future__ import annotations

import math

__all__ = [
    "ATTO", "FEMTO", "PICO", "NANO", "MICRO", "MILLI", "KILO",
    "MEGA", "GIGA", "PS", "NS", "FF", "AF", "KOHM",
    "to_ps", "from_ps", "eng_format", "format_time",
    "percent_change",
]

#: SI prefixes as multiplicative factors.
ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

#: Common derived shorthands used throughout the paper.
PS = PICO
NS = NANO
FF = FEMTO
AF = ATTO
KOHM = KILO

_PREFIXES = [
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
]


def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds."""
    return seconds / PICO


def from_ps(picoseconds: float) -> float:
    """Convert picoseconds to seconds."""
    return picoseconds * PICO


def eng_format(value: float, unit: str = "", digits: int = 3) -> str:
    """Format *value* with an engineering SI prefix.

    >>> eng_format(38e-12, 's')
    '38.0 ps'
    >>> eng_format(617.259e-18, 'F')
    '617.259 aF'
    """
    if value == 0.0:
        return f"0 {unit}".rstrip()
    if math.isnan(value):
        return f"nan {unit}".rstrip()
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"{sign}inf {unit}".rstrip()
    magnitude = abs(value)
    factor, prefix = _PREFIXES[-1]
    for fac, pre in _PREFIXES:
        if magnitude < fac * 1000.0:
            factor, prefix = fac, pre
            break
    scaled = value / factor
    text = f"{scaled:.{digits}f}".rstrip("0").rstrip(".")
    # Keep at least one decimal digit for readability of times like '38.0 ps'.
    if "." not in text and unit == "s":
        text += ".0"
    return f"{text} {prefix}{unit}".rstrip()


def format_time(seconds: float, digits: int = 2) -> str:
    """Format a time quantity in picoseconds (the paper's unit of choice)."""
    return f"{to_ps(seconds):.{digits}f} ps"


def percent_change(value: float, reference: float) -> float:
    """Signed percent change of *value* relative to *reference*.

    This matches the annotations in the paper's Fig. 2 ("−28.01 %" is the
    change of the MIS delay at ``Δ = 0`` relative to the SIS delay).
    """
    if reference == 0.0:
        raise ZeroDivisionError("percent change relative to zero reference")
    return (value - reference) / reference * 100.0
