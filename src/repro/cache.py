"""Persistent cross-process result cache.

Every expensive artifact of the package is a pure function of plain
content — an eigendecomposition bundle is determined by the electrical
parameter set, a characterized :class:`~repro.library.GateLibrary` by
its job grid and engine.  That makes all of them safe to share through
a content-hash-keyed on-disk store: any process (a parallel worker, a
second CLI invocation, a server restart) that computes the same
content writes the same key, and any other process reads it back
instead of recomputing.

Store layout (under the cache root)::

    v1/                      # schema version — bump to invalidate all
      ab/                    # first two hex digits of the key
        ab3f...e2.json       # JSON payloads (library grids)
        ab19...77.npz        # array bundles (eigendecompositions)

Keys are SHA-256 hashes of a canonical-JSON *content descriptor*
(:meth:`DiskCache.content_key`), so invalidation is automatic: change
any input — parameters, grid, engine, schema — and the key changes
with it.  Writes are atomic (temp file + ``os.replace``) so concurrent
writers at worst duplicate work, never corrupt an entry; readers that
find a corrupt or truncated entry treat it as a miss and overwrite it,
but the event is **not** silent: it increments the store's ``corrupt``
counter (reported by :meth:`DiskCache.info` and therefore visible in
``Session.cache_info()["disk"]``), so an operator can tell recompute-
because-new from recompute-because-damaged.

Activation
----------
The cache is **off** unless a root directory is given:

* ``REPRO_CACHE_DIR=<dir>`` in the environment (inherited by parallel
  workers and subprocesses), or
* :func:`configure` — what ``Session(cache_dir=...)`` calls; explicit
  configuration wins over the environment.

:func:`get_store` resolves the active store (or ``None``); per-root
instances are shared so hit/miss counters aggregate process-wide and
are reported by :meth:`repro.api.Session.cache_info`, ``repro version
--json`` and ``repro list --json``.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from .obs import metrics as _metrics
from .obs.trace import span as _span

__all__ = ["DiskCache", "configure", "get_store", "content_key",
           "SCHEMA_VERSION"]

#: On-disk schema version; a bump orphans (and thereby invalidates)
#: every existing entry without touching the files.
SCHEMA_VERSION = 1

#: Environment variable naming the cache root directory.
ENV_VAR = "REPRO_CACHE_DIR"


def content_key(descriptor: dict) -> str:
    """SHA-256 key of a canonical-JSON content descriptor.

    Parameters
    ----------
    descriptor : dict
        Plain-JSON description of everything the cached artifact
        depends on (parameter dicts, grids, engine name, an artifact
        ``kind`` tag).  Key order does not matter — the JSON is
        canonicalized with sorted keys.

    Returns
    -------
    str
        64-hex-digit cache key.
    """
    canonical = json.dumps(descriptor, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class DiskCache:
    """Content-addressed on-disk store with atomic writes.

    Parameters
    ----------
    root : str or Path
        Cache root directory (created lazily on first write).

    Notes
    -----
    Entries live under ``<root>/v<SCHEMA_VERSION>/<key[:2]>/`` as
    ``.json`` (plain payloads) or ``.npz`` (array bundles).  All
    accessors are miss-tolerant: unreadable entries count as misses
    and are recomputed/overwritten by the caller.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        # The counters are named instruments in the process-global
        # metrics registry (scraped at GET /v1/metrics), labeled by
        # cache root so several stores stay distinguishable; the
        # hits/misses/... attributes below read them back.
        registry = _metrics.registry()
        where = str(self.root)
        self._hit_count = registry.counter(
            "repro_cache_reads_total", "disk-cache read outcomes",
            labels={"dir": where, "outcome": "hit"})
        self._miss_count = registry.counter(
            "repro_cache_reads_total", "disk-cache read outcomes",
            labels={"dir": where, "outcome": "miss"})
        self._corrupt_count = registry.counter(
            "repro_cache_reads_total", "disk-cache read outcomes",
            labels={"dir": where, "outcome": "corrupt"})
        self._write_count = registry.counter(
            "repro_cache_writes_total", "disk-cache entries written",
            labels={"dir": where})

    # ------------------------------------------------------------------
    # counters (registry-backed)
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Reads served from disk."""
        return int(self._hit_count.value)

    @property
    def misses(self) -> int:
        """Reads that found nothing usable (``corrupt`` included)."""
        return int(self._miss_count.value
                   + self._corrupt_count.value)

    @property
    def writes(self) -> int:
        """Entries written."""
        return int(self._write_count.value)

    @property
    def corrupt(self) -> int:
        """Reads that found an undecodable entry on disk."""
        return int(self._corrupt_count.value)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def _schema_dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    def _path(self, key: str, suffix: str) -> Path:
        return self._schema_dir / key[:2] / f"{key}{suffix}"

    def _atomic_write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=".tmp-", suffix=path.suffix)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._write_count.inc()

    # ------------------------------------------------------------------
    # JSON payloads
    # ------------------------------------------------------------------

    def get_json(self, key: str):
        """Load a JSON entry, or ``None`` on a miss.

        A present-but-unreadable entry (truncated write the atomic
        rename should have prevented, disk damage, foreign bytes) is
        still a miss, but additionally counted in :attr:`corrupt`.

        Parameters
        ----------
        key : str
            A :func:`content_key` hash.
        """
        path = self._path(key, ".json")
        with _span("cache.get", kind="json", key=key[:12]) as live:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                self._miss_count.inc()
                live.set(outcome="miss")
                return None
            except (OSError, json.JSONDecodeError,
                    UnicodeDecodeError):
                self._corrupt_count.inc()
                live.set(outcome="corrupt")
                return None
            self._hit_count.inc()
            live.set(outcome="hit")
            return payload

    def put_json(self, key: str, payload) -> None:
        """Atomically store a JSON-serializable payload under *key*."""
        with _span("cache.put", kind="json", key=key[:12]):
            data = json.dumps(payload,
                              sort_keys=True).encode("utf-8")
            self._atomic_write(self._path(key, ".json"), data)

    # ------------------------------------------------------------------
    # array bundles
    # ------------------------------------------------------------------

    def get_arrays(self, key: str) -> "dict[str, np.ndarray] | None":
        """Load an array bundle (name -> ndarray), or ``None``.

        Unreadable entries (bad zip container, truncated arrays) are
        misses that also increment :attr:`corrupt`; a missing file is
        a plain miss.
        """
        path = self._path(key, ".npz")
        with _span("cache.get", kind="arrays",
                   key=key[:12]) as live:
            try:
                with np.load(path) as archive:
                    bundle = {name: archive[name]
                              for name in archive.files}
            except FileNotFoundError:
                self._miss_count.inc()
                live.set(outcome="miss")
                return None
            except (OSError, ValueError, KeyError,
                    zipfile.BadZipFile):
                self._corrupt_count.inc()
                live.set(outcome="corrupt")
                return None
            self._hit_count.inc()
            live.set(outcome="hit")
            return bundle

    def put_arrays(self, key: str,
                   bundle: "dict[str, np.ndarray]") -> None:
        """Atomically store a dict of arrays under *key*."""
        with _span("cache.put", kind="arrays", key=key[:12]):
            buffer = io.BytesIO()
            np.savez(buffer, **bundle)
            self._atomic_write(self._path(key, ".npz"),
                               buffer.getvalue())

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of entries currently on disk (current schema)."""
        if not self._schema_dir.is_dir():
            return 0
        return sum(1 for path in self._schema_dir.glob("*/*")
                   if path.suffix in (".json", ".npz"))

    def info(self) -> dict:
        """Counters and location: ``{dir, hits, misses, writes,
        corrupt, entries}``.

        ``corrupt`` counts reads that found an entry on disk but could
        not decode it (every one is also included in ``misses``).
        """
        return {"dir": str(self.root), "hits": self.hits,
                "misses": self.misses, "writes": self.writes,
                "corrupt": self.corrupt, "entries": len(self)}

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the
        number of removed files."""
        removed = 0
        if self._schema_dir.is_dir():
            for path in sorted(self._schema_dir.glob("*/*")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing writer
                    pass
        return removed

    def __repr__(self) -> str:
        return (f"DiskCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")


#: Explicitly configured store (wins over the environment);
#: ``_UNSET`` means "fall back to REPRO_CACHE_DIR".
_UNSET = object()
_CONFIGURED = _UNSET
#: Per-root instances, so counters aggregate process-wide.
_STORES: dict[str, DiskCache] = {}


def _store_for(root: "str | Path") -> DiskCache:
    key = str(Path(root))
    if key not in _STORES:
        _STORES[key] = DiskCache(key)
    return _STORES[key]


def configure(cache_dir: "str | Path | None"):
    """Set (or clear) the process-wide cache root explicitly.

    Parameters
    ----------
    cache_dir : str or Path or None
        Cache root directory; ``None`` disables the cache even if
        ``REPRO_CACHE_DIR`` is set.

    Returns
    -------
    DiskCache or None
        The active store after reconfiguration.

    Notes
    -----
    Explicit configuration is process-wide — it is what
    ``Session(cache_dir=...)`` uses, and parallel workers started
    *after* the call inherit it on fork platforms.  Call
    :func:`unconfigure` to fall back to the environment.
    """
    global _CONFIGURED
    _CONFIGURED = None if cache_dir is None else _store_for(cache_dir)
    return _CONFIGURED


def unconfigure() -> None:
    """Drop the explicit configuration (environment rules again)."""
    global _CONFIGURED
    _CONFIGURED = _UNSET


def get_store() -> "DiskCache | None":
    """The active persistent store, or ``None`` when caching is off.

    Explicit :func:`configure` wins; otherwise ``REPRO_CACHE_DIR``
    is consulted on every call (so tests and subprocesses may flip
    it at runtime).
    """
    if _CONFIGURED is not _UNSET:
        return _CONFIGURED
    root = os.environ.get(ENV_VAR)
    if not root:
        return None
    return _store_for(root)
