"""Characterized gate-delay tables and their JSON serialization.

A :class:`GateDelayTable` is the lookup-table form of one gate's MIS
delay surfaces — what an NLDM-style standard-cell library stores per
cell, here with the input-separation axis ``Δ`` the paper shows is
required for multi-input gates.  Each output direction is a
:class:`DelaySurface`: delays sampled over a rectangular
``(state, Δ)`` grid, bilinearly interpolated, where *state* is the
initial internal-node voltage of the transition that depends on one
(paper Section IV):

* a ``nor2`` cell's **rising** surface carries the ``V_N(0)`` axis
  (series pMOS stack); its falling surface is state-free (one row);
* a ``nand2`` cell — characterized through the CMOS mirror duality of
  :mod:`repro.core.duality` — carries the axis on its **falling**
  surface (``V_M(0)``, series nMOS stack) instead.

Lookups *clamp* to the characterized ranges: the grids produced by
:func:`repro.library.characterize.default_delta_grid` extend past the
settling region, where the curves sit on their SIS plateaus, so
clamping returns the ``δ(±∞)`` values instead of raising like
:meth:`~repro.core.charlie.MisCurve.delay_at` does mid-sweep.

A :class:`GateLibrary` is a named collection of tables with a
versioned on-disk JSON format (all quantities SI: seconds, volts,
ohms, farads).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

import numpy as np

from ..core.charlie import CharacteristicDelays, MisCurve
from ..core.parameters import NorGateParameters
from ..errors import ParameterError
from ..units import to_ps

__all__ = ["DelaySurface", "GateDelayTable", "GateLibrary",
           "LIBRARY_FORMAT", "LIBRARY_FORMAT_VERSION"]

#: On-disk format identifier of serialized libraries.
LIBRARY_FORMAT = "repro-gate-library"
#: Current on-disk format version (bump on breaking schema changes).
LIBRARY_FORMAT_VERSION = 1

#: Gate types a table may describe (boolean function + conventions).
GATE_TYPES = ("nor2", "nand2")


def _check_grid(values: tuple[float, ...], label: str,
                minimum: int) -> None:
    if len(values) < minimum:
        raise ParameterError(f"{label} grid needs at least {minimum} "
                             f"point(s), got {len(values)}")
    if len(values) > 1 and not np.all(
            np.diff(np.asarray(values)) > 0.0):
        raise ParameterError(f"{label} grid must be strictly "
                             "increasing")


@dataclasses.dataclass(frozen=True)
class DelaySurface:
    """Sampled MIS delays of one output direction over ``(state, Δ)``.

    Parameters
    ----------
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    deltas : tuple of float
        Strictly increasing input separations ``Δ = t_B − t_A`` in
        seconds (at least two points).
    state_grid : tuple of float
        Strictly increasing initial internal-node voltages in volts.
        A single-point grid marks a state-free surface.
    delays : tuple of tuple of float
        Delays in seconds, ``delays[i][j]`` for ``state_grid[i]`` and
        ``deltas[j]``; they include the pure delay ``δ_min`` exactly
        like the model's delay functions.

    Notes
    -----
    Lookups clamp both axes to the sampled ranges; with grids that
    extend past the settling region the Δ edges are the SIS plateaus
    ``δ(±∞)``.
    """

    direction: str
    deltas: tuple[float, ...]
    state_grid: tuple[float, ...]
    delays: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if self.direction not in ("falling", "rising"):
            raise ParameterError("direction must be 'falling' or "
                                 "'rising'")
        _check_grid(self.deltas, "delta", 2)
        _check_grid(self.state_grid, "state", 1)
        if len(self.delays) != len(self.state_grid):
            raise ParameterError("need one delay row per state grid "
                                 "point")
        for row in self.delays:
            if len(row) != len(self.deltas):
                raise ParameterError("delay rows must have one entry "
                                     "per delta")

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    @property
    def delta_range(self) -> tuple[float, float]:
        """Characterized ``(Δ_min, Δ_max)`` in seconds."""
        return (self.deltas[0], self.deltas[-1])

    @property
    def state_dependent(self) -> bool:
        """Whether the surface actually carries a state axis."""
        return len(self.state_grid) > 1

    def delays_at(self, deltas, state: float = 0.0) -> np.ndarray:
        """Bilinearly interpolated delays for an array of separations.

        Parameters
        ----------
        deltas : array_like of float
            Separations in seconds; out-of-range values (including
            ``±inf``) clamp to the table edges.
        state : float, optional
            Initial internal-node voltage in volts, clamped to the
            state grid (default 0.0).

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*.
        """
        d = np.clip(np.asarray(deltas, dtype=float),
                    self.deltas[0], self.deltas[-1])
        grid = np.asarray(self.state_grid)
        s = min(max(float(state), grid[0]), grid[-1])
        hi = int(np.searchsorted(grid, s, side="left"))
        if hi == 0 or len(grid) == 1:
            return np.interp(d, self.deltas, self.delays[0])
        if hi == len(grid):
            return np.interp(d, self.deltas, self.delays[-1])
        lo = hi - 1
        low = np.interp(d, self.deltas, self.delays[lo])
        high = np.interp(d, self.deltas, self.delays[hi])
        weight = (s - grid[lo]) / (grid[hi] - grid[lo])
        return low * (1.0 - weight) + high * weight

    def delay_at(self, delta: float, state: float = 0.0) -> float:
        """Scalar :meth:`delays_at` (one separation, one state)."""
        return float(self.delays_at(float(delta), state))

    def curve(self, state: float = 0.0, label: str = "") -> MisCurve:
        """A constant-state cut of the surface as a :class:`MisCurve`."""
        delays = tuple(float(v) for v in
                       self.delays_at(np.asarray(self.deltas), state))
        return MisCurve(self.deltas, delays, self.direction,
                        label=label or f"table ({self.direction})")

    def characteristic(self,
                       state: float = 0.0) -> CharacteristicDelays:
        """``(δ(−∞), δ(0), δ(∞))`` read from the clamped table edges."""
        return CharacteristicDelays(
            minus_inf=self.delay_at(self.deltas[0], state),
            zero=self.delay_at(0.0, state),
            plus_inf=self.delay_at(self.deltas[-1], state))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (seconds / volts)."""
        return {
            "direction": self.direction,
            "deltas_s": list(self.deltas),
            "state_grid_v": list(self.state_grid),
            "delays_s": [list(row) for row in self.delays],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DelaySurface":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                direction=str(payload["direction"]),
                deltas=tuple(float(v) for v in payload["deltas_s"]),
                state_grid=tuple(float(v)
                                 for v in payload["state_grid_v"]),
                delays=tuple(tuple(float(v) for v in row)
                             for row in payload["delays_s"]),
            )
        except KeyError as missing:
            raise ParameterError(
                f"delay surface payload is missing {missing}") from None


@dataclasses.dataclass(frozen=True)
class GateDelayTable:
    """Interpolated MIS delay tables of one characterized gate.

    Parameters
    ----------
    cell : str
        Cell name the table is stored under (e.g. ``"nor2_paper"``).
    gate : str
        Gate type, ``"nor2"`` or ``"nand2"`` — fixes the boolean
        function and the delay reference conventions consumed by
        :class:`repro.timing.channels.TableDelayChannel`.
    params : NorGateParameters
        The electrical parameter set the table was characterized from
        (kept for provenance and re-verification).
    falling, rising : DelaySurface
        The two output-transition surfaces.
    engine : str, optional
        Name of the delay engine that produced the samples.
    """

    cell: str
    gate: str
    params: NorGateParameters
    falling: DelaySurface
    rising: DelaySurface
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.gate not in GATE_TYPES:
            raise ParameterError(f"gate must be one of {GATE_TYPES}, "
                                 f"got {self.gate!r}")
        if self.falling.direction != "falling":
            raise ParameterError("falling surface has direction "
                                 f"{self.falling.direction!r}")
        if self.rising.direction != "rising":
            raise ParameterError("rising surface has direction "
                                 f"{self.rising.direction!r}")

    # ------------------------------------------------------------------
    # lookup (thin sugar over the surfaces)
    # ------------------------------------------------------------------

    def delay_falling(self, delta: float,
                      state: float = 0.0) -> float:
        """Falling-output delay ``δ↓(Δ)`` in seconds (clamped lookup).

        Parameters
        ----------
        delta : float
            Input separation in seconds; ``±inf`` reads the SIS edge.
        state : float, optional
            Initial stack-node voltage in volts — only meaningful for
            gate types whose falling surface is state-dependent
            (``nand2``).
        """
        return self.falling.delay_at(delta, state)

    def delay_rising(self, delta: float, state: float = 0.0) -> float:
        """Rising-output delay ``δ↑(Δ)`` in seconds (clamped lookup).

        Parameters
        ----------
        delta : float
            Input separation in seconds; ``±inf`` reads the SIS edge.
        state : float, optional
            Initial internal-node voltage in volts (``V_N(0)`` for
            ``nor2``; ignored for ``nand2``, whose rising surface is
            state-free).
        """
        return self.rising.delay_at(delta, state)

    def describe(self) -> str:
        """One-line summary used by the CLI inspector."""
        fall = self.falling.characteristic()
        rise = self.rising.characteristic()
        return (f"{self.cell}: {self.gate}, "
                f"{len(self.falling.deltas)} deltas in "
                f"[{to_ps(self.falling.deltas[0]):.0f}, "
                f"{to_ps(self.falling.deltas[-1]):.0f}] ps, "
                f"{len(self.falling.state_grid)}x"
                f"{len(self.rising.state_grid)} state rows; "
                f"fall(0) {to_ps(fall.zero):.2f} ps, "
                f"rise(0) {to_ps(rise.zero):.2f} ps")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (SI units throughout)."""
        return {
            "cell": self.cell,
            "gate": self.gate,
            "engine": self.engine,
            "params": self.params.as_dict(),
            "falling": self.falling.to_dict(),
            "rising": self.rising.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GateDelayTable":
        """Inverse of :meth:`to_dict`.

        Raises
        ------
        ParameterError
            If required keys are missing or grids are malformed.
        """
        try:
            return cls(
                cell=str(payload["cell"]),
                gate=str(payload["gate"]),
                engine=str(payload.get("engine", "vectorized")),
                params=NorGateParameters(**payload["params"]),
                falling=DelaySurface.from_dict(payload["falling"]),
                rising=DelaySurface.from_dict(payload["rising"]),
            )
        except KeyError as missing:
            raise ParameterError(
                f"gate table payload is missing {missing}") from None


@dataclasses.dataclass(frozen=True)
class GateLibrary:
    """A named, serializable collection of characterized gate tables.

    Parameters
    ----------
    name : str
        Library name (stored in the JSON header).
    tables : dict of str to GateDelayTable
        Tables keyed by cell name.
    description : str, optional
        Free-form provenance note.
    """

    name: str
    tables: dict[str, GateDelayTable]
    description: str = ""

    def __post_init__(self) -> None:
        for cell, table in self.tables.items():
            if cell != table.cell:
                raise ParameterError(
                    f"library key {cell!r} does not match table cell "
                    f"{table.cell!r}")

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables.values())

    def __getitem__(self, cell: str) -> GateDelayTable:
        try:
            return self.tables[cell]
        except KeyError:
            raise KeyError(
                f"no cell {cell!r} in library {self.name!r}; "
                f"available: {', '.join(sorted(self.tables))}"
            ) from None

    @property
    def cells(self) -> tuple[str, ...]:
        """Sorted cell names."""
        return tuple(sorted(self.tables))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Versioned plain-JSON representation."""
        return {
            "format": LIBRARY_FORMAT,
            "format_version": LIBRARY_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "cells": {cell: table.to_dict()
                      for cell, table in sorted(self.tables.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GateLibrary":
        """Inverse of :meth:`to_dict`, with format validation."""
        if payload.get("format") != LIBRARY_FORMAT:
            raise ParameterError(
                "not a gate-library payload (format="
                f"{payload.get('format')!r})")
        version = payload.get("format_version")
        if version != LIBRARY_FORMAT_VERSION:
            raise ParameterError(
                f"unsupported library format version {version!r} "
                f"(this build reads version {LIBRARY_FORMAT_VERSION})")
        tables = {cell: GateDelayTable.from_dict(table)
                  for cell, table in payload.get("cells", {}).items()}
        return cls(name=str(payload.get("name", "")),
                   tables=tables,
                   description=str(payload.get("description", "")))

    def save(self, path) -> pathlib.Path:
        """Write the library as indented JSON; returns the path."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "GateLibrary":
        """Read a library previously written by :meth:`save`.

        Raises
        ------
        ParameterError
            If the file is not a gate library or has an unsupported
            format version.
        """
        payload = json.loads(pathlib.Path(path).read_text())
        return cls.from_dict(payload)
