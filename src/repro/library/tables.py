"""Characterized gate-delay tables and their JSON serialization.

A :class:`GateDelayTable` is the lookup-table form of one gate's MIS
delay surfaces — what an NLDM-style standard-cell library stores per
cell, here with the input-separation axis ``Δ`` the paper shows is
required for multi-input gates.  Each output direction is a
:class:`DelaySurface`: delays sampled over a rectangular
``(state, Δ)`` grid, bilinearly interpolated, where *state* is the
initial internal-node voltage of the transition that depends on one
(paper Section IV):

* a ``nor2`` cell's **rising** surface carries the ``V_N(0)`` axis
  (series pMOS stack); its falling surface is state-free (one row);
* a ``nand2`` cell — characterized through the CMOS mirror duality of
  :mod:`repro.core.duality` — carries the axis on its **falling**
  surface (``V_M(0)``, series nMOS stack) instead.

Lookups *clamp* to the characterized ranges: the grids produced by
:func:`repro.library.characterize.default_delta_grid` extend past the
settling region, where the curves sit on their SIS plateaus, so
clamping returns the ``δ(±∞)`` values instead of raising like
:meth:`~repro.core.charlie.MisCurve.delay_at` does mid-sweep.

n-input NOR cells (``"nor3"``, ``"nor4"``, …) store one
:class:`VectorDelaySurface` per direction instead: delays sampled over
an (n−1)-dimensional tensor grid of sibling offsets, multilinearly
interpolated.  Axis-aligned tensor grids cannot align with the
surface's kink bands (the diagonal ``Δ_i = Δ_j`` planes where the
input ordering changes), so the interpolation error there scales with
the grid pitch — pick the grid density for the accuracy you need;
:func:`repro.library.characterize.verify_table` measures it.

A :class:`GateLibrary` is a named collection of tables with a
versioned on-disk JSON format (all quantities SI: seconds, volts,
ohms, farads).  Format version 2 adds the n-input payloads; version-1
files still load.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import pathlib
import re
from typing import Any

import numpy as np

from ..core.charlie import CharacteristicDelays, MisCurve
from ..core.multi_input import GeneralizedNorParameters
from ..core.parameters import NorGateParameters
from ..errors import ParameterError
from ..units import to_ps

__all__ = ["DelaySurface", "GateDelayTable", "GateLibrary",
           "VectorDelaySurface", "LIBRARY_FORMAT",
           "LIBRARY_FORMAT_VERSION", "mis_gate_inputs"]

#: On-disk format identifier of serialized libraries.
LIBRARY_FORMAT = "repro-gate-library"
#: Current on-disk format version (bump on breaking schema changes).
LIBRARY_FORMAT_VERSION = 2
#: Format versions :meth:`GateLibrary.from_dict` still reads.
SUPPORTED_FORMAT_VERSIONS = (1, 2)

#: Two-input gate types (closed-form characterization conventions).
GATE_TYPES = ("nor2", "nand2")

#: n-input NOR cell names: ``nor3``, ``nor4``, …
_NOR_N = re.compile(r"^nor([2-9]|[1-9]\d+)$")


def mis_gate_inputs(gate: str) -> int:
    """Input count of a MIS gate type name.

    Parameters
    ----------
    gate : str
        ``"nor2"`` / ``"nand2"`` (the paper's 2-input cells) or
        ``"nor<n>"`` for the generalized n-input NOR.

    Returns
    -------
    int
        The number of gate inputs.

    Raises
    ------
    ParameterError
        If *gate* is not a recognized MIS gate type.
    """
    if gate == "nand2":
        return 2
    match = _NOR_N.match(gate)
    if match is None:
        raise ParameterError(
            f"gate must be 'nand2' or 'nor<n>' (n >= 2), got "
            f"{gate!r}")
    return int(match.group(1))


def _check_grid(values: tuple[float, ...], label: str,
                minimum: int) -> None:
    if len(values) < minimum:
        raise ParameterError(f"{label} grid needs at least {minimum} "
                             f"point(s), got {len(values)}")
    if len(values) > 1 and not np.all(
            np.diff(np.asarray(values)) > 0.0):
        raise ParameterError(f"{label} grid must be strictly "
                             "increasing")


def _check_range(values: np.ndarray, lo: float, hi: float,
                 label: str) -> None:
    """Reject NaN and finite out-of-range lookups with a clear
    message (``±inf`` deliberately reads the SIS edges)."""
    if np.isnan(values).any():
        raise ParameterError(f"{label} lookups must not be NaN")
    bad = np.isfinite(values) & ((values < lo) | (values > hi))
    if bad.any():
        worst = float(np.asarray(values)[bad].flat[0])
        raise ParameterError(
            f"{label} separation {worst!r} s is outside the "
            f"characterized range [{lo!r}, {hi!r}] s; pass "
            "clamp=True to read the plateau edges instead of "
            "extrapolating (±inf always reads them)")


@dataclasses.dataclass(frozen=True)
class DelaySurface:
    """Sampled MIS delays of one output direction over ``(state, Δ)``.

    Parameters
    ----------
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    deltas : tuple of float
        Strictly increasing input separations ``Δ = t_B − t_A`` in
        seconds (at least two points).
    state_grid : tuple of float
        Strictly increasing initial internal-node voltages in volts.
        A single-point grid marks a state-free surface.
    delays : tuple of tuple of float
        Delays in seconds, ``delays[i][j]`` for ``state_grid[i]`` and
        ``deltas[j]``; they include the pure delay ``δ_min`` exactly
        like the model's delay functions.

    Notes
    -----
    ``±inf`` lookups read the table edges (with grids that extend
    past the settling region those are the SIS plateaus ``δ(±∞)``);
    *finite* out-of-range separations raise unless ``clamp=True`` is
    passed, matching :meth:`repro.core.charlie.MisCurve.delay_at` —
    a silent edge-clamp would report a plateau that was never
    measured.  The state axis always clamps.
    """

    direction: str
    deltas: tuple[float, ...]
    state_grid: tuple[float, ...]
    delays: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if self.direction not in ("falling", "rising"):
            raise ParameterError("direction must be 'falling' or "
                                 "'rising'")
        _check_grid(self.deltas, "delta", 2)
        _check_grid(self.state_grid, "state", 1)
        if len(self.delays) != len(self.state_grid):
            raise ParameterError("need one delay row per state grid "
                                 "point")
        for row in self.delays:
            if len(row) != len(self.deltas):
                raise ParameterError("delay rows must have one entry "
                                     "per delta")

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    @property
    def delta_range(self) -> tuple[float, float]:
        """Characterized ``(Δ_min, Δ_max)`` in seconds."""
        return (self.deltas[0], self.deltas[-1])

    @property
    def state_dependent(self) -> bool:
        """Whether the surface actually carries a state axis."""
        return len(self.state_grid) > 1

    def delays_at(self, deltas, state: float = 0.0,
                  clamp: bool = False) -> np.ndarray:
        """Bilinearly interpolated delays for an array of separations.

        Parameters
        ----------
        deltas : array_like of float
            Separations in seconds; ``±inf`` reads the table edges
            (the SIS plateaus with the default grids).
        state : float, optional
            Initial internal-node voltage in volts, clamped to the
            state grid (default 0.0).
        clamp : bool, optional
            When true, *finite* out-of-range separations clamp to
            the table edges instead of raising — the NLDM-consumer
            semantics the table channel and STA arcs opt into.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*.

        Raises
        ------
        ParameterError
            For NaN lookups, or finite separations outside the
            characterized range when *clamp* is false.
        """
        d = np.asarray(deltas, dtype=float)
        if not clamp:
            _check_range(d, self.deltas[0], self.deltas[-1], "delta")
        d = np.clip(d, self.deltas[0], self.deltas[-1])
        grid = np.asarray(self.state_grid)
        s = min(max(float(state), grid[0]), grid[-1])
        hi = int(np.searchsorted(grid, s, side="left"))
        if hi == 0 or len(grid) == 1:
            return np.interp(d, self.deltas, self.delays[0])
        if hi == len(grid):
            return np.interp(d, self.deltas, self.delays[-1])
        lo = hi - 1
        low = np.interp(d, self.deltas, self.delays[lo])
        high = np.interp(d, self.deltas, self.delays[hi])
        weight = (s - grid[lo]) / (grid[hi] - grid[lo])
        return low * (1.0 - weight) + high * weight

    def delay_at(self, delta: float, state: float = 0.0,
                 clamp: bool = False) -> float:
        """Scalar :meth:`delays_at` (one separation, one state)."""
        return float(self.delays_at(float(delta), state, clamp=clamp))

    def curve(self, state: float = 0.0, label: str = "") -> MisCurve:
        """A constant-state cut of the surface as a :class:`MisCurve`."""
        delays = tuple(float(v) for v in
                       self.delays_at(np.asarray(self.deltas), state))
        return MisCurve(self.deltas, delays, self.direction,
                        label=label or f"table ({self.direction})")

    def characteristic(self,
                       state: float = 0.0) -> CharacteristicDelays:
        """``(δ(−∞), δ(0), δ(∞))`` read from the clamped table edges."""
        return CharacteristicDelays(
            minus_inf=self.delay_at(self.deltas[0], state),
            zero=self.delay_at(0.0, state),
            plus_inf=self.delay_at(self.deltas[-1], state))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (seconds / volts)."""
        return {
            "direction": self.direction,
            "deltas_s": list(self.deltas),
            "state_grid_v": list(self.state_grid),
            "delays_s": [list(row) for row in self.delays],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DelaySurface":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                direction=str(payload["direction"]),
                deltas=tuple(float(v) for v in payload["deltas_s"]),
                state_grid=tuple(float(v)
                                 for v in payload["state_grid_v"]),
                delays=tuple(tuple(float(v) for v in row)
                             for row in payload["delays_s"]),
            )
        except KeyError as missing:
            raise ParameterError(
                f"delay surface payload is missing {missing}") from None


@dataclasses.dataclass(frozen=True)
class VectorDelaySurface:
    """Sampled n-input MIS delays over an (n−1)-D Δ-vector grid.

    The Δ-vector generalization of :class:`DelaySurface`: one output
    direction of an n-input NOR, sampled on the tensor product of
    per-sibling offset grids and *multilinearly* interpolated.  The
    state axis of the 2-input surfaces is replaced by a single
    recorded ``internal_state`` — the chain-node voltage the rising
    surface was characterized at (the paper's GND worst case by
    default).

    Parameters
    ----------
    direction : str
        ``"falling"`` or ``"rising"`` (the output transition).
    axes : tuple of tuple of float
        One strictly increasing sibling-offset grid per sibling
        input (``n − 1`` axes, each with at least two points),
        seconds.
    delays : nested tuple of float
        Delays in seconds on the tensor grid:
        ``delays[i0][i1]…`` for ``axes[0][i0], axes[1][i1], …`` —
        ``δ_min`` included, exactly like the model's delay
        functions.
    internal_state : float, optional
        Internal chain-node voltage the surface was characterized
        at, volts (default 0.0).

    Notes
    -----
    ``±inf`` offsets read the grid edges; *finite* out-of-range
    offsets raise unless ``clamp=True``, like
    :meth:`DelaySurface.delays_at`.  Multilinear interpolation on an
    axis-aligned grid cannot align with the surface's diagonal kink
    bands (``Δ_i = Δ_j``), so the error there scales with the grid
    pitch — density is the accuracy dial.
    """

    direction: str
    axes: tuple[tuple[float, ...], ...]
    delays: tuple
    internal_state: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("falling", "rising"):
            raise ParameterError("direction must be 'falling' or "
                                 "'rising'")
        if not self.axes:
            raise ParameterError("need at least one sibling axis")
        for j, axis in enumerate(self.axes):
            _check_grid(tuple(axis), f"axis {j}", 2)
        shape = np.asarray(self.delays, dtype=float).shape
        expected = tuple(len(axis) for axis in self.axes)
        if shape != expected:
            raise ParameterError(
                f"delay grid shape {shape} does not match the axes "
                f"{expected}")

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    @functools.cached_property
    def _grid(self) -> np.ndarray:
        """The sampled delays as an ndarray (lookup workhorse)."""
        return np.asarray(self.delays, dtype=float)

    @property
    def num_siblings(self) -> int:
        """Number of sibling offsets a lookup takes (``n − 1``)."""
        return len(self.axes)

    @property
    def delta_ranges(self) -> tuple[tuple[float, float], ...]:
        """Characterized ``(Δ_min, Δ_max)`` per sibling axis."""
        return tuple((axis[0], axis[-1]) for axis in self.axes)

    def delays_at(self, deltas, clamp: bool = False) -> np.ndarray:
        """Multilinearly interpolated delays for Δ-vector arrays.

        Parameters
        ----------
        deltas : array_like of float
            Sibling offsets, shape ``(..., n−1)``; ``±inf`` reads
            the grid edges.
        clamp : bool, optional
            When true, finite out-of-range offsets clamp to the
            grid edges instead of raising.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, shape ``deltas.shape[:-1]``.

        Raises
        ------
        ParameterError
            On NaN lookups, Δ-vectors of the wrong width, or finite
            out-of-range offsets when *clamp* is false.
        """
        k = self.num_siblings
        d = np.asarray(deltas, dtype=float)
        if d.ndim == 0 or d.shape[-1] != k:
            raise ParameterError(
                f"delta vectors must have a trailing axis of length "
                f"{k} (one offset per sibling input), got shape "
                f"{d.shape}")
        points = d.reshape(-1, k).copy()
        rows = points.shape[0]
        index = np.empty((rows, k), dtype=int)
        frac = np.empty((rows, k))
        for j, axis in enumerate(self.axes):
            ax = np.asarray(axis)
            column = points[:, j]
            if not clamp:
                _check_range(column, ax[0], ax[-1], f"axis-{j}")
            elif np.isnan(column).any():
                raise ParameterError(
                    f"axis-{j} lookups must not be NaN")
            column = np.clip(column, ax[0], ax[-1])
            cell = np.clip(
                np.searchsorted(ax, column, side="right") - 1,
                0, len(ax) - 2)
            index[:, j] = cell
            frac[:, j] = (column - ax[cell]) / (ax[cell + 1]
                                                - ax[cell])
        out = np.zeros(rows)
        for corner in range(2 ** k):
            select = index.copy()
            weight = np.ones(rows)
            for j in range(k):
                if corner >> j & 1:
                    select[:, j] += 1
                    weight *= frac[:, j]
                else:
                    weight *= 1.0 - frac[:, j]
            out += self._grid[tuple(select.T)] * weight
        return out.reshape(d.shape[:-1])

    def delay_at(self, delta, clamp: bool = False) -> float:
        """Scalar :meth:`delays_at` (one Δ-vector)."""
        return float(self.delays_at(np.asarray(delta, dtype=float),
                                    clamp=clamp))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (seconds / volts)."""
        return {
            "direction": self.direction,
            "axes_s": [list(axis) for axis in self.axes],
            "delays_s": np.asarray(self.delays,
                                   dtype=float).tolist(),
            "internal_state_v": self.internal_state,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "VectorDelaySurface":
        """Inverse of :meth:`to_dict`."""

        def nest(values):
            if isinstance(values, (int, float)):
                return float(values)
            return tuple(nest(v) for v in values)

        try:
            return cls(
                direction=str(payload["direction"]),
                axes=tuple(tuple(float(v) for v in axis)
                           for axis in payload["axes_s"]),
                delays=nest(payload["delays_s"]),
                internal_state=float(
                    payload.get("internal_state_v", 0.0)),
            )
        except KeyError as missing:
            raise ParameterError(
                f"vector delay surface payload is missing "
                f"{missing}") from None


@dataclasses.dataclass(frozen=True)
class GateDelayTable:
    """Interpolated MIS delay tables of one characterized gate.

    Parameters
    ----------
    cell : str
        Cell name the table is stored under (e.g. ``"nor2_paper"``).
    gate : str
        Gate type — ``"nor2"`` / ``"nand2"`` (the paper's 2-input
        cells, :class:`DelaySurface` pairs) or ``"nor<n>"`` for the
        generalized n-input NOR (:class:`VectorDelaySurface` pairs).
        Fixes the boolean function and the delay reference
        conventions consumed by
        :class:`repro.timing.channels.TableDelayChannel`.
    params : NorGateParameters or GeneralizedNorParameters
        The electrical parameter set the table was characterized from
        (kept for provenance and re-verification); the generalized
        kind for n-input cells.
    falling, rising : DelaySurface or VectorDelaySurface
        The two output-transition surfaces (both of the same kind).
    engine : str, optional
        Name of the delay engine that produced the samples.
    """

    cell: str
    gate: str
    params: NorGateParameters | GeneralizedNorParameters
    falling: DelaySurface | VectorDelaySurface
    rising: DelaySurface | VectorDelaySurface
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        inputs = mis_gate_inputs(self.gate)
        if self.falling.direction != "falling":
            raise ParameterError("falling surface has direction "
                                 f"{self.falling.direction!r}")
        if self.rising.direction != "rising":
            raise ParameterError("rising surface has direction "
                                 f"{self.rising.direction!r}")
        if self.gate in GATE_TYPES:
            for surface in (self.falling, self.rising):
                if not isinstance(surface, DelaySurface):
                    raise ParameterError(
                        f"{self.gate!r} tables store DelaySurface "
                        f"pairs, got {type(surface).__name__}")
            if not isinstance(self.params, NorGateParameters):
                raise ParameterError(
                    f"{self.gate!r} tables are characterized from "
                    "NorGateParameters")
            return
        for surface in (self.falling, self.rising):
            if not isinstance(surface, VectorDelaySurface):
                raise ParameterError(
                    f"{self.gate!r} tables store VectorDelaySurface "
                    f"pairs, got {type(surface).__name__}")
            if surface.num_siblings != inputs - 1:
                raise ParameterError(
                    f"{self.gate!r} surfaces need {inputs - 1} "
                    f"sibling axes, got {surface.num_siblings}")
        if (not isinstance(self.params, GeneralizedNorParameters)
                or self.params.num_inputs != inputs):
            raise ParameterError(
                f"{self.gate!r} tables are characterized from a "
                f"{inputs}-input GeneralizedNorParameters set")

    @property
    def num_inputs(self) -> int:
        """Input count of the characterized gate."""
        return mis_gate_inputs(self.gate)

    # ------------------------------------------------------------------
    # lookup (thin sugar over the surfaces)
    # ------------------------------------------------------------------

    def delay_falling(self, delta, state: float = 0.0,
                      clamp: bool = False) -> float:
        """Falling-output delay ``δ↓(Δ)`` in seconds.

        Parameters
        ----------
        delta : float or sequence of float
            Input separation in seconds — a scalar for 2-input
            cells, a Δ-vector of ``n − 1`` sibling offsets for
            n-input ones; ``±inf`` reads the SIS edge.
        state : float, optional
            Initial stack-node voltage in volts — only meaningful
            for gate types whose falling surface is state-dependent
            (``nand2``); ignored by n-input cells.
        clamp : bool, optional
            Clamp finite out-of-range separations to the table
            edges instead of raising.
        """
        if isinstance(self.falling, VectorDelaySurface):
            return self.falling.delay_at(delta, clamp=clamp)
        return self.falling.delay_at(delta, state, clamp=clamp)

    def delay_rising(self, delta, state: float = 0.0,
                     clamp: bool = False) -> float:
        """Rising-output delay ``δ↑(Δ)`` in seconds.

        Parameters
        ----------
        delta : float or sequence of float
            Input separation in seconds — a scalar for 2-input
            cells, a Δ-vector for n-input ones; ``±inf`` reads the
            SIS edge.
        state : float, optional
            Initial internal-node voltage in volts (``V_N(0)`` for
            ``nor2``; ignored for ``nand2`` and for n-input cells,
            whose rising surfaces record their characterized
            ``internal_state``).
        clamp : bool, optional
            Clamp finite out-of-range separations to the table
            edges instead of raising.
        """
        if isinstance(self.rising, VectorDelaySurface):
            return self.rising.delay_at(delta, clamp=clamp)
        return self.rising.delay_at(delta, state, clamp=clamp)

    def describe(self) -> str:
        """One-line summary used by the CLI inspector."""
        if isinstance(self.falling, VectorDelaySurface):
            zero = [0.0] * self.falling.num_siblings
            axes = "x".join(str(len(axis))
                            for axis in self.falling.axes)
            lo, hi = self.falling.delta_ranges[0]
            return (f"{self.cell}: {self.gate}, {axes} delta grid "
                    f"in [{to_ps(lo):.0f}, {to_ps(hi):.0f}] ps per "
                    f"axis; fall(0) "
                    f"{to_ps(self.falling.delay_at(zero)):.2f} ps, "
                    f"rise(0) "
                    f"{to_ps(self.rising.delay_at(zero)):.2f} ps")
        fall = self.falling.characteristic()
        rise = self.rising.characteristic()
        return (f"{self.cell}: {self.gate}, "
                f"{len(self.falling.deltas)} deltas in "
                f"[{to_ps(self.falling.deltas[0]):.0f}, "
                f"{to_ps(self.falling.deltas[-1]):.0f}] ps, "
                f"{len(self.falling.state_grid)}x"
                f"{len(self.rising.state_grid)} state rows; "
                f"fall(0) {to_ps(fall.zero):.2f} ps, "
                f"rise(0) {to_ps(rise.zero):.2f} ps")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (SI units throughout)."""
        return {
            "cell": self.cell,
            "gate": self.gate,
            "engine": self.engine,
            "params": self.params.as_dict(),
            "falling": self.falling.to_dict(),
            "rising": self.rising.to_dict(),
        }

    @staticmethod
    def _surface_from_dict(payload: dict[str, Any]
                           ) -> DelaySurface | VectorDelaySurface:
        """Decode either surface kind (n-input payloads carry
        ``axes_s``)."""
        if "axes_s" in payload:
            return VectorDelaySurface.from_dict(payload)
        return DelaySurface.from_dict(payload)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GateDelayTable":
        """Inverse of :meth:`to_dict`.

        Raises
        ------
        ParameterError
            If required keys are missing or grids are malformed.
        """
        try:
            params = payload["params"]
            if "r_pullup" in params:
                decoded = GeneralizedNorParameters(**params)
            else:
                decoded = NorGateParameters(**params)
            return cls(
                cell=str(payload["cell"]),
                gate=str(payload["gate"]),
                engine=str(payload.get("engine", "vectorized")),
                params=decoded,
                falling=cls._surface_from_dict(payload["falling"]),
                rising=cls._surface_from_dict(payload["rising"]),
            )
        except KeyError as missing:
            raise ParameterError(
                f"gate table payload is missing {missing}") from None
        except TypeError as error:
            raise ParameterError(
                f"malformed gate-parameter payload: {error}") from None


@dataclasses.dataclass(frozen=True)
class GateLibrary:
    """A named, serializable collection of characterized gate tables.

    Parameters
    ----------
    name : str
        Library name (stored in the JSON header).
    tables : dict of str to GateDelayTable
        Tables keyed by cell name.
    description : str, optional
        Free-form provenance note.
    """

    name: str
    tables: dict[str, GateDelayTable]
    description: str = ""

    def __post_init__(self) -> None:
        for cell, table in self.tables.items():
            if cell != table.cell:
                raise ParameterError(
                    f"library key {cell!r} does not match table cell "
                    f"{table.cell!r}")

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables.values())

    def __getitem__(self, cell: str) -> GateDelayTable:
        try:
            return self.tables[cell]
        except KeyError:
            raise KeyError(
                f"no cell {cell!r} in library {self.name!r}; "
                f"available: {', '.join(sorted(self.tables))}"
            ) from None

    @property
    def cells(self) -> tuple[str, ...]:
        """Sorted cell names."""
        return tuple(sorted(self.tables))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Versioned plain-JSON representation."""
        return {
            "format": LIBRARY_FORMAT,
            "format_version": LIBRARY_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "cells": {cell: table.to_dict()
                      for cell, table in sorted(self.tables.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GateLibrary":
        """Inverse of :meth:`to_dict`, with format validation."""
        if payload.get("format") != LIBRARY_FORMAT:
            raise ParameterError(
                "not a gate-library payload (format="
                f"{payload.get('format')!r})")
        version = payload.get("format_version")
        if version not in SUPPORTED_FORMAT_VERSIONS:
            raise ParameterError(
                f"unsupported library format version {version!r} "
                f"(this build reads versions "
                f"{SUPPORTED_FORMAT_VERSIONS})")
        tables = {cell: GateDelayTable.from_dict(table)
                  for cell, table in payload.get("cells", {}).items()}
        return cls(name=str(payload.get("name", "")),
                   tables=tables,
                   description=str(payload.get("description", "")))

    def save(self, path) -> pathlib.Path:
        """Write the library as indented JSON; returns the path."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "GateLibrary":
        """Read a library previously written by :meth:`save`.

        Raises
        ------
        ParameterError
            If the file is not a gate library or has an unsupported
            format version.
        """
        payload = json.loads(pathlib.Path(path).read_text())
        return cls.from_dict(payload)
