"""Batch timing-library characterization through the engine seam.

This is the scenario the vectorized/parallel engines exist for: sweep
a grid of ``(gate, parameter set, Δ range, state grid)`` jobs through
a delay engine and produce :class:`~repro.library.tables.GateDelayTable`
entries that an event simulator can consume — the flow standard-cell
characterization runs against SPICE, here against the closed-form
hybrid model at array speed.

The default Δ grid is engineered for interpolation accuracy: a dense
uniform core across the MIS region (where the curves bend and kink),
plus a geometric tail out past the model's settling cutoff so the
clamped table edges are *exactly* the SIS plateaus ``δ(±∞)``.  With
the defaults the linear-interpolation error against direct engine
evaluation stays below 0.06 ps everywhere — worst at the slope kinks
of the falling curve — against the acceptance bound of 0.1 ps;
:func:`verify_table` measures it.

NAND cells are characterized through the CMOS mirror duality
(:mod:`repro.core.duality`): the NAND falling surface is the NOR
rising surface with the state axis mirrored (``V_M = VDD − V_N``),
and the NAND rising surface is the NOR falling curve.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import numpy as np

from .. import cache
from ..core.hybrid_model import settle_time
from ..core.multi_input import (GeneralizedNorParameters,
                                generalized_model, paper_generalized)
from ..core.parameters import PAPER_TABLE_I, NorGateParameters
from ..engine import get_engine
from ..errors import ParameterError
from .tables import (GATE_TYPES, DelaySurface, GateDelayTable,
                     GateLibrary, VectorDelaySurface, mis_gate_inputs)

__all__ = [
    "CharacterizationJob",
    "TableAccuracy",
    "characterize_gate",
    "characterize_library",
    "default_delta_grid",
    "default_state_grid",
    "default_vector_delta_grid",
    "generalized_jobs",
    "paper_jobs",
    "verify_table",
]

#: Core (uniform) Δ samples of the default grid, per direction.
DEFAULT_CORE_POINTS = 1025
#: Geometric tail samples on each side of the core.
DEFAULT_TAIL_POINTS = 32
#: Default state-axis (internal-node voltage) grid size.
DEFAULT_STATE_POINTS = 5
#: Default per-axis Δ samples of n-input (tensor) grids — the grid
#: is (n−1)-dimensional, so the per-axis budget is necessarily far
#: smaller than the 2-input default.
DEFAULT_VECTOR_CORE_POINTS = 129
#: Random Δ-vector probes per unit *oversample* used by
#: :func:`verify_table` on n-input tables (a dense tensor probe grid
#: would dwarf the characterization itself).
VECTOR_PROBES_PER_OVERSAMPLE = 4096


def default_delta_grid(params: NorGateParameters,
                       core_points: int = DEFAULT_CORE_POINTS,
                       tail_points: int = DEFAULT_TAIL_POINTS,
                       core_span: float | None = None) -> np.ndarray:
    """The Δ sampling grid used for characterization, in seconds.

    Parameters
    ----------
    params : NorGateParameters
        Parameter set whose time constants size the grid.
    core_points : int, optional
        Uniform samples across the central ``±core_span`` window
        where the MIS curves bend (default 1025).
    tail_points : int, optional
        Additional geometrically spaced samples per side reaching
        past the settling cutoff (default 32) — the curves are
        exponentially flat there, so few points suffice.
    core_span : float, optional
        Half-width of the uniform core in seconds.  Defaults to
        eight times the slowest RC time constant of *params*.

    Returns
    -------
    numpy.ndarray
        Strictly increasing separations, symmetric around 0,
        spanning ``±1.05 x settle_time(params)`` so that clamped
        lookups beyond the grid return the exact SIS plateaus.
    """
    if core_points < 3:
        raise ParameterError("core_points must be >= 3")
    if tail_points < 1:
        raise ParameterError("tail_points must be >= 1")
    settle = settle_time(params)
    tau_max = settle / 60.0  # settle_time is 60x the slowest tau
    if core_span is None:
        core_span = 8.0 * tau_max
    core_span = float(core_span)
    if not 0.0 < core_span < settle:
        raise ParameterError("core_span must lie in (0, settle_time)")
    # Odd core size keeps Δ = 0 an exact sample.
    if core_points % 2 == 0:
        core_points += 1
    core = np.linspace(-core_span, core_span, core_points)
    tail = np.geomspace(core_span, 1.05 * settle, tail_points + 1)[1:]
    return np.concatenate([-tail[::-1], core, tail])


def default_state_grid(params: NorGateParameters,
                       points: int = DEFAULT_STATE_POINTS) -> np.ndarray:
    """Internal-node voltage grid ``[0, VDD]`` in volts."""
    if points < 2:
        raise ParameterError("state grid needs at least 2 points")
    return np.linspace(0.0, params.vdd, points)


def default_vector_delta_grid(params: GeneralizedNorParameters,
                              core_points: int =
                              DEFAULT_VECTOR_CORE_POINTS,
                              core_span: float | None = None
                              ) -> np.ndarray:
    """The per-sibling Δ axis of an n-input characterization grid.

    A *uniform* symmetric window — n-input surfaces get no geometric
    tails, because the delay far from the origin depends on the
    *differences* between sibling offsets (the diagonal MIS band),
    which sparse axis-aligned tails cannot resolve.  Out-of-window
    lookups clamp to the window edge when the consumer opts in.

    Parameters
    ----------
    params : GeneralizedNorParameters
        Parameter set whose time constants size the window.
    core_points : int, optional
        Samples per sibling axis (default 129; forced odd so
        ``Δ = 0`` is an exact sample).
    core_span : float, optional
        Half-width of the window in seconds; defaults to four times
        the slowest RC time constant of *params*.

    Returns
    -------
    numpy.ndarray
        Strictly increasing offsets, symmetric around 0.
    """
    if core_points < 3:
        raise ParameterError("core_points must be >= 3")
    if core_span is None:
        # settle_time() is 60x the slowest tau over all modes.
        core_span = 4.0 * generalized_model(params).settle_time() / 60.0
    core_span = float(core_span)
    if not (np.isfinite(core_span) and core_span > 0.0):
        raise ParameterError("core_span must be positive and finite")
    if core_points % 2 == 0:
        core_points += 1
    return np.linspace(-core_span, core_span, core_points)


@dataclasses.dataclass(frozen=True)
class CharacterizationJob:
    """One cell of a characterization grid.

    Parameters
    ----------
    cell : str
        Name the resulting table is stored under.
    params : NorGateParameters or GeneralizedNorParameters
        Electrical parameters of the (mirrored, for NAND) hybrid
        model, SI units; the generalized kind for ``"nor<n>"`` gates
        with more than two inputs.
    gate : str, optional
        ``"nor2"`` (default), ``"nand2"``, or ``"nor<n>"`` for the
        generalized n-input NOR.
    technology : str, optional
        Free-form technology label recorded for provenance (e.g.
        ``"finfet15"``).
    deltas : tuple of float, optional
        Explicit Δ grid in seconds — the full axis for 2-input
        gates, the shared per-sibling axis of the tensor grid for
        n-input ones; ``None`` (default) uses
        :func:`default_delta_grid` / :func:`default_vector_delta_grid`.
    state_grid : tuple of float, optional
        Explicit internal-node voltage grid in volts (2-input gates
        only); ``None`` (default) uses :func:`default_state_grid`.
    internal_state : float, optional
        Chain-node voltage the *rising* surface of an n-input gate
        is characterized at, volts (default 0.0, the paper's GND
        worst case).  Ignored by 2-input gates.
    """

    cell: str
    params: NorGateParameters | GeneralizedNorParameters
    gate: str = "nor2"
    technology: str = ""
    deltas: tuple[float, ...] | None = None
    state_grid: tuple[float, ...] | None = None
    internal_state: float = 0.0

    @property
    def num_inputs(self) -> int:
        """Input count implied by the gate type."""
        return mis_gate_inputs(self.gate)

    def resolved_deltas(self) -> np.ndarray:
        """The job's Δ axis (explicit or default), seconds."""
        if self.deltas is not None:
            return np.asarray(self.deltas, dtype=float)
        if self.gate in GATE_TYPES:
            return default_delta_grid(self.params)
        return default_vector_delta_grid(self.params)

    def resolved_state_grid(self) -> np.ndarray:
        """The job's state grid (explicit or default), volts."""
        if self.state_grid is not None:
            return np.asarray(self.state_grid, dtype=float)
        return default_state_grid(self.params)


def paper_jobs(params: NorGateParameters = PAPER_TABLE_I,
               technology: str = "finfet15",
               suffix: str = "paper"
               ) -> tuple[CharacterizationJob, ...]:
    """The default characterization grid: gates x pure-delay variants.

    Parameters
    ----------
    params : NorGateParameters, optional
        Base parameter set (default: the paper's Table I).
    technology : str, optional
        Provenance label recorded on every job.
    suffix : str, optional
        Cell-name suffix, e.g. ``"paper"`` -> ``"nor2_paper"`` —
        lets fitted parameter sets coexist with the defaults in one
        library.

    Returns
    -------
    tuple of CharacterizationJob
        Four cells: NOR2/NAND2, each with *params* as given and with
        the pure delay ``δ_min`` removed (the paper's "HM without
        δ_min" ablation variant).
    """
    bare = params.without_delta_min()
    return (
        CharacterizationJob(f"nor2_{suffix}", params, "nor2",
                            technology),
        CharacterizationJob(f"nor2_{suffix}_no_dmin", bare, "nor2",
                            technology),
        CharacterizationJob(f"nand2_{suffix}", params, "nand2",
                            technology),
        CharacterizationJob(f"nand2_{suffix}_no_dmin", bare, "nand2",
                            technology),
    )


def generalized_jobs(num_inputs: int,
                     params: GeneralizedNorParameters | None = None,
                     technology: str = "finfet15",
                     suffix: str = "paper"
                     ) -> tuple[CharacterizationJob, ...]:
    """Characterization jobs for an n-input NOR cell.

    Parameters
    ----------
    num_inputs : int
        Gate width ``n >= 2``.
    params : GeneralizedNorParameters, optional
        n-input parameter set; ``None`` (default) extrapolates the
        paper's Table I through
        :func:`repro.core.multi_input.paper_generalized`.
    technology : str, optional
        Provenance label recorded on the job.
    suffix : str, optional
        Cell-name suffix, e.g. ``"paper"`` -> ``"nor3_paper"``.

    Returns
    -------
    tuple of CharacterizationJob
        One ``nor<n>`` job (the n-input flow characterizes the
        worst-case GND chain state; the pure-delay ablation variants
        of :func:`paper_jobs` stay a 2-input study).
    """
    if params is None:
        params = paper_generalized(num_inputs)
    if params.num_inputs != num_inputs:
        raise ParameterError(
            f"parameter set has {params.num_inputs} inputs, job asks "
            f"for {num_inputs}")
    gate = f"nor{num_inputs}"
    return (CharacterizationJob(f"{gate}_{suffix}", params, gate,
                                technology),)


def _job_descriptor(job: CharacterizationJob, engine_name: str,
                    deltas: np.ndarray) -> dict:
    """Persistent-cache content descriptor of one job.

    Grids are recorded *resolved*, so an explicit grid equal to the
    default hashes to the same key as the default.  The engine name
    is part of the key: tables record their engine provenance, and
    backends only agree to the parity bound, not bit-exactly.
    """
    descriptor = {
        "kind": "gate-table",
        "schema": cache.SCHEMA_VERSION,
        "cell": job.cell,
        "gate": job.gate,
        "technology": job.technology,
        "engine": engine_name,
        "params": job.params.as_dict(),
        "deltas": [float(d) for d in deltas],
    }
    if job.gate in GATE_TYPES:
        descriptor["state_grid"] = [
            float(s) for s in job.resolved_state_grid()]
    else:
        descriptor["internal_state"] = float(job.internal_state)
    return descriptor


def characterize_gate(job: CharacterizationJob,
                      engine=None) -> GateDelayTable:
    """Characterize one gate into an interpolated delay table.

    Parameters
    ----------
    job : CharacterizationJob
        Cell name, gate type, parameters and grids.
    engine : str or DelayEngine, optional
        Evaluation backend (name, instance, or ``None`` for the
        vectorized default).  The ``parallel`` backend shards the
        per-state Δ sweeps across worker processes.

    Returns
    -------
    GateDelayTable
        Both output-direction surfaces, delays in seconds with
        ``δ_min`` included.

    Notes
    -----
    When the persistent cache is active (see :mod:`repro.cache`),
    the finished table is stored under a content key derived from
    the job and engine name, and later calls — including from other
    processes sharing the same ``REPRO_CACHE_DIR`` — return the
    stored table without touching the engine.
    """
    backend = get_engine(engine)
    mis_gate_inputs(job.gate)  # reject unknown gate types early
    deltas = job.resolved_deltas()
    store = cache.get_store()
    key = None
    if store is not None:
        key = cache.content_key(
            _job_descriptor(job, backend.name, deltas))
        payload = store.get_json(key)
        if payload is not None:
            try:
                return GateDelayTable.from_dict(payload)
            except (ParameterError, KeyError, TypeError, ValueError):
                pass  # corrupt entry: recompute and overwrite below
    table = _characterize_gate_direct(job, backend, deltas)
    if store is not None:
        store.put_json(key, table.to_dict())
    return table


def _characterize_gate_direct(job: CharacterizationJob, backend,
                              deltas: np.ndarray) -> GateDelayTable:
    """Evaluate one job through the engine (no persistent cache)."""
    params = job.params
    if job.gate not in GATE_TYPES:
        return _characterize_vector_gate(job, backend, deltas)
    states = job.resolved_state_grid()
    grid = tuple(float(d) for d in deltas)

    def falling_row() -> tuple[float, ...]:
        return tuple(float(v)
                     for v in backend.delays_falling(params, deltas))

    def rising_row(vn: float) -> tuple[float, ...]:
        return tuple(float(v)
                     for v in backend.delays_rising(params, deltas,
                                                    float(vn)))

    if job.gate == "nor2":
        falling = DelaySurface("falling", grid, (0.0,),
                               (falling_row(),))
        rising = DelaySurface(
            "rising", grid, tuple(float(s) for s in states),
            tuple(rising_row(vn) for vn in states))
    elif job.gate == "nand2":
        # Mirror duality: NAND falling(Δ, V_M) = NOR rising(Δ, VDD−V_M)
        # and NAND rising(Δ) = NOR falling(Δ).
        falling = DelaySurface(
            "falling", grid, tuple(float(s) for s in states),
            tuple(rising_row(params.vdd - vm) for vm in states))
        rising = DelaySurface("rising", grid, (0.0,),
                              (falling_row(),))
    else:
        raise ParameterError(f"unsupported gate type {job.gate!r}")

    return GateDelayTable(cell=job.cell, gate=job.gate, params=params,
                          falling=falling, rising=rising,
                          engine=backend.name)


def _nested_tuple(values):
    """Recursively freeze nested lists (ndarray.tolist output)."""
    if isinstance(values, list):
        return tuple(_nested_tuple(v) for v in values)
    return float(values)


def _characterize_vector_gate(job: CharacterizationJob, backend,
                              axis: np.ndarray) -> GateDelayTable:
    """Grid an n-input NOR into a :class:`VectorDelaySurface` pair.

    The tensor-product Δ-vector grid is evaluated through the
    engine's Δ-vector entry points — one batched call per direction,
    which is exactly the workload the batched
    :class:`~repro.core.multi_input.GeneralizedNorModel` solver and
    the sharded parallel backend exist for.
    """
    params = job.params
    if not isinstance(params, GeneralizedNorParameters):
        raise ParameterError(
            f"{job.gate!r} jobs need GeneralizedNorParameters")
    siblings = job.num_inputs - 1
    axes = tuple(tuple(float(d) for d in axis)
                 for _ in range(siblings))
    mesh = np.stack(np.meshgrid(*([axis] * siblings),
                                indexing="ij"), axis=-1)
    state = float(job.internal_state)
    falling = VectorDelaySurface(
        "falling", axes,
        _nested_tuple(backend.delays_falling_n(params,
                                               mesh).tolist()),
        internal_state=state)
    rising = VectorDelaySurface(
        "rising", axes,
        _nested_tuple(backend.delays_rising_n(params, mesh,
                                              state).tolist()),
        internal_state=state)
    return GateDelayTable(cell=job.cell, gate=job.gate, params=params,
                          falling=falling, rising=rising,
                          engine=backend.name)


def characterize_library(jobs: Iterable[CharacterizationJob],
                         engine=None,
                         name: str = "repro-hybrid",
                         description: str = "") -> GateLibrary:
    """Run a grid of characterization jobs into one library.

    Parameters
    ----------
    jobs : iterable of CharacterizationJob
        The characterization grid (see :func:`paper_jobs`).
    engine : str or DelayEngine, optional
        Backend shared by all jobs.
    name, description : str, optional
        Library metadata stored in the JSON header.

    Returns
    -------
    GateLibrary
        One table per job, keyed by cell name.

    Raises
    ------
    ParameterError
        On duplicate cell names in *jobs*.
    """
    backend = get_engine(engine)
    tables: dict[str, GateDelayTable] = {}
    for job in jobs:
        if job.cell in tables:
            raise ParameterError(f"duplicate cell name {job.cell!r} "
                                 "in characterization grid")
        tables[job.cell] = characterize_gate(job, backend)
    return GateLibrary(name=name, tables=tables,
                       description=description)


@dataclasses.dataclass(frozen=True)
class TableAccuracy:
    """Interpolation error of one table against direct evaluation.

    Attributes
    ----------
    cell : str
        Cell the errors belong to.
    falling_error : float
        Max |table − engine| over the probe set, falling surface,
        seconds.
    rising_error : float
        Same for the rising surface.
    """

    cell: str
    falling_error: float
    rising_error: float

    @property
    def max_error(self) -> float:
        """Worst-case error across both surfaces, seconds."""
        return max(self.falling_error, self.rising_error)


def verify_table(table: GateDelayTable, engine=None,
                 oversample: int = 4) -> TableAccuracy:
    """Measure a table's interpolation error against its engine.

    2-input tables are probed on an *oversampled* uniform grid
    spanning the characterized Δ range (so probe points fall between
    the stored samples, where linear interpolation is worst) at every
    stored state-grid node.  n-input tables are probed at
    ``oversample x 4096`` seeded-random Δ-vectors inside the
    characterized box plus every cell center along the main diagonal
    (the kink band where multilinear interpolation is worst) — a
    dense tensor probe grid would dwarf the characterization itself.
    Either way, probes are compared against direct engine evaluation.

    Parameters
    ----------
    table : GateDelayTable
        The characterized table.
    engine : str or DelayEngine, optional
        Backend used for the direct evaluation (defaults to the
        vectorized default, independent of what built the table).
    oversample : int, optional
        Probe-density multiplier relative to the stored grid
        (default 4).

    Returns
    -------
    TableAccuracy
        Per-direction worst-case absolute errors in seconds.
    """
    backend = get_engine(engine)
    params = table.params
    if isinstance(table.falling, VectorDelaySurface):
        return _verify_vector_table(table, backend, oversample)
    lo, hi = table.falling.delta_range
    probes = np.linspace(lo, hi,
                         oversample * len(table.falling.deltas) + 1)

    def direct(direction: str, state: float) -> np.ndarray:
        if table.gate == "nor2":
            if direction == "falling":
                return backend.delays_falling(params, probes)
            return backend.delays_rising(params, probes, state)
        if direction == "falling":
            return backend.delays_rising(params, probes,
                                         params.vdd - state)
        return backend.delays_falling(params, probes)

    errors = {"falling": 0.0, "rising": 0.0}
    for direction in ("falling", "rising"):
        surface = getattr(table, direction)
        for state in surface.state_grid:
            interpolated = surface.delays_at(probes, state)
            exact = direct(direction, float(state))
            errors[direction] = max(
                errors[direction],
                float(np.max(np.abs(interpolated - exact))))
    return TableAccuracy(cell=table.cell,
                         falling_error=errors["falling"],
                         rising_error=errors["rising"])


def _verify_vector_table(table: GateDelayTable, backend,
                         oversample: int) -> TableAccuracy:
    """Probe an n-input table at random + diagonal-center vectors."""
    params = table.params
    surface = table.falling
    lows = np.array([axis[0] for axis in surface.axes])
    highs = np.array([axis[-1] for axis in surface.axes])
    rng = np.random.default_rng(0)
    count = max(1, oversample) * VECTOR_PROBES_PER_OVERSAMPLE
    probes = lows + (highs - lows) * rng.random((count, lows.size))
    # Cell centers along the main diagonal: the Δ_i = Δ_j kink band.
    centers = 0.5 * (np.asarray(surface.axes[0])[:-1]
                     + np.asarray(surface.axes[0])[1:])
    diagonal = np.stack([np.clip(centers, low, high)
                         for low, high in zip(lows, highs)], axis=-1)
    probes = np.concatenate([probes, diagonal])
    state = float(surface.internal_state)
    errors = {}
    for direction in ("falling", "rising"):
        interpolated = getattr(table, direction).delays_at(probes)
        if direction == "falling":
            exact = backend.delays_falling_n(params, probes)
        else:
            exact = backend.delays_rising_n(params, probes, state)
        errors[direction] = float(np.max(np.abs(interpolated
                                                - exact)))
    return TableAccuracy(cell=table.cell,
                         falling_error=errors["falling"],
                         rising_error=errors["rising"])
