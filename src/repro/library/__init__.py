"""Timing-library characterization: gates -> interpolated delay tables.

This package turns the hybrid model into what downstream digital flows
actually consume — a *characterized library*, in the spirit of
NLDM-style standard-cell libraries but with the input-separation axis
``Δ`` the paper shows multi-input gates need:

* :mod:`repro.library.characterize` sweeps a grid of
  ``(gate, parameters, Δ range, state grid)`` jobs through a delay
  engine (:mod:`repro.engine` — the ``parallel`` backend shards the
  sweeps across processes);
* :mod:`repro.library.tables` holds the resulting
  :class:`GateDelayTable` surfaces — bilinear ``(state, Δ)`` lookup
  for the paper's 2-input cells, multilinear Δ-vector lookup
  (:class:`VectorDelaySurface`) for n-input NOR cells — with a
  versioned JSON on-disk format;
* :class:`repro.timing.channels.TableDelayChannel` replays a table in
  event-driven simulation, replacing the closed-form model with pure
  lookups.

Quickstart::

    from repro.library import (characterize_library, paper_jobs,
                               GateLibrary)
    lib = characterize_library(paper_jobs(), engine="vectorized")
    lib.save("paper_gates.json")
    table = GateLibrary.load("paper_gates.json")["nor2_paper"]
    table.delay_falling(10e-12)     # interpolated MIS delay, seconds

The CLI front-end is ``repro characterize`` / ``repro library`` —
both thin adapters over the session facade
(:class:`repro.api.Session` running a
:class:`~repro.api.CharacterizeRequest` /
:class:`~repro.api.LibraryRequest`), whose results embed the
serialized library payload for transport.
"""

from .characterize import (CharacterizationJob, TableAccuracy,
                           characterize_gate, characterize_library,
                           default_delta_grid, default_state_grid,
                           default_vector_delta_grid,
                           generalized_jobs, paper_jobs, verify_table)
from .tables import (LIBRARY_FORMAT, LIBRARY_FORMAT_VERSION,
                     DelaySurface, GateDelayTable, GateLibrary,
                     VectorDelaySurface, mis_gate_inputs)

__all__ = [
    "CharacterizationJob",
    "DelaySurface",
    "GateDelayTable",
    "GateLibrary",
    "LIBRARY_FORMAT",
    "LIBRARY_FORMAT_VERSION",
    "TableAccuracy",
    "VectorDelaySurface",
    "characterize_gate",
    "characterize_library",
    "default_delta_grid",
    "default_state_grid",
    "default_vector_delta_grid",
    "generalized_jobs",
    "mis_gate_inputs",
    "paper_jobs",
    "verify_table",
]
