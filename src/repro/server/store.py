"""Crash-safe on-disk store for batch jobs.

A batch job is a JSONL file of request envelopes plus the bookkeeping
needed to execute it at-most-once per line and to survive a process
crash at any instant.  The store follows the :mod:`repro.cache`
conventions:

* **Content-hash keys** — the job id is the SHA-256
  :func:`repro.cache.content_key` of the uploaded JSONL text, so
  resubmitting the same file is idempotent: the caller gets the same
  id (and, if the job already ran, its finished results) instead of a
  duplicate job.
* **Schema-versioned layout** — everything lives under
  ``<root>/v1/<id[:2]>/<id>/``::

      input.jsonl      # the uploaded request lines, verbatim
      meta.json        # status + progress counters (atomic replace)
      results.jsonl    # one record per finished line (append + fsync)

* **Atomic writes** — ``input.jsonl`` and ``meta.json`` are written
  via temp file + ``os.replace``; ``results.jsonl`` is append-only
  with an ``fsync`` per record, so a crash can at worst truncate the
  final line — which the reader detects and discards, making that
  line's work repeatable.

Line numbers are 1-based (like an editor looking at the uploaded
file); whitespace-only lines are ignored entirely — they are neither
counted nor executed.

Job lifecycle: ``queued`` → ``running`` → ``completed`` /
``completed_with_errors``.  A job found ``queued`` or ``running`` at
startup simply resumes: lines already present in ``results.jsonl``
are kept, the remainder re-executed (:meth:`JobStore.completed_lines`
is the resume bookkeeping).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from ..cache import content_key

__all__ = ["JobStore", "JOB_SCHEMA_VERSION", "TERMINAL_STATUSES"]

#: On-disk schema version of the job layout; bump to orphan old jobs.
JOB_SCHEMA_VERSION = 1

#: Statuses of a finished job (nothing left to execute).
TERMINAL_STATUSES = ("completed", "completed_with_errors")


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                               suffix=path.suffix)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class JobStore:
    """Content-addressed batch-job directory under *root*.

    Parameters
    ----------
    root : str or Path
        Store root (created lazily on the first job).

    Notes
    -----
    The store is safe for one writer per job (the
    :class:`~repro.server.jobs.BatchRunner` guarantees that) plus any
    number of concurrent readers — readers only ever see a complete
    ``meta.json`` (atomic replace) and complete ``results.jsonl``
    records (a torn final line is discarded).
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """Directory of one job (which may not exist yet)."""
        return (self.root / f"v{JOB_SCHEMA_VERSION}" / job_id[:2]
                / job_id)

    def results_path(self, job_id: str) -> Path:
        """Path of the job's append-only results file."""
        return self.job_dir(job_id) / "results.jsonl"

    @staticmethod
    def job_id_for(text: str) -> str:
        """The content-hash id a JSONL upload maps to."""
        return content_key({"kind": "batch_input",
                            "schema": JOB_SCHEMA_VERSION,
                            "input": text})

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def create(self, text: str) -> dict:
        """Register a JSONL upload; idempotent on content.

        Parameters
        ----------
        text : str
            The uploaded JSONL payload (one request envelope per
            line).

        Returns
        -------
        dict
            The job's metadata.  If the same content was uploaded
            before, the *existing* metadata is returned unchanged —
            including terminal statuses, so finished work is never
            redone.

        Raises
        ------
        ValueError
            If the upload contains no non-blank lines.
        """
        job_id = self.job_id_for(text)
        existing = self.meta(job_id)
        if existing is not None:
            return existing
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("batch upload has no request lines")
        _atomic_write(self.job_dir(job_id) / "input.jsonl",
                      text.encode("utf-8"))
        now = time.time()
        meta = {"id": job_id, "status": "queued", "total": len(lines),
                "done": 0, "ok": 0, "errors": 0,
                "created": now, "updated": now}
        self.write_meta(meta)
        return meta

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------

    def meta(self, job_id: str) -> "dict | None":
        """The job's metadata, or ``None`` for an unknown/broken id."""
        path = self.job_dir(job_id) / "meta.json"
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def write_meta(self, meta: dict) -> None:
        """Atomically persist a metadata dict (stamps ``updated``)."""
        meta = dict(meta)
        meta["updated"] = time.time()
        data = json.dumps(meta, sort_keys=True).encode("utf-8")
        _atomic_write(self.job_dir(meta["id"]) / "meta.json", data)

    def jobs(self) -> "list[dict]":
        """Metadata of every job in the store, oldest first."""
        schema_dir = self.root / f"v{JOB_SCHEMA_VERSION}"
        if not schema_dir.is_dir():
            return []
        metas = [self.meta(path.parent.name)
                 for path in sorted(schema_dir.glob("*/*/meta.json"))]
        return sorted((m for m in metas if m is not None),
                      key=lambda m: m["created"])

    def incomplete(self) -> "list[dict]":
        """Jobs that still have lines to execute (resume set)."""
        return [meta for meta in self.jobs()
                if meta["status"] not in TERMINAL_STATUSES]

    # ------------------------------------------------------------------
    # inputs and results
    # ------------------------------------------------------------------

    def input_lines(self, job_id: str) -> "list[tuple[int, str]]":
        """The job's request lines as ``(line_number, text)`` pairs.

        Line numbers are 1-based positions in the uploaded file;
        whitespace-only lines are skipped.
        """
        path = self.job_dir(job_id) / "input.jsonl"
        with open(path, "r", encoding="utf-8") as handle:
            return [(number, line.strip())
                    for number, line in enumerate(handle, start=1)
                    if line.strip()]

    def append_result(self, job_id: str, record: dict) -> None:
        """Append one per-line outcome record, durably.

        Parameters
        ----------
        job_id : str
            The job being executed.
        record : dict
            ``{"line": int, "status": "ok"|"error", "envelope":
            <result/error envelope dict>}``.

        Notes
        -----
        The record is flushed and ``fsync``-ed before returning, so a
        crash immediately after costs nothing, and a crash *during*
        the write at worst leaves a torn final line that
        :meth:`completed_lines` discards.  A torn line also lacks its
        trailing newline, so the append starts with a newline repair
        — otherwise the new record would fuse onto the torn fragment
        and both would be lost.
        """
        data = (json.dumps(record, sort_keys=True) + "\n") \
            .encode("utf-8")
        with open(self.results_path(job_id), "a+b") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def completed_lines(self, job_id: str) -> "dict[int, dict]":
        """Per-line outcomes already on disk: line number -> record.

        A torn (crash-truncated) final line fails to parse and is
        simply excluded — its line re-executes on resume.  Should a
        crash between the result append and the metadata update ever
        produce a duplicate record, the first occurrence wins.
        """
        path = self.results_path(job_id)
        records: dict[int, dict] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for raw in handle:
                    try:
                        record = json.loads(raw)
                    except json.JSONDecodeError:
                        continue
                    number = record.get("line")
                    if isinstance(number, int) and number not in records:
                        records[number] = record
        except OSError:
            return {}
        return records

    def result_records(self, job_id: str) -> "list[dict]":
        """All per-line outcomes, ordered by line number."""
        records = self.completed_lines(job_id)
        return [records[number] for number in sorted(records)]

    def __repr__(self) -> str:
        return f"JobStore({str(self.root)!r})"
