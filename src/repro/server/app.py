"""The threaded HTTP service: routes, timeouts, lifecycle.

:class:`ReproServer` glues one shared :class:`repro.api.Session`, the
crash-safe :class:`~repro.server.store.JobStore` and the
:class:`~repro.server.jobs.BatchRunner` behind a stdlib
:class:`http.server.ThreadingHTTPServer`:

========================  ============================================
``POST /v1/run``          one ``repro.api/1`` request envelope in, one
                          result envelope out (bounded worker pool +
                          per-request timeout)
``POST /v1/batches``      JSONL upload of envelopes -> job id
                          (idempotent on content)
``GET /v1/batches/<id>``  job status + progress counters
``GET /v1/batches/<id>/results``  JSONL download of per-line outcome
                          records, streamed in chunks
``GET /v1/stats``         request/latency/cache/job counters
``GET /v1/metrics``       the same counters as named instruments, in
                          Prometheus text exposition format (the
                          process-global registry merged with this
                          server's)
``GET /v1/health``        liveness + version
========================  ============================================

Error contract: every failure is a JSON body — an
:class:`repro.api.ErrorResult` envelope carrying the mapped HTTP
status — never an HTML error page and never a handler-thread
traceback.  Bad request payloads are 400, unknown resources 404,
oversized bodies 413, timeouts 504; unexpected handler failures are
500 and the server keeps serving.  A client that disconnects
mid-stream is logged (status 499) and the connection thread exits
cleanly.
"""

from __future__ import annotations

import concurrent.futures
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .._version import __version__
from ..api import ErrorResult, Session
from ..errors import ReproError
from ..obs import metrics as _obs_metrics
from ..obs.trace import span as _span
from .jobs import BatchRunner
from .stats import RequestLog, ServerStats
from .store import TERMINAL_STATUSES, JobStore

__all__ = ["ReproServer", "DEFAULT_MAX_BODY", "DEFAULT_TIMEOUT"]

#: Default per-request service timeout for ``POST /v1/run``, seconds.
DEFAULT_TIMEOUT = 30.0

#: Default largest accepted request body, bytes (8 MiB — a ~40k-line
#: batch upload; raise via ``ReproServer(max_body=...)``).
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Chunk size for streaming results downloads.
_STREAM_CHUNK = 64 * 1024

#: Sentinel for "caller did not pre-parse the request kind".
_UNSET = object()


def _request_kind(text: str) -> "str | None":
    """The ``kind`` field of a request envelope, if it decodes."""
    try:
        decoded = json.loads(text)
    except json.JSONDecodeError:
        return None
    if isinstance(decoded, dict):
        kind = decoded.get("kind")
        if isinstance(kind, str):
            return kind
    return None


class _Disconnect(Exception):
    """The client went away mid-response (normalized marker)."""


class _Handler(BaseHTTPRequestHandler):
    """Per-connection request handler; all state lives on the app."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"
    # One response = one packet: buffer the out stream (flushed per
    # request by handle_one_request) and disable Nagle, so header and
    # body writes never straddle a delayed-ACK round trip (a ~40 ms
    # stall per request otherwise).
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    @property
    def app(self) -> "ReproServer":
        """The owning :class:`ReproServer` (set on the HTTP server)."""
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Silence the default stderr access log (structured log
        instead)."""

    def do_GET(self) -> None:
        """Dispatch GET routes."""
        self._dispatch("GET")

    def do_POST(self) -> None:
        """Dispatch POST routes."""
        self._dispatch("POST")

    # ------------------------------------------------------------------
    # dispatch plumbing
    # ------------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        route, status, timed_out = self.path, 500, False
        self.log_fields = {}
        with _span("server.request", method=method) as live:
            try:
                route, status, timed_out = self._route(method)
            except _Disconnect:
                status = 499  # client closed connection mid-response
                self.close_connection = True
            except Exception as exc:
                # A bug in a route must not kill the connection thread
                # silently nor leak a traceback to the client.
                status = 500
                try:
                    self._send_error(500, exc)
                except Exception:  # headers sent / client gone
                    self.close_connection = True
            live.set(route=route, status=status)
        elapsed = time.perf_counter() - start
        self.app.stats.record(route, status, elapsed,
                              timed_out=timed_out)
        self.app.log.write(method=method, path=self.path, route=route,
                           status=status, ms=elapsed * 1e3,
                           timed_out=timed_out, **self.log_fields)

    def _route(self, method: str) -> "tuple[str, int, bool]":
        """Serve one request; returns (route pattern, status,
        timed_out)."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "POST" and path == "/v1/run":
            status, timed_out = self._post_run()
            return "/v1/run", status, timed_out
        if method == "POST" and path == "/v1/batches":
            return "/v1/batches", self._post_batch(), False
        if method == "GET" and path.startswith("/v1/batches/"):
            tail = path[len("/v1/batches/"):]
            if tail.endswith("/results"):
                return ("/v1/batches/<id>/results",
                        self._get_results(tail[:-len("/results")]),
                        False)
            if "/" not in tail and tail:
                return ("/v1/batches/<id>", self._get_batch(tail),
                        False)
        if method == "GET" and path == "/v1/stats":
            return "/v1/stats", self._get_stats(), False
        if method == "GET" and path == "/v1/metrics":
            return "/v1/metrics", self._get_metrics(), False
        if method == "GET" and path == "/v1/health":
            return "/v1/health", self._get_health(), False
        self._send_error(
            404, LookupError(f"no such endpoint: {method} {path}"))
        return path, 404, False

    def _read_body(self) -> "tuple[bytes | None, int]":
        """Read the request body.

        Returns
        -------
        tuple
            ``(body, 0)`` on success; ``(None, status)`` after an
            error response (411 missing length, 400 bad length, 413
            oversized) has already been sent.
        """
        header = self.headers.get("Content-Length")
        if header is None:
            self._send_error(
                411, ValueError("Content-Length header required"))
            return None, 411
        try:
            length = int(header)
            if length < 0:
                raise ValueError
        except ValueError:
            self._send_error(
                400, ValueError(f"bad Content-Length: {header!r}"))
            return None, 400
        if length > self.app.max_body:
            self._send_error(413, ValueError(
                f"request body of {length} bytes exceeds the "
                f"{self.app.max_body}-byte limit"))
            return None, 413
        return self.rfile.read(length), 0

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------

    def _write(self, data: bytes) -> None:
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError, socket.timeout,
                OSError) as exc:
            raise _Disconnect() from exc

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self._write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send_bytes(status,
                         (json.dumps(payload, sort_keys=True) + "\n")
                         .encode("utf-8"))

    def _send_error(self, status: int, exc: BaseException,
                    request_kind: "str | None" = None) -> None:
        # Error paths may leave unread body bytes on the socket (404
        # on a POST, oversized upload); close the connection so the
        # keep-alive stream can never desynchronize.
        self.close_connection = True
        envelope = ErrorResult.from_exception(
            exc, request_kind=request_kind, status=status)
        self._send_bytes(status,
                         (envelope.to_json() + "\n").encode("utf-8"))

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def _post_run(self) -> "tuple[int, bool]":
        body, error_status = self._read_body()
        if body is None:
            return error_status, False
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            self._send_error(400, exc)
            return 400, False
        kind = _request_kind(text)
        if kind is not None:
            self.log_fields["kind"] = kind
        result, status, timed_out = self.app.run_envelope(
            text, request_kind=kind)
        if isinstance(result, ErrorResult):
            self._send_bytes(status,
                             (result.to_json() + "\n").encode("utf-8"))
        else:
            self._send_bytes(status, result.to_json().encode("utf-8"))
        return status, timed_out

    def _post_batch(self) -> int:
        body, error_status = self._read_body()
        if body is None:
            return error_status
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            self._send_error(400, exc)
            return 400
        try:
            meta = self.app.submit_batch(text)
        except ValueError as exc:
            self._send_error(400, exc)
            return 400
        self.log_fields["job"] = meta["id"]
        self._send_json(202, meta)
        return 202

    def _get_batch(self, job_id: str) -> int:
        self.log_fields["job"] = job_id
        meta = self.app.store.meta(job_id)
        if meta is None:
            self._send_error(
                404, LookupError(f"no such job: {job_id}"))
            return 404
        self._send_json(200, meta)
        return 200

    def _get_results(self, job_id: str) -> int:
        self.log_fields["job"] = job_id
        meta = self.app.store.meta(job_id)
        if meta is None:
            self._send_error(
                404, LookupError(f"no such job: {job_id}"))
            return 404
        if meta["status"] not in TERMINAL_STATUSES:
            self._send_error(409, RuntimeError(
                f"job {job_id} is {meta['status']} "
                f"({meta['done']}/{meta['total']} lines done); "
                "poll GET /v1/batches/<id> until it completes"))
            return 409
        records = self.app.store.result_records(job_id)
        body = "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in records).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Job-Status", meta["status"])
        self.end_headers()
        for offset in range(0, len(body), _STREAM_CHUNK):
            self._write(body[offset:offset + _STREAM_CHUNK])
        return 200

    def _get_stats(self) -> int:
        self._send_json(200, self.app.stats_payload())
        return 200

    def _get_metrics(self) -> int:
        body = _obs_metrics.render_prometheus(
            _obs_metrics.registry(),
            self.app.stats.registry).encode("utf-8")
        self._send_bytes(
            200, body,
            content_type="text/plain; version=0.0.4; charset=utf-8")
        return 200

    def _get_health(self) -> int:
        self._send_json(200, {"status": "ok",
                              "version": __version__})
        return 200


class ReproServer:
    """A long-running delay-model service over one shared session.

    Parameters
    ----------
    host : str, optional
        Bind address (default ``"127.0.0.1"``).
    port : int, optional
        Bind port; ``0`` (the default) picks a random free port —
        read it back from :attr:`port`.
    session : Session, optional
        The session serving every request; built from *tech* /
        *engine* when omitted.
    tech : str, optional
        Technology card name for the implicit session.
    engine : str, optional
        Delay-engine backend name for the implicit session (``None``
        picks the package default; ``"parallel"`` shards heavy
        requests across the shared-memory process pool).
    job_dir : str or Path, optional
        Root of the on-disk batch-job store (default:
        ``repro_jobs`` under the working directory).
    run_workers : int, optional
        Bound on concurrently *executing* ``/v1/run`` requests
        (excess requests queue; default 8).
    batch_workers : int, optional
        Bound on concurrently executing batch jobs (default 2).
    request_timeout : float, optional
        Per-request service timeout of ``/v1/run`` in seconds
        (default 30).
    max_body : int, optional
        Largest accepted request body in bytes (default 8 MiB).
    log_stream : file-like, optional
        Destination for structured per-request JSON logs (``None``
        disables them).

    Examples
    --------
    >>> from repro.server import ReproServer
    >>> with ReproServer(port=0) as server:       # doctest: +SKIP
    ...     print(server.url)                     # doctest: +SKIP
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 session: "Session | None" = None,
                 tech: str = "finfet15",
                 engine: "str | None" = None,
                 job_dir: "str | None" = None,
                 run_workers: int = 8,
                 batch_workers: int = 2,
                 request_timeout: float = DEFAULT_TIMEOUT,
                 max_body: int = DEFAULT_MAX_BODY,
                 log_stream=None):
        if run_workers < 1:
            raise ValueError("run_workers must be >= 1")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be > 0")
        if max_body < 1:
            raise ValueError("max_body must be >= 1")
        self.session = session if session is not None else Session(
            tech=tech, engine=engine)
        self.store = JobStore(job_dir if job_dir is not None
                              else "repro_jobs")
        self.runner = BatchRunner(self.store, self.session,
                                  workers=batch_workers)
        self.stats = ServerStats()
        self.log = RequestLog(log_stream)
        self.request_timeout = float(request_timeout)
        self.max_body = int(max_body)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=run_workers,
            thread_name_prefix="repro-run")
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        """The bound address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved, even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the service."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, resume: bool = True) -> "ReproServer":
        """Start serving in a background thread (idempotent).

        Parameters
        ----------
        resume : bool, optional
            Re-enqueue incomplete batch jobs found in the job store
            (default ``True`` — the crash/restart recovery path).
        """
        if self._thread is None:
            self.runner.start(resume=resume)
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-serve", daemon=True)
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting requests and shut the workers down.

        Parameters
        ----------
        drain : bool, optional
            Let queued/in-flight batch jobs finish (bounded by
            *timeout*) before stopping; an interrupted job is
            persisted back to ``queued`` either way, so nothing is
            lost — drain just finishes it *now* instead of on the
            next start (default ``True``).
        timeout : float, optional
            Upper bound in seconds on the batch drain.
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        # Abandon (do not wait for) /v1/run work past its timeout.
        self._pool.shutdown(wait=False, cancel_futures=True)
        self.runner.stop(drain=drain, timeout=timeout)

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------

    def run_envelope(self, text: str, request_kind=_UNSET):
        """Execute one ``/v1/run`` envelope on the bounded pool.

        Parameters
        ----------
        text : str
            The request envelope JSON.
        request_kind : str or None, optional
            The envelope's already-parsed ``kind`` (the HTTP layer
            passes it so the body is only decoded once); omitted,
            it is parsed here.  Used to label error envelopes.

        Returns
        -------
        tuple
            ``(result, http_status, timed_out)`` where *result* is
            the typed result on success or an :class:`ErrorResult`
            on failure.
        """
        if request_kind is _UNSET:
            request_kind = _request_kind(text)
        future = self._pool.submit(self.session.run_json, text)
        try:
            return future.result(self.request_timeout), 200, False
        except concurrent.futures.TimeoutError:
            error = ErrorResult.from_exception(
                TimeoutError(f"request exceeded the "
                             f"{self.request_timeout:g} s service "
                             "timeout"),
                request_kind=request_kind, status=504)
            return error, 504, True
        except (ReproError, ValueError) as exc:
            return (ErrorResult.from_exception(
                exc, request_kind=request_kind, status=400), 400,
                False)
        except Exception as exc:  # handler bug: report, keep serving
            return (ErrorResult.from_exception(
                exc, request_kind=request_kind, status=500), 500,
                False)

    def submit_batch(self, text: str) -> dict:
        """Create (or re-find) a batch job and enqueue it.

        Parameters
        ----------
        text : str
            JSONL upload, one request envelope per line.

        Returns
        -------
        dict
            The job's metadata (terminal jobs are returned as-is,
            not re-run — submission is idempotent on content).

        Raises
        ------
        ValueError
            If the upload has no request lines.
        """
        meta = self.store.create(text)
        if meta["status"] not in TERMINAL_STATUSES:
            self.runner.submit(meta["id"])
        return meta

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats_payload(self) -> dict:
        """The ``GET /v1/stats`` body: requests, latency, cache,
        jobs."""
        jobs = self.store.jobs()
        by_status: dict[str, int] = {}
        for meta in jobs:
            by_status[meta["status"]] = (
                by_status.get(meta["status"], 0) + 1)
        payload = self.stats.snapshot()
        payload["session_cache"] = self.session.cache_info()
        payload["jobs"] = {"total": len(jobs),
                           "by_status": by_status,
                           "pending": self.runner.pending()}
        payload["version"] = __version__
        return payload

    def __repr__(self) -> str:
        state = "serving" if self._thread is not None else "stopped"
        return f"ReproServer({self.url!r}, {state})"
