"""Delay-as-a-service: a stdlib-only HTTP front end for the session
API.

The process that stays up.  Everything the package serves through
:meth:`repro.api.Session.run` becomes reachable over HTTP — one
schema-versioned ``repro.api/1`` envelope per request — plus an
asynchronous batch lifecycle for bulk workloads::

    repro serve --port 8080 --jobs-dir ./repro_jobs

    # one synchronous request
    curl -d @request.json http://127.0.0.1:8080/v1/run

    # upload -> poll -> download a batch of requests
    curl -d @requests.jsonl http://127.0.0.1:8080/v1/batches
    curl http://127.0.0.1:8080/v1/batches/<id>
    curl http://127.0.0.1:8080/v1/batches/<id>/results

Layering (no dependencies beyond the standard library):

* :mod:`repro.server.app` — :class:`ReproServer`: the threaded HTTP
  server, routing, per-request timeouts, graceful shutdown.
* :mod:`repro.server.jobs` — :class:`BatchRunner`: a bounded worker
  pool executing batch jobs line by line with per-line error
  isolation.
* :mod:`repro.server.store` — :class:`JobStore`: the crash-safe
  on-disk job store (content-hash job ids, atomic metadata, fsync'd
  append-only results) that lets jobs survive restarts and resume.
* :mod:`repro.server.stats` — request counters, latency percentiles
  and structured JSON request logging behind ``GET /v1/stats``.

See ``docs/server.md`` for the endpoint and operations guide, and
``benchmarks/bench_server.py`` for the sustained-throughput numbers
(``BENCH_server.json``).
"""

from __future__ import annotations

from .app import DEFAULT_MAX_BODY, DEFAULT_TIMEOUT, ReproServer
from .jobs import BatchRunner
from .stats import RequestLog, ServerStats, percentile
from .store import JOB_SCHEMA_VERSION, TERMINAL_STATUSES, JobStore

__all__ = [
    "BatchRunner",
    "DEFAULT_MAX_BODY",
    "DEFAULT_TIMEOUT",
    "JOB_SCHEMA_VERSION",
    "JobStore",
    "ReproServer",
    "RequestLog",
    "ServerStats",
    "TERMINAL_STATUSES",
    "percentile",
    "serve",
]


def serve(host: str = "127.0.0.1", port: int = 8080, *,
          tech: str = "finfet15", engine: "str | None" = None,
          job_dir: "str | None" = None, run_workers: int = 8,
          batch_workers: int = 2,
          request_timeout: float = DEFAULT_TIMEOUT,
          max_body: int = DEFAULT_MAX_BODY, log_stream=None,
          quiet: bool = False) -> int:
    """Run the service in the foreground until SIGINT/SIGTERM.

    This is what ``repro serve`` calls: build a :class:`ReproServer`,
    start it (resuming any incomplete batch jobs in *job_dir*), block
    until interrupted, then shut down gracefully — stop accepting
    connections, drain in-flight batch work, persist job state.

    Parameters
    ----------
    host, port : str, int
        Bind address (``port=0`` picks a free port, printed on
        startup).
    tech, engine : str
        Session bindings (see :class:`repro.api.Session`).
    job_dir : str, optional
        Batch-job store root (default ``repro_jobs``).
    run_workers, batch_workers : int
        Worker-pool bounds for ``/v1/run`` and batch jobs.
    request_timeout : float
        Per-request service timeout of ``/v1/run``, seconds.
    max_body : int
        Largest accepted request body, bytes.
    log_stream : file-like, optional
        Structured per-request JSON log destination.
    quiet : bool, optional
        Suppress the human startup/shutdown lines (default False).

    Returns
    -------
    int
        Process exit code (0 on a clean shutdown).
    """
    import signal
    import sys
    import threading

    server = ReproServer(host=host, port=port, tech=tech,
                         engine=engine, job_dir=job_dir,
                         run_workers=run_workers,
                         batch_workers=batch_workers,
                         request_timeout=request_timeout,
                         max_body=max_body, log_stream=log_stream)
    server.session.engine  # fail fast on an unknown engine name
    stop = threading.Event()

    def _signalled(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _signalled)
        except (ValueError, OSError):  # non-main thread / platform
            pass
    server.start()
    if not quiet:
        print(f"repro serve: listening on {server.url} "
              f"(engine={server.session.engine_name}, "
              f"jobs={server.store.root})", file=sys.stderr)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        if not quiet:
            print("repro serve: shutting down (draining batch jobs)",
                  file=sys.stderr)
        server.stop(drain=True)
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0
