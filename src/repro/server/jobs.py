"""Bounded worker pool executing batch jobs line by line.

The :class:`BatchRunner` owns a small pool of daemon threads pulling
job ids off a queue.  Each job executes one JSONL line at a time
through the shared :class:`repro.api.Session` — so a session bound to
the ``parallel`` backend shards each heavy line across the
shared-memory process pool of :mod:`repro.engine.parallel`, while the
thread pool here only bounds how many *jobs* run concurrently.

Failure isolation is per line: a line that fails to parse, decode, or
execute yields an :class:`repro.api.ErrorResult` envelope in the
results file and the job carries on; the job finishes as
``completed_with_errors`` instead of aborting.  Every finished line is
durably appended to the store before the progress counters advance,
so a crash (or a graceful stop) between lines loses nothing: on the
next :meth:`BatchRunner.start` the store's incomplete jobs are
re-enqueued and resume exactly at the first line without a result.
"""

from __future__ import annotations

import json
import queue
import threading
import time

from ..api import ErrorResult, Session
from ..obs import metrics as _metrics
from ..obs.trace import span as _span
from .store import TERMINAL_STATUSES, JobStore

__all__ = ["BatchRunner"]

#: Memoized outcome -> batch-line counter (module-level so every
#: runner in the process shares the global-registry instruments).
_LINE_COUNTERS: dict = {}


def _line_counter(outcome: str):
    counter = _LINE_COUNTERS.get(outcome)
    if counter is None:
        counter = _metrics.registry().counter(
            "repro_batch_lines_total",
            "batch-job request lines by outcome",
            labels={"outcome": outcome})
        _LINE_COUNTERS[outcome] = counter
    return counter


class BatchRunner:
    """Executes store jobs on a bounded pool of worker threads.

    Parameters
    ----------
    store : JobStore
        The on-disk job store (shared with the HTTP layer).
    session : Session
        The session every request line runs through (shared with the
        synchronous ``/v1/run`` endpoint, so both paths hit the same
        memo and disk caches).
    workers : int, optional
        Number of jobs executed concurrently (default 2).

    Notes
    -----
    One job is only ever executed by one worker at a time: ids are
    deduplicated while queued or running, so resubmitting an active
    job is a no-op.
    """

    def __init__(self, store: JobStore, session: Session,
                 workers: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.session = session
        self.workers = int(workers)
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._active: set[str] = set()
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, resume: bool = True) -> None:
        """Start the worker threads (idempotent).

        Parameters
        ----------
        resume : bool, optional
            Also enqueue every incomplete job found in the store —
            the restart-recovery path (default ``True``).
        """
        if not self._threads:
            self._stop.clear()
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker, daemon=True,
                    name=f"repro-batch-{index}")
                thread.start()
                self._threads.append(thread)
        if resume:
            for meta in self.store.incomplete():
                self.submit(meta["id"])

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the workers, optionally draining queued work first.

        Parameters
        ----------
        drain : bool, optional
            Wait (up to *timeout*) for queued and in-flight jobs to
            finish before stopping (default ``True``).  With
            ``False``, workers stop at the next line boundary and the
            interrupted job is persisted back to ``queued`` so a
            restart resumes it.
        timeout : float, optional
            Upper bound in seconds on the drain wait and on joining
            each worker thread.
        """
        if drain:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    idle = not self._active
                if idle and self._queue.empty():
                    break
                time.sleep(0.05)
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, job_id: str) -> bool:
        """Enqueue a job for execution.

        Returns
        -------
        bool
            ``True`` if the job was enqueued, ``False`` if it is
            already queued or running (resubmission is a no-op).
        """
        with self._lock:
            if job_id in self._active:
                return False
            self._active.add(job_id)
        self._queue.put(job_id)
        return True

    def pending(self) -> int:
        """Number of jobs currently queued or running."""
        with self._lock:
            return len(self._active)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            try:
                self.execute(job_id)
            finally:
                with self._lock:
                    self._active.discard(job_id)
                self._queue.task_done()

    def run_line(self, number: int, text: str) -> dict:
        """Execute one JSONL line; never raises.

        Parameters
        ----------
        number : int
            1-based line number in the uploaded file.
        text : str
            The line's request envelope JSON.

        Returns
        -------
        dict
            A per-line outcome record: ``{"line", "status",
            "envelope"}`` where the envelope is the typed result on
            success or an :class:`~repro.api.ErrorResult` on failure.
        """
        request_kind = None
        with _span("server.batch.line", line=number) as live:
            try:
                try:
                    decoded = json.loads(text)
                except json.JSONDecodeError:
                    decoded = None
                if isinstance(decoded, dict):
                    kind = decoded.get("kind")
                    request_kind = (kind if isinstance(kind, str)
                                    else None)
                result = self.session.run_json(text)
                _line_counter("ok").inc()
                live.set(kind=request_kind, status="ok")
                return {"line": number, "status": "ok",
                        "envelope": result.to_dict()}
            except Exception as exc:
                # Deliberately broad: one bad line (malformed JSON,
                # bad parameters, a handler bug) must never abort the
                # job.
                _line_counter("error").inc()
                live.set(kind=request_kind, status="error")
                error = ErrorResult.from_exception(
                    exc, request_kind=request_kind)
                return {"line": number, "status": "error",
                        "envelope": error.to_dict()}

    def execute(self, job_id: str) -> "dict | None":
        """Run one job to completion (or to the stop signal).

        Lines that already have a result on disk are skipped — this
        is both the restart-resume path and the idempotent-resubmit
        path.  If the runner is stopped mid-job, progress so far is
        persisted and the job's status set back to ``queued``.

        Returns
        -------
        dict or None
            The job's final metadata, or ``None`` for an unknown id.
        """
        meta = self.store.meta(job_id)
        if meta is None or meta["status"] in TERMINAL_STATUSES:
            return meta
        with _span("server.batch.job", job=job_id,
                   total=meta.get("total")) as live:
            meta = self._execute_lines(job_id, meta)
            live.set(status=meta["status"], done=meta["done"],
                     errors=meta["errors"])
        return meta

    def _execute_lines(self, job_id: str, meta: dict) -> dict:
        """Line-by-line body of :meth:`execute` (span-wrapped
        there)."""
        done = self.store.completed_lines(job_id)
        meta["done"] = len(done)
        meta["ok"] = sum(1 for record in done.values()
                         if record.get("status") == "ok")
        meta["errors"] = meta["done"] - meta["ok"]
        meta["status"] = "running"
        self.store.write_meta(meta)
        for number, text in self.store.input_lines(job_id):
            if number in done:
                continue
            if self._stop.is_set():
                meta["status"] = "queued"
                self.store.write_meta(meta)
                return meta
            record = self.run_line(number, text)
            self.store.append_result(job_id, record)
            meta["done"] += 1
            if record["status"] == "ok":
                meta["ok"] += 1
            else:
                meta["errors"] += 1
            self.store.write_meta(meta)
        meta["status"] = ("completed_with_errors" if meta["errors"]
                          else "completed")
        self.store.write_meta(meta)
        return meta
