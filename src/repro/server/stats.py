"""Request counters, latency percentiles and structured logging.

Every request the HTTP layer serves is recorded twice:

* **Aggregated** in :class:`ServerStats` — whose instruments are
  named metrics in a per-server :class:`repro.obs.MetricsRegistry`
  (``repro_server_requests_total{route=...}``,
  ``repro_server_responses_total{class=...}``,
  ``repro_server_timeouts_total``, and the
  ``repro_server_request_seconds`` histogram).  ``GET /v1/stats``
  reports the familiar JSON snapshot from them, and ``GET
  /v1/metrics`` scrapes the same registry in Prometheus text format.
* **Individually** as one JSON object per line on the configured log
  stream (:class:`RequestLog`) — machine-parseable structured logs
  with method, route, request ``kind``, status, latency and a
  monotonically increasing sequence number, joinable against traces.

Both are thread-safe; the HTTP layer calls them from its per-
connection handler threads.  The latency percentiles are exact: the
histogram keeps a bounded window of recent raw samples
(:data:`_LATENCY_WINDOW`), so p50/p99 come from
:func:`repro.obs.metrics.percentile` over real observations, not
bucket boundaries.
"""

from __future__ import annotations

import json
import threading
import time

from ..obs.metrics import MetricsRegistry, percentile

__all__ = ["RequestLog", "ServerStats", "percentile"]

#: Number of most-recent request latencies kept for the percentile
#: report; old samples fall off so /v1/stats reflects current load.
_LATENCY_WINDOW = 4096


class ServerStats:
    """Thread-safe request counters for one server instance.

    Parameters
    ----------
    registry : MetricsRegistry, optional
        The registry the instruments live in.  Defaults to a fresh
        private registry (one per server instance, so several servers
        in one process — common in tests — never cross-count);
        :attr:`registry` is what ``GET /v1/metrics`` merges into the
        scrape.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None
                 ) -> None:
        self.started = time.time()
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        self._lock = threading.Lock()
        self._by_route: dict = {}
        self._by_class: dict = {}
        self._timeouts = self.registry.counter(
            "repro_server_timeouts_total",
            "requests that hit the service timeout")
        self._latency = self.registry.histogram(
            "repro_server_request_seconds",
            "request service latency",
            window=_LATENCY_WINDOW)

    def _route_counter(self, route: str):
        counter = self._by_route.get(route)
        if counter is None:
            counter = self.registry.counter(
                "repro_server_requests_total",
                "served requests by route pattern",
                labels={"route": route})
            self._by_route[route] = counter
        return counter

    def _class_counter(self, status_class: str):
        counter = self._by_class.get(status_class)
        if counter is None:
            counter = self.registry.counter(
                "repro_server_responses_total",
                "responses by status class",
                labels={"class": status_class})
            self._by_class[status_class] = counter
        return counter

    def record(self, route: str, status: int, seconds: float,
               timed_out: bool = False) -> None:
        """Account one served request.

        Parameters
        ----------
        route : str
            The route pattern (e.g. ``"/v1/batches/<id>"``), so
            counters aggregate per endpoint, not per job id.
        status : int
            HTTP status sent.
        seconds : float
            Wall-clock service latency.
        timed_out : bool, optional
            Whether the request hit the service timeout.
        """
        with self._lock:
            self._route_counter(route).inc()
            self._class_counter(f"{status // 100}xx").inc()
            if timed_out:
                self._timeouts.inc()
            self._latency.observe(seconds)

    def snapshot(self) -> dict:
        """A JSON-shaped report of everything recorded so far.

        Returns
        -------
        dict
            ``{"uptime_s", "requests": {"total", "by_route",
            "by_status_class", "timeouts"}, "latency_ms": {"count",
            "mean", "p50", "p99", "max"}}`` — the latency block is
            ``None`` before the first request.  Percentiles are
            exact over the bounded recent-sample window of the
            latency histogram.
        """
        with self._lock:
            by_route = {route: int(counter.value)
                        for route, counter in self._by_route.items()}
            by_class = {cls: int(counter.value)
                        for cls, counter in self._by_class.items()}
            timeouts = int(self._timeouts.value)
            samples = self._latency.samples()
        latency = None
        if samples:
            ms = [value * 1e3 for value in samples]
            latency = {"count": len(ms),
                       "mean": sum(ms) / len(ms),
                       "p50": percentile(ms, 50.0),
                       "p99": percentile(ms, 99.0),
                       "max": max(ms)}
        return {"uptime_s": time.time() - self.started,
                "requests": {"total": sum(by_route.values()),
                             "by_route": by_route,
                             "by_status_class": by_class,
                             "timeouts": timeouts},
                "latency_ms": latency}


class RequestLog:
    """One JSON object per served request, written to a stream.

    Parameters
    ----------
    stream : file-like or None
        Destination with ``write``/``flush``; ``None`` disables
        logging (every call becomes a no-op).
    """

    def __init__(self, stream=None):
        self._stream = stream
        self._lock = threading.Lock()
        self._sequence = 0

    def write(self, **fields) -> None:
        """Emit one structured log record (adds ``ts`` and ``seq``).

        The HTTP layer passes method/path/route/status/latency plus —
        when the body decoded far enough to tell — the request
        ``kind`` and, on batch routes, the ``job`` id, so log lines
        can be joined against traces and job records.
        """
        if self._stream is None:
            return
        with self._lock:
            self._sequence += 1
            record = {"ts": time.time(), "seq": self._sequence,
                      **fields}
            self._stream.write(json.dumps(record, sort_keys=True)
                               + "\n")
            try:
                self._stream.flush()
            except (OSError, ValueError):  # closed/broken stream
                pass
