"""Request counters, latency percentiles and structured logging.

Every request the HTTP layer serves is recorded twice:

* **Aggregated** in :class:`ServerStats` — per-endpoint counts,
  status-class counts, timeout count, and a bounded ring of recent
  latencies from which ``GET /v1/stats`` reports p50/p99/mean/max.
* **Individually** as one JSON object per line on the configured log
  stream (:class:`RequestLog`) — machine-parseable structured logs
  with method, route, status, latency and a monotonically increasing
  sequence number.

Both are thread-safe; the HTTP layer calls them from its per-
connection handler threads.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter, deque

__all__ = ["RequestLog", "ServerStats", "percentile"]

#: Number of most-recent request latencies kept for the percentile
#: report; old samples fall off so /v1/stats reflects current load.
_LATENCY_WINDOW = 4096


def percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list.

    Parameters
    ----------
    samples : list of float
        Observations (not necessarily sorted).
    q : float
        Percentile in ``[0, 100]``.

    Returns
    -------
    float
        The nearest-rank percentile value.

    Raises
    ------
    ValueError
        On an empty sample list or a percentile outside ``[0, 100]``.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
    return ordered[int(rank) - 1]


class ServerStats:
    """Thread-safe request counters for one server instance."""

    def __init__(self) -> None:
        self.started = time.time()
        self._lock = threading.Lock()
        self._by_route: Counter = Counter()
        self._by_class: Counter = Counter()
        self._timeouts = 0
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)

    def record(self, route: str, status: int, seconds: float,
               timed_out: bool = False) -> None:
        """Account one served request.

        Parameters
        ----------
        route : str
            The route pattern (e.g. ``"/v1/batches/<id>"``), so
            counters aggregate per endpoint, not per job id.
        status : int
            HTTP status sent.
        seconds : float
            Wall-clock service latency.
        timed_out : bool, optional
            Whether the request hit the service timeout.
        """
        with self._lock:
            self._by_route[route] += 1
            self._by_class[f"{status // 100}xx"] += 1
            if timed_out:
                self._timeouts += 1
            self._latencies.append(seconds)

    def snapshot(self) -> dict:
        """A JSON-shaped report of everything recorded so far.

        Returns
        -------
        dict
            ``{"uptime_s", "requests": {"total", "by_route",
            "by_status_class", "timeouts"}, "latency_ms": {"count",
            "mean", "p50", "p99", "max"}}`` — the latency block is
            ``None`` before the first request.
        """
        with self._lock:
            samples = list(self._latencies)
            by_route = dict(self._by_route)
            by_class = dict(self._by_class)
            timeouts = self._timeouts
        latency = None
        if samples:
            ms = [value * 1e3 for value in samples]
            latency = {"count": len(ms),
                       "mean": sum(ms) / len(ms),
                       "p50": percentile(ms, 50.0),
                       "p99": percentile(ms, 99.0),
                       "max": max(ms)}
        return {"uptime_s": time.time() - self.started,
                "requests": {"total": sum(by_route.values()),
                             "by_route": by_route,
                             "by_status_class": by_class,
                             "timeouts": timeouts},
                "latency_ms": latency}


class RequestLog:
    """One JSON object per served request, written to a stream.

    Parameters
    ----------
    stream : file-like or None
        Destination with ``write``/``flush``; ``None`` disables
        logging (every call becomes a no-op).
    """

    def __init__(self, stream=None):
        self._stream = stream
        self._lock = threading.Lock()
        self._sequence = 0

    def write(self, **fields) -> None:
        """Emit one structured log record (adds ``ts`` and ``seq``)."""
        if self._stream is None:
            return
        with self._lock:
            self._sequence += 1
            record = {"ts": time.time(), "seq": self._sequence,
                      **fields}
            self._stream.write(json.dumps(record, sort_keys=True)
                               + "\n")
            try:
                self._stream.flush()
            except (OSError, ValueError):  # closed/broken stream
                pass
