"""MIS-aware static timing analysis over :mod:`repro.timing` netlists.

The consumer the delay models exist for: given a circuit, *what is
the critical path, what is the slack, and how do they move across
parameter corners?*  The subsystem lowers a
:class:`~repro.timing.TimingCircuit` into a pin-to-pin
:class:`TimingGraph`, conditions every multi-input arc on the
sibling-input arrival offset ``Δ`` exactly as the paper's two-input
model prescribes, and answers at three speeds:

* :func:`analyze` — one scalar analysis: forward arrival
  propagation (min/max, rise/fall split), required-time
  back-propagation against endpoint constraints, per-node slack and
  ranked critical paths with a per-arc ``(Δ, δ)`` breakdown;
* :func:`sweep_corners` — the same graph evaluated across whole
  arrays of parameter corners and input-arrival scenarios in one
  batched pass through the :mod:`repro.engine` backends;
* arc models (:mod:`repro.sta.arcs`) — direct hybrid-model
  evaluation, characterized :class:`~repro.library.GateDelayTable`
  lookup, or fixed fallbacks, mixed freely per instance.

Quickstart::

    from repro.sta import build_timing_graph, analyze, sta_circuit
    graph = build_timing_graph(sta_circuit("tree"))
    result = analyze(graph, arrivals={"a": 0.0, "b": 10e-12})
    print(result.critical_path.describe())

The CLI front-end is ``repro sta``; the cross-validation against
full event simulation is ``repro.analysis.experiments.experiment_sta``.
"""

from .analysis import (PathStep, StaResult, TimingPath, analyze,
                       input_arrival_nodes)
from .arcs import (ArcDelayModel, EngineArcModel, FixedArcModel,
                   TableArcModel, WireArcModel)
from .circuits import (STA_CIRCUITS, demo_corners, demo_wire_fanout,
                       demo_wire_line, nor3_mixed, nor_chain,
                       nor_chain_wire, nor_tree, nor_tree_wire,
                       single_nor, single_nor3, sta_circuit)
from .graph import (TimingArc, TimingGraph, TimingNode,
                    build_timing_graph, input_unateness)
from .report import (render_report, render_sweep_summary,
                     result_to_json, sta_payload)
from .sweep import (CornerSweepResult, sweep_corners,
                    sweep_corners_scalar)

__all__ = [
    "ArcDelayModel",
    "CornerSweepResult",
    "EngineArcModel",
    "FixedArcModel",
    "PathStep",
    "STA_CIRCUITS",
    "StaResult",
    "TableArcModel",
    "TimingArc",
    "TimingGraph",
    "TimingNode",
    "TimingPath",
    "WireArcModel",
    "analyze",
    "build_timing_graph",
    "demo_corners",
    "demo_wire_fanout",
    "demo_wire_line",
    "input_arrival_nodes",
    "input_unateness",
    "nor3_mixed",
    "nor_chain",
    "nor_chain_wire",
    "nor_tree",
    "nor_tree_wire",
    "render_report",
    "render_sweep_summary",
    "result_to_json",
    "single_nor",
    "single_nor3",
    "sta_circuit",
    "sta_payload",
    "sweep_corners",
    "sweep_corners_scalar",
]
