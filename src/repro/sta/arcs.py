"""Pin-to-pin arc delay models of the STA subsystem.

A timing arc answers "how long from this input transition to that
output transition, given the sibling-input separation Δ?" — the same
question the paper's two-input delay functions ``δ↓(Δ)`` / ``δ↑(Δ)``
answer, packaged behind one small protocol so that a
:class:`~repro.sta.graph.TimingGraph` can mix

* **direct model evaluation** (:class:`EngineArcModel`) — the hybrid
  NOR/NAND closed forms through the :mod:`repro.engine` seam; the only
  model kind that can be *re-targeted* to other parameter corners,
  which is what the vectorized corner sweeps of :mod:`repro.sta.sweep`
  batch over;
* **characterized-table lookup** (:class:`TableArcModel`) — bilinear
  interpolation on a :class:`~repro.library.GateDelayTable`, exactly
  what an NLDM-style flow would read from a library JSON;
* **fixed delays** (:class:`FixedArcModel`) — the Δ-independent
  fallback for gates driven by single-input channels (pure, inertial,
  involution), read off the channel's stable-history delay.

All models are array-native: ``delays(direction, deltas)`` takes an
array of sibling separations and returns delays of the same shape, so
one arc evaluation can serve a thousand corners in a single call.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.multi_input import (GeneralizedNorParameters,
                                paper_generalized)
from ..core.parameters import NorGateParameters
from ..engine import delays_for_direction, get_engine
from ..errors import ParameterError
from ..library.tables import (GateDelayTable, VectorDelaySurface,
                              mis_gate_inputs)
from ..obs.trace import span

__all__ = [
    "ArcDelayModel",
    "EngineArcModel",
    "FixedArcModel",
    "TableArcModel",
    "WireArcModel",
]

#: Gate types with the paper's two-input MIS characterization.
MIS_GATE_TYPES = ("nor2", "nand2")


@runtime_checkable
class ArcDelayModel(Protocol):
    """Delay model of one timing arc (array-in/array-out).

    Implementations must be pure functions of
    ``(direction, deltas, params)`` so that arc evaluations can be
    batched, cached and re-ordered freely by the analyzer.
    """

    #: Reporting name of the model kind.
    name: str

    #: Whether :meth:`delays` honours a *params* override — the corner
    #: sweep only re-targets retargetable models.
    retargetable: bool

    def delays(self, direction: str, deltas,
               params: NorGateParameters | None = None) -> np.ndarray:
        """MIS delays of the arc's output transition.

        Parameters
        ----------
        direction : str
            ``"falling"`` or ``"rising"`` — the output transition the
            arc drives.
        deltas : array_like of float
            Sibling-input separations ``Δ = t_B − t_A`` in seconds;
            ``±inf`` selects the SIS plateaus.  Ignored by
            Δ-independent models.
        params : NorGateParameters, optional
            Corner override; only honoured when
            :attr:`retargetable` is true.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, same shape as *deltas*.
        """
        ...

    def delays_n(self, direction: str, deltas,
                 params=None) -> np.ndarray:
        """MIS delays of an n-input arc over Δ-vector matrices.

        Parameters
        ----------
        direction : str
            ``"falling"`` or ``"rising"`` — the output transition
            the arc drives.
        deltas : array_like of float
            Sibling offsets relative to pin 0, shape ``(..., n−1)``;
            ``±inf`` selects the SIS plateaus.  Ignored by
            Δ-independent models.
        params : NorGateParameters or GeneralizedNorParameters, optional
            Corner override; only honoured when
            :attr:`retargetable` is true.

        Returns
        -------
        numpy.ndarray
            Delays in seconds, shape ``deltas.shape[:-1]``.
        """
        ...


def _check_mis_gate(gate: str) -> str:
    mis_gate_inputs(gate)  # raises on unknown gate type names
    return gate


class EngineArcModel:
    """Direct hybrid-model arc evaluation through the engine seam.

    The paper's closed-form MIS delay functions, evaluated by a
    :class:`~repro.engine.DelayEngine` backend.  NAND arcs use the
    CMOS mirror duality of :mod:`repro.core.duality`: the NAND falling
    surface is the NOR rising one with the internal-node state
    mirrored, and the NAND rising surface is the NOR falling one.

    Parameters
    ----------
    params : NorGateParameters
        Electrical parameters (mirrored reading for NAND).
    gate : str, optional
        ``"nor2"`` (default) or ``"nand2"``.
    engine : str or DelayEngine, optional
        Evaluation backend (name, instance, or ``None`` for the
        vectorized default).
    state : float, optional
        Initial internal-node voltage in volts for the
        state-dependent direction; ``None`` (default) selects the
        paper's worst case (``V_N = 0`` for NOR, ``V_M = VDD`` for
        NAND).
    """

    name = "engine"
    retargetable = True

    def __init__(self, params, gate: str = "nor2",
                 engine=None, state: float | None = None):
        self.gate = _check_mis_gate(gate)
        self.num_inputs = mis_gate_inputs(gate)
        if self.gate in MIS_GATE_TYPES:
            if not isinstance(params, NorGateParameters):
                raise ParameterError(
                    f"{gate!r} arcs evaluate NorGateParameters")
        else:
            if (not isinstance(params, GeneralizedNorParameters)
                    or params.num_inputs != self.num_inputs):
                raise ParameterError(
                    f"{gate!r} arcs evaluate a {self.num_inputs}-"
                    "input GeneralizedNorParameters set")
        self.params = params
        self.engine = get_engine(engine)
        self.state = None if state is None else float(state)

    def _resolve(self, params):
        """Resolve a corner override onto this arc's gate width.

        2-input corner sets re-target n-input arcs through the
        :func:`~repro.core.multi_input.paper_generalized`
        extrapolation (rail stage keeps ``R1``, further stages repeat
        ``R2``/``R4``/``CN``) — so one process-corner axis drives
        mixed-width circuits.
        """
        if params is None:
            return self.params
        if self.gate in MIS_GATE_TYPES:
            if not isinstance(params, NorGateParameters):
                raise ParameterError(
                    f"{self.gate!r} arcs re-target to "
                    "NorGateParameters corners only")
            return params
        if isinstance(params, NorGateParameters):
            return paper_generalized(self.num_inputs, params)
        if params.num_inputs != self.num_inputs:
            raise ParameterError(
                f"corner parameter set has {params.num_inputs} "
                f"inputs; {self.gate!r} arcs need {self.num_inputs}")
        return params

    def _vn_init(self, params) -> float:
        """Worst-case (or overridden) NOR-frame internal-node voltage."""
        if self.gate == "nand2":
            # NAND state axis is V_M; mirror into the NOR frame.
            vm = params.vdd if self.state is None else self.state
            return params.vdd - vm
        return 0.0 if self.state is None else self.state

    def delays(self, direction: str, deltas,
               params: NorGateParameters | None = None) -> np.ndarray:
        """Evaluate ``δ(Δ)`` for the arc's output *direction*.

        See :meth:`ArcDelayModel.delays`; *params* re-targets the
        evaluation to another corner.  2-input gate types only — the
        Δ-vector arcs of wider gates go through :meth:`delays_n`.
        """
        if self.gate not in MIS_GATE_TYPES:
            raise ParameterError(
                f"{self.gate!r} arcs carry Δ-vector delays; call "
                "delays_n with an (..., n-1) offset matrix")
        resolved = self._resolve(params)
        if self.gate == "nand2":
            # Mirror duality: swap directions, mirror the state axis.
            direction = "rising" if direction == "falling" else "falling"
        return delays_for_direction(self.engine, direction, resolved,
                                    deltas, self._vn_init(resolved))

    def delays_n(self, direction: str, deltas,
                 params=None) -> np.ndarray:
        """Evaluate ``δ(Δ-vector)`` for an n-input NOR arc.

        See :meth:`ArcDelayModel.delays_n`; *params* re-targets the
        evaluation to another corner (2-input corner sets are widened
        through ``paper_generalized``).
        """
        if self.gate in MIS_GATE_TYPES:
            raise ParameterError(
                f"{self.gate!r} arcs carry scalar-Δ delays; call "
                "delays")
        resolved = self._resolve(params)
        return delays_for_direction(self.engine, direction, resolved,
                                    deltas, self._vn_init(resolved))

    def __repr__(self) -> str:
        return (f"EngineArcModel(gate={self.gate!r}, "
                f"engine={self.engine.name!r})")


class TableArcModel:
    """Characterized-library arc lookup.

    Replays a :class:`~repro.library.GateDelayTable` — the consumer
    side of ``repro characterize`` — with the same clamped bilinear
    interpolation the :class:`~repro.timing.channels.TableDelayChannel`
    uses, so STA and event simulation read identical numbers.

    Parameters
    ----------
    table : GateDelayTable
        Characterized delay surfaces (``table.gate`` fixes the
        conventions).
    state : float, optional
        Internal-node voltage for state-dependent surface lookups;
        ``None`` (default) selects the worst case (0 V for NOR,
        ``VDD`` for NAND), matching the table channel.
    """

    name = "table"
    retargetable = False

    def __init__(self, table: GateDelayTable,
                 state: float | None = None):
        self.table = table
        if state is None:
            state = table.params.vdd if table.gate == "nand2" else 0.0
        self.state = float(state)

    @property
    def gate(self) -> str:
        """Gate type of the backing table (``"nor2"`` / ``"nand2"`` /
        ``"nor<n>"``)."""
        return self.table.gate

    @property
    def num_inputs(self) -> int:
        """Input count of the backing table's gate."""
        return self.table.num_inputs

    def delays(self, direction: str, deltas,
               params: NorGateParameters | None = None) -> np.ndarray:
        """Interpolated ``δ(Δ)`` from the characterized surfaces.

        Raises
        ------
        ParameterError
            If a *params* corner override is requested — tables are
            characterized for one parameter set; re-characterize a
            library per corner instead.
        """
        if params is not None and params != self.table.params:
            raise ParameterError(
                f"table-backed arc ({self.table.cell!r}) cannot be "
                "re-targeted to another parameter corner; "
                "characterize a library for that corner instead")
        if isinstance(self.table.falling, VectorDelaySurface):
            raise ParameterError(
                f"{self.table.cell!r} carries Δ-vector surfaces; "
                "call delays_n with an (..., n-1) offset matrix")
        if direction == "falling":
            return self.table.falling.delays_at(deltas, self.state,
                                                clamp=True)
        if direction == "rising":
            return self.table.rising.delays_at(deltas, self.state,
                                               clamp=True)
        raise ParameterError(f"direction must be 'falling' or "
                             f"'rising', got {direction!r}")

    def delays_n(self, direction: str, deltas,
                 params=None) -> np.ndarray:
        """Interpolated ``δ(Δ-vector)`` from an n-input table.

        Clamped multilinear lookups on the characterized
        :class:`~repro.library.tables.VectorDelaySurface` pair; see
        :meth:`ArcDelayModel.delays_n`.
        """
        if params is not None and params != self.table.params:
            raise ParameterError(
                f"table-backed arc ({self.table.cell!r}) cannot be "
                "re-targeted to another parameter corner; "
                "characterize a library for that corner instead")
        if not isinstance(self.table.falling, VectorDelaySurface):
            raise ParameterError(
                f"{self.table.cell!r} carries scalar-Δ surfaces; "
                "call delays")
        if direction == "falling":
            return self.table.falling.delays_at(deltas, clamp=True)
        if direction == "rising":
            return self.table.rising.delays_at(deltas, clamp=True)
        raise ParameterError(f"direction must be 'falling' or "
                             f"'rising', got {direction!r}")

    def __repr__(self) -> str:
        return f"TableArcModel({self.table.cell!r})"


class FixedArcModel:
    """Δ-independent arc delays (the non-characterized fallback).

    Used for gates behind single-input channels, whose delay does not
    depend on a sibling input.  :meth:`from_channel` reads the
    channel's stable-history delays (``δ(∞)``), which is exact for
    pure/inertial channels and the settled-history limit for
    involution channels.

    Parameters
    ----------
    delay_rise : float
        Delay of output-rising arcs, seconds (non-negative).
    delay_fall : float
        Delay of output-falling arcs, seconds (non-negative).
    """

    name = "fixed"
    retargetable = False

    def __init__(self, delay_rise: float, delay_fall: float):
        if not (math.isfinite(delay_rise) and delay_rise >= 0.0
                and math.isfinite(delay_fall) and delay_fall >= 0.0):
            raise ParameterError("fixed arc delays must be finite and "
                                 "non-negative")
        self.delay_rise = float(delay_rise)
        self.delay_fall = float(delay_fall)

    @classmethod
    def from_channel(cls, channel) -> "FixedArcModel":
        """Read the stable-history delays off a single-input channel.

        Parameters
        ----------
        channel : SingleInputChannel
            Any channel implementing ``delay(value, history)``;
            probed at ``history = inf`` (output stable forever).

        Raises
        ------
        ParameterError
            If the channel declines to produce a delay even for an
            infinitely-settled history.
        """
        rise = channel.delay(1, math.inf)
        fall = channel.delay(0, math.inf)
        if rise is None or fall is None:
            raise ParameterError(
                f"channel {channel!r} has no stable-history delay; "
                "provide an explicit FixedArcModel")
        return cls(delay_rise=rise, delay_fall=fall)

    def delays(self, direction: str, deltas,
               params: NorGateParameters | None = None) -> np.ndarray:
        """Constant delays broadcast to the shape of *deltas*."""
        if direction == "falling":
            value = self.delay_fall
        elif direction == "rising":
            value = self.delay_rise
        else:
            raise ParameterError(f"direction must be 'falling' or "
                                 f"'rising', got {direction!r}")
        return np.full(np.shape(np.asarray(deltas, dtype=float)),
                       value)

    def delays_n(self, direction: str, deltas,
                 params=None) -> np.ndarray:
        """Constant delays broadcast to the Δ-matrix row shape."""
        d = np.asarray(deltas, dtype=float)
        return self.delays(direction, d[..., 0] if d.ndim else d,
                           params)

    def __repr__(self) -> str:
        return (f"FixedArcModel(rise={self.delay_rise!r}, "
                f"fall={self.delay_fall!r})")


class WireArcModel:
    """RC-interconnect arc: one sink of a reduced wire tree.

    Wires are linear, so the arc is Δ-independent, positive-unate
    (rise propagates as rise, fall as fall) and direction-symmetric —
    a single delay serves both transitions.  The delay comes from the
    reduced-order models of :mod:`repro.wire.model`
    (:meth:`TimingCircuit.add_wire` builds these arcs), and the sink
    slew rides along as reporting metadata.

    Parameters
    ----------
    delay : float
        Sink delay, seconds (finite, non-negative; any slew-derate
        penalty already folded in).
    slew : float, optional
        10–90 % step-response slew at the sink, seconds.
    sink : str, optional
        Sink node name (span/report labeling).
    model : str, optional
        Reduced-order model the delay came from.
    """

    name = "wire"
    retargetable = False

    def __init__(self, delay: float, slew: float = 0.0,
                 sink: str = "", model: str = "elmore"):
        if not (math.isfinite(delay) and delay >= 0.0):
            raise ParameterError("wire arc delay must be finite and "
                                 "non-negative")
        if not (math.isfinite(slew) and slew >= 0.0):
            raise ParameterError("wire arc slew must be finite and "
                                 "non-negative")
        self.delay = float(delay)
        self.slew = float(slew)
        self.sink = sink
        self.model = model

    @classmethod
    def from_instance(cls, instance) -> "WireArcModel":
        """Build the arc from a
        :class:`~repro.timing.circuit.WireInstance`."""
        return cls(delay=instance.delay, slew=instance.slew,
                   sink=instance.sink, model=instance.delay_model)

    def delays(self, direction: str, deltas,
               params: NorGateParameters | None = None) -> np.ndarray:
        """The sink delay broadcast to the shape of *deltas*."""
        if direction not in ("falling", "rising"):
            raise ParameterError(f"direction must be 'falling' or "
                                 f"'rising', got {direction!r}")
        with span("sta.wire_arc", sink=self.sink,
                  model=self.model, direction=direction):
            return np.full(np.shape(np.asarray(deltas, dtype=float)),
                           self.delay)

    def delays_n(self, direction: str, deltas,
                 params=None) -> np.ndarray:
        """The sink delay broadcast to the Δ-matrix row shape."""
        d = np.asarray(deltas, dtype=float)
        return self.delays(direction, d[..., 0] if d.ndim else d,
                           params)

    def __repr__(self) -> str:
        return (f"WireArcModel(sink={self.sink!r}, "
                f"delay={self.delay!r}, model={self.model!r})")
