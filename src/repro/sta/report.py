"""Rendering STA results: text reports and JSON payloads.

The text report follows the shape of a classic STA tool's output —
an endpoint summary (arrival / required / slack per transition)
followed by the ranked critical paths with their per-arc Δ and delay
breakdown.  :func:`sta_payload` returns the plain-dict form embedded
in :class:`repro.api.StaRunResult` (and written by
``repro sta --json``).
"""

from __future__ import annotations

import math
import warnings
from typing import Any

from ..units import to_ps
from .analysis import StaResult
from .graph import TimingNode
from .sweep import CornerSweepResult

__all__ = ["render_report", "result_to_json", "render_sweep_summary",
           "sta_payload"]


def _fmt(value: float, signed: bool = False) -> str:
    """Picosecond rendering with ±inf spelled out."""
    if math.isinf(value):
        return "never" if value > 0 else "long ago"
    sign = "+" if signed else ""
    return f"{to_ps(value):{sign}.2f}"


def render_report(result: StaResult, title: str = "") -> str:
    """Render an :class:`~repro.sta.analysis.StaResult` as text.

    Parameters
    ----------
    result : StaResult
        The analysis to render.
    title : str, optional
        Heading line (defaults to a generic one).

    Returns
    -------
    str
        The multi-line report: graph summary, endpoint table,
        ranked paths.
    """
    lines = [title or f"STA report ({result.mode} analysis)"]
    lines.append(f"  {result.graph.describe()}")
    lines.append("")
    header = (f"{'endpoint':<14} {'arrival [ps]':>14} "
              f"{'required [ps]':>15} {'slack [ps]':>12}")
    lines.append(header)
    lines.append("-" * len(header))
    for node in sorted(result.graph.endpoints):
        for transition in ("rise", "fall"):
            key = TimingNode(node, transition)
            arrival = result.arrivals[key]
            required = result.required[key]
            slack = result.slacks[key]
            lines.append(
                f"{str(key):<14} {_fmt(arrival):>14} "
                f"{(_fmt(required) if math.isfinite(required) else '-'):>15} "
                f"{(_fmt(slack, signed=True) if math.isfinite(slack) else '-'):>12}")
    worst = result.worst_slack
    if math.isfinite(worst):
        lines.append(f"worst slack: {to_ps(worst):+.2f} ps")
    if result.paths:
        lines.append("")
        lines.append(f"top {len(result.paths)} critical path(s):")
        for rank, path in enumerate(result.paths, start=1):
            lines.append(f"#{rank} " + path.describe())
    return "\n".join(lines)


def render_sweep_summary(sweep: CornerSweepResult) -> str:
    """One-paragraph summary of a corner sweep's arrival spread."""
    stats = sweep.summary()
    lines = [f"corner sweep: {sweep.corners} corners "
             f"({sweep.mode} analysis)"]
    lines.append(
        "  worst endpoint arrival: "
        f"min {to_ps(stats['min']):.2f} ps, "
        f"mean {to_ps(stats['mean']):.2f} ps, "
        f"p95 {to_ps(stats['p95']):.2f} ps, "
        f"max {to_ps(stats['max']):.2f} ps")
    if sweep.required is not None:
        slack = sweep.worst_slack()
        violations = int((slack < 0.0).sum())
        lines.append(f"  violations: {violations}/{sweep.corners} "
                     f"corners below the "
                     f"{to_ps(sweep.required):.2f} ps requirement")
    return "\n".join(lines)


def sta_payload(result: StaResult,
                sweep: CornerSweepResult | None = None
                ) -> dict[str, Any]:
    """JSON-ready analysis payload (arrivals, slacks, paths, sweep).

    This is the ``analysis`` field of :class:`repro.api.StaRunResult`
    — the plain-dict form ``repro sta --json`` embeds in its result
    envelope.

    Parameters
    ----------
    result : StaResult
        The scalar analysis.
    sweep : CornerSweepResult, optional
        An accompanying corner sweep; its per-corner worst arrivals
        and summary statistics are embedded under ``"sweep"``.
    """
    payload = result.to_dict()
    if sweep is not None:
        payload["sweep"] = {
            "corners": sweep.corners,
            "mode": sweep.mode,
            "worst_arrival_s": [
                None if not math.isfinite(value) else float(value)
                for value in sweep.worst_arrival()],
            "summary_s": {
                key: (None if not math.isfinite(value)
                      else float(value))
                for key, value in sweep.summary().items()},
        }
    return payload


def result_to_json(result: StaResult,
                   sweep: CornerSweepResult | None = None
                   ) -> dict[str, Any]:
    """Deprecated alias of :func:`sta_payload`.

    .. deprecated:: 1.5.0
        Use :func:`repro.sta.sta_payload`, or go through the session
        facade — ``Session().run(StaRequest(...)).analysis`` carries
        the same payload.
    """
    warnings.warn(
        "repro.sta.result_to_json is deprecated; use "
        "repro.sta.sta_payload (or Session.run(StaRequest(...))"
        ".analysis from repro.api)", DeprecationWarning, stacklevel=2)
    return sta_payload(result, sweep)
