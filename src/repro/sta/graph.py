"""Lowering a :class:`~repro.timing.TimingCircuit` into timing arcs.

Static timing analysis does not walk gates — it walks a *timing
graph*: one node per ``(signal, transition)`` and one arc per
input-pin-to-output-pin delay dependency.  This module builds that
graph from the same netlists the event simulators consume, so a
circuit is described once and analyzed both ways.

Arc construction per instance kind:

* :class:`~repro.timing.circuit.HybridInstance` (the paper's fused
  NOR element) — two **MIS arc pairs**: output-falling fed by both
  rising inputs through the parallel nMOS network (delay ``δ↓(Δ)``
  referenced to the *earlier* input) and output-rising fed by both
  falling inputs through the series pMOS stack (``δ↑(Δ)``, referenced
  to the *later* input).  Delays come from an
  :class:`~repro.sta.arcs.EngineArcModel` unless overridden.
* :class:`~repro.timing.circuit.MultiInputInstance` (the generalized
  n-input NOR element) — one MIS arc per pin and output transition,
  each carrying the full ordered ``pin_nodes`` tuple so the analyzer
  can condition the group's delay on the (n−1)-dimensional Δ-vector
  of sibling arrival offsets in one batched model call
  (:class:`~repro.sta.arcs.EngineArcModel` over
  ``GeneralizedNorParameters``, or a Δ-vector
  :class:`~repro.sta.arcs.TableArcModel`).
* :class:`~repro.timing.circuit.GateInstance` holding a two-input
  :class:`~repro.timing.channels.TableDelayChannel` — the same MIS
  pairs, with a :class:`~repro.sta.arcs.TableArcModel` reading the
  characterized library surfaces (NAND swaps which transition is the
  parallel one, per the mirror duality).
* :class:`~repro.timing.circuit.WireInstance` (one sink of an RC
  wire tree) — a positive-unate, direction-symmetric arc pair
  (rise→rise, fall→fall) carrying the reduced-order interconnect
  delay as a :class:`~repro.sta.arcs.WireArcModel`.
* any other :class:`GateInstance` — one arc per input transition
  sensitization, derived from the boolean function's unateness
  (binate functions like XOR get both polarities), with the
  single-input channel's stable-history delays as a
  :class:`~repro.sta.arcs.FixedArcModel`.
"""

from __future__ import annotations

import dataclasses
from typing import NamedTuple

from ..errors import NetlistError
from ..timing.channels.multi_input import GeneralizedNorChannel
from ..timing.channels.table import TableDelayChannel
from ..timing.circuit import (GateInstance, HybridInstance,
                              MultiInputInstance, TimingCircuit,
                              WireInstance)
from .arcs import (ArcDelayModel, EngineArcModel, FixedArcModel,
                   TableArcModel, WireArcModel)

__all__ = ["TimingNode", "TimingArc", "TimingGraph",
           "build_timing_graph", "input_unateness"]

#: Output transitions, in node order.
TRANSITIONS = ("rise", "fall")

#: Map node transition -> delay-model direction.
DIRECTION = {"rise": "rising", "fall": "falling"}


class TimingNode(NamedTuple):
    """One ``(signal, transition)`` point of the timing graph.

    Attributes
    ----------
    signal : str
        Signal name from the circuit.
    transition : str
        ``"rise"`` or ``"fall"``.
    """

    signal: str
    transition: str

    def __str__(self) -> str:
        arrow = "↑" if self.transition == "rise" else "↓"
        return f"{self.signal}{arrow}"


@dataclasses.dataclass(frozen=True)
class TimingArc:
    """A pin-to-pin timing dependency.

    Parameters
    ----------
    instance : str
        Name of the circuit instance the arc crosses.
    source : TimingNode
        Input-pin transition the arc is traced through.
    target : TimingNode
        Output-pin transition the arc drives.
    model : ArcDelayModel
        Delay model evaluated for the arc.
    siblings : tuple of TimingNode
        The partner inputs' transitions for MIS arcs, in pin order
        with the source pin removed (empty for single-input arcs).
    pin : str
        Which pin the source sits on: ``"a"`` / ``"b"`` for the
        paper's 2-input elements, ``"p<i>"`` for wider gates
        (``"a"`` for single-input arcs).
    pin_index : int
        Position of the source pin in the instance's input order.
    pin_nodes : tuple of TimingNode
        For MIS arcs: *all* input transitions of the MIS group in
        pin order (the source included) — the Δ-vector the delay is
        conditioned on is built from their arrivals relative to pin
        0.  Empty for single-input arcs.
    reference : str
        Which input the arc delay is referenced to: ``"earlier"``
        (parallel network), ``"later"`` (series network) or
        ``"input"`` (single-input arcs).
    """

    instance: str
    source: TimingNode
    target: TimingNode
    model: ArcDelayModel
    siblings: tuple[TimingNode, ...] = ()
    pin: str = "a"
    pin_index: int = 0
    pin_nodes: tuple[TimingNode, ...] = ()
    reference: str = "input"

    @property
    def is_mis(self) -> bool:
        """Whether the arc carries a sibling-conditioned MIS delay."""
        return bool(self.siblings)

    @property
    def sibling(self) -> TimingNode | None:
        """The single partner transition of a 2-input MIS arc
        (``None`` for single-input arcs and wider gates)."""
        return self.siblings[0] if len(self.siblings) == 1 else None

    def __str__(self) -> str:
        return (f"{self.source} -> {self.target} "
                f"[{self.instance}/{self.model.name}]")


def input_unateness(function, arity: int, index: int) -> set[str]:
    """Sensitization polarities of one input of a boolean function.

    Enumerates all assignments of the other inputs and records whether
    toggling input *index* can raise (``"positive"``) and/or lower
    (``"negative"``) the output.

    Parameters
    ----------
    function : callable
        Boolean function of *arity* 0/1 arguments returning 0/1.
    arity : int
        Number of inputs.
    index : int
        Input position probed.

    Returns
    -------
    set of str
        Subset of ``{"positive", "negative"}``; empty when the output
        never depends on the input.
    """
    senses: set[str] = set()
    for assignment in range(2 ** (arity - 1)):
        values = []
        bit = 0
        for position in range(arity):
            if position == index:
                values.append(0)
            else:
                values.append((assignment >> bit) & 1)
                bit += 1
        low = function(*values)
        values[index] = 1
        high = function(*values)
        if high > low:
            senses.add("positive")
        elif high < low:
            senses.add("negative")
    return senses


class TimingGraph:
    """The lowered circuit: nodes, arcs, and topological structure.

    Built by :func:`build_timing_graph`; read by
    :func:`repro.sta.analysis.analyze` and the corner sweeps of
    :mod:`repro.sta.sweep`.

    Parameters
    ----------
    circuit : TimingCircuit
        The source netlist (kept for provenance).
    arcs : list of TimingArc
        All timing arcs.
    signal_order : list of str
        Driven signals in topological (driver-before-consumer) order.
    """

    def __init__(self, circuit: TimingCircuit,
                 arcs: list[TimingArc],
                 signal_order: list[str]):
        self.circuit = circuit
        self.arcs = list(arcs)
        self.signal_order = list(signal_order)
        self._incoming: dict[TimingNode, list[TimingArc]] = {}
        for arc in self.arcs:
            self._incoming.setdefault(arc.target, []).append(arc)
        consumed = {signal
                    for instance in circuit.instances
                    for signal in circuit.instance_inputs(instance)}
        self.endpoints: tuple[str, ...] = tuple(
            signal for signal in signal_order if signal not in consumed)

    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input signal names."""
        return self.circuit.inputs

    def nodes(self) -> list[TimingNode]:
        """All graph nodes, inputs first, in topological order."""
        out = [TimingNode(signal, transition)
               for signal in self.inputs
               for transition in TRANSITIONS]
        out += [TimingNode(signal, transition)
                for signal in self.signal_order
                for transition in TRANSITIONS]
        return out

    def incoming(self, node: TimingNode) -> list[TimingArc]:
        """Arcs driving *node* (empty for primary-input nodes)."""
        return self._incoming.get(node, [])

    def mis_pairs(self) -> list[tuple[TimingArc, ...]]:
        """MIS arcs grouped per (instance, target), in pin order —
        pairs for two-input elements (a single arc for tied-input
        gates), wider tuples for n-input gates."""
        pairs: dict[tuple[str, TimingNode], dict[int, TimingArc]] = {}
        for arc in self.arcs:
            if arc.is_mis:
                slot = pairs.setdefault((arc.instance, arc.target), {})
                slot[arc.pin_index] = arc
        return [tuple(slot[index] for index in sorted(slot))
                for slot in pairs.values()]

    def describe(self) -> str:
        """One-line structural summary (used by the CLI report)."""
        mis = sum(1 for arc in self.arcs if arc.is_mis)
        return (f"{len(self.signal_order)} driven signals, "
                f"{len(self.arcs)} arcs ({mis} MIS-conditioned), "
                f"endpoints: {', '.join(self.endpoints)}")


def _mis_arcs(instance_name: str, inputs, output: str, gate: str,
              model: ArcDelayModel) -> list[TimingArc]:
    """The MIS arcs of one fused NOR/NAND element (any width)."""
    # Negative-unate both ways: rising inputs drive the falling
    # output and vice versa.  Which output transition runs through
    # the parallel network (referenced to the earlier input) depends
    # on the gate type — NOR falls in parallel, NAND rises in
    # parallel (mirror duality).
    inputs = tuple(inputs)
    parallel_target = "rise" if gate == "nand2" else "fall"
    arcs = []
    for target_transition in TRANSITIONS:
        source_transition = ("fall" if target_transition == "rise"
                             else "rise")
        reference = ("earlier" if target_transition == parallel_target
                     else "later")
        target = TimingNode(output, target_transition)
        pin_nodes = tuple(TimingNode(signal, source_transition)
                          for signal in inputs)
        seen: set[str] = set()
        for index, signal in enumerate(inputs):
            if signal in seen:
                # Tied inputs: one arc per distinct signal suffices
                # (Δ = 0 between tied pins by construction).
                continue
            seen.add(signal)
            pin = (("a", "b")[index] if len(inputs) == 2
                   else f"p{index}")
            siblings = tuple(node for position, node
                             in enumerate(pin_nodes)
                             if position != index)
            arcs.append(TimingArc(
                instance=instance_name,
                source=TimingNode(signal, source_transition),
                target=target,
                model=model,
                siblings=siblings,
                pin=pin,
                pin_index=index,
                pin_nodes=pin_nodes,
                reference=reference,
            ))
    return arcs


def _single_input_arcs(instance: GateInstance,
                       model: ArcDelayModel) -> list[TimingArc]:
    """Unateness-derived arcs of a generic gate + channel instance."""
    arcs = []
    arity = len(instance.inputs)
    for index, signal in enumerate(instance.inputs):
        senses = input_unateness(instance.function, arity, index)
        for sense in senses:
            for target_transition in TRANSITIONS:
                if sense == "positive":
                    source_transition = target_transition
                else:
                    source_transition = ("fall"
                                         if target_transition == "rise"
                                         else "rise")
                arcs.append(TimingArc(
                    instance=instance.name,
                    source=TimingNode(signal, source_transition),
                    target=TimingNode(instance.output,
                                      target_transition),
                    model=model,
                ))
    return arcs


def _wire_arcs(instance: WireInstance,
               model: ArcDelayModel) -> list[TimingArc]:
    """The positive-unate arc pair of one wire sink.

    Linear RC interconnect never inverts: a rise propagates as a
    rise and a fall as a fall, with the same (Δ-independent) delay.
    """
    signal = instance.inputs[0]
    return [TimingArc(
        instance=instance.name,
        source=TimingNode(signal, transition),
        target=TimingNode(instance.output, transition),
        model=model,
    ) for transition in TRANSITIONS]


def build_timing_graph(circuit: TimingCircuit,
                       models: dict[str, ArcDelayModel] | None = None,
                       engine=None) -> TimingGraph:
    """Lower a circuit into a :class:`TimingGraph`.

    Parameters
    ----------
    circuit : TimingCircuit
        Feed-forward netlist (combinational loops are rejected by the
        underlying topological sort).
    models : dict of str to ArcDelayModel, optional
        Per-instance delay-model overrides, keyed by instance name —
        e.g. swap a hybrid instance's direct evaluation for a
        :class:`~repro.sta.arcs.TableArcModel` read from a library.
    engine : str or DelayEngine, optional
        Evaluation backend for the default
        :class:`~repro.sta.arcs.EngineArcModel` arcs.

    Returns
    -------
    TimingGraph
        The lowered graph.

    Raises
    ------
    NetlistError
        If an override names an unknown instance, or a gate's
        boolean output depends on none of its inputs.
    """
    models = dict(models or {})
    unknown = set(models) - {inst.name for inst in circuit.instances}
    if unknown:
        raise NetlistError(
            f"arc-model overrides for unknown instance(s): "
            f"{sorted(unknown)}")

    arcs: list[TimingArc] = []
    for instance in circuit.topological_order():
        override = models.get(instance.name)
        if isinstance(instance, (HybridInstance, MultiInputInstance)):
            channel = instance.channel
            if override is not None:
                model = override
            elif isinstance(channel, TableDelayChannel):
                model = TableArcModel(channel.table,
                                      state=channel.state)
            elif isinstance(channel, GeneralizedNorChannel):
                model = EngineArcModel(
                    channel.params, f"nor{channel.inputs}",
                    engine=engine)
            else:
                model = EngineArcModel(channel.params, "nor2",
                                       engine=engine)
            arcs.extend(_mis_arcs(instance.name, instance.inputs,
                                  instance.output,
                                  getattr(model, "gate", "nor2"),
                                  model))
        elif isinstance(instance, WireInstance):
            model = override or WireArcModel.from_instance(instance)
            arcs.extend(_wire_arcs(instance, model))
        else:
            gate_arcs = _single_input_arcs(
                instance,
                override or FixedArcModel.from_channel(
                    instance.channel))
            if not gate_arcs:
                raise NetlistError(
                    f"gate {instance.name!r} output does not depend "
                    "on any input — cannot build timing arcs")
            arcs.extend(gate_arcs)

    order = [inst.output for inst in circuit.topological_order()]
    return TimingGraph(circuit, arcs, order)
