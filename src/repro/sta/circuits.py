"""The paper's NOR test circuits, packaged for STA and simulation.

Small feed-forward circuits built from the paper's two-input hybrid
NOR element — the same netlists drive the STA-vs-event-simulation
cross-validation (:func:`repro.analysis.experiments.experiment_sta`),
the ``repro sta`` CLI, and the corner-sweep benchmark.  Each builder
returns a :class:`~repro.timing.TimingCircuit` whose instances carry
:class:`~repro.timing.channels.HybridNorChannel` delays, so event
simulation and STA read the exact same model.

* ``nor2`` — the paper's single NOR gate (Section VI's device under
  test): inputs ``a``, ``b``, output ``y``.
* ``chain`` — NOR inverter chain: each stage ties both pins to the
  previous signal (``Δ = 0`` MIS points all the way down).
* ``tree`` — a balanced NOR reduction tree over four inputs
  (``a`` … ``d``), mixing earlier/later references per level.
* ``chain_wire`` / ``tree_wire`` — the wired variants: RC
  interconnect (:class:`~repro.wire.WireTree`) between stages, with
  the driving gates re-parameterized through
  :func:`repro.wire.loaded_params` so they price the wire load.
"""

from __future__ import annotations

import numpy as np

from ..core.multi_input import paper_generalized
from ..core.parameters import PAPER_TABLE_I, NorGateParameters
from ..errors import ParameterError
from ..timing.channels.hybrid import HybridNorChannel
from ..timing.channels.multi_input import GeneralizedNorChannel
from ..timing.circuit import TimingCircuit
from ..units import PS
from ..wire.coupling import loaded_params
from ..wire.tree import WireTree

__all__ = ["STA_CIRCUITS", "sta_circuit", "single_nor", "nor_chain",
           "nor_tree", "single_nor3", "nor3_mixed", "nor_chain_wire",
           "nor_tree_wire", "demo_wire_line", "demo_wire_fanout",
           "demo_corners"]


def single_nor(params: NorGateParameters = PAPER_TABLE_I
               ) -> TimingCircuit:
    """One hybrid NOR: inputs ``a``, ``b``, output ``y``."""
    circuit = TimingCircuit(["a", "b"])
    circuit.add_hybrid_nor("g0", "a", "b", "y",
                           HybridNorChannel(params))
    return circuit


def nor_chain(params: NorGateParameters = PAPER_TABLE_I,
              stages: int = 3) -> TimingCircuit:
    """NOR-as-inverter chain: stage *i* NORs the previous signal
    with itself (both pins tied), so every stage sits at the paper's
    ``Δ = 0`` MIS point.

    Parameters
    ----------
    params : NorGateParameters, optional
        Electrical parameters shared by all stages.
    stages : int, optional
        Number of NOR stages (default 3, at least 1).
    """
    if stages < 1:
        raise ParameterError("chain needs at least 1 stage")
    circuit = TimingCircuit(["a"])
    previous = "a"
    for index in range(stages):
        output = f"n{index + 1}" if index < stages - 1 else "y"
        circuit.add_hybrid_nor(f"g{index}", previous, previous,
                               output, HybridNorChannel(params))
        previous = output
    return circuit


def nor_tree(params: NorGateParameters = PAPER_TABLE_I
             ) -> TimingCircuit:
    """Balanced two-level NOR tree over inputs ``a`` … ``d``.

    Level one NORs ``(a, b)`` and ``(c, d)``; level two NORs the two
    intermediate signals into ``y`` — a miniature reduction tree
    whose root delay depends on the MIS alignment of *both* levels.
    """
    circuit = TimingCircuit(["a", "b", "c", "d"])
    circuit.add_hybrid_nor("g0", "a", "b", "n1",
                           HybridNorChannel(params))
    circuit.add_hybrid_nor("g1", "c", "d", "n2",
                           HybridNorChannel(params))
    circuit.add_hybrid_nor("g2", "n1", "n2", "y",
                           HybridNorChannel(params))
    return circuit


def single_nor3(params: NorGateParameters = PAPER_TABLE_I
                ) -> TimingCircuit:
    """One generalized 3-input NOR: inputs ``a``–``c``, output ``y``.

    Parameters
    ----------
    params : NorGateParameters, optional
        2-input base set widened through
        :func:`repro.core.multi_input.paper_generalized` (the
        ``repro sta`` circuits share one parameter knob).
    """
    circuit = TimingCircuit(["a", "b", "c"])
    circuit.add_mis_gate(
        "g0", ["a", "b", "c"], "y",
        GeneralizedNorChannel(paper_generalized(3, params)))
    return circuit


def nor3_mixed(params: NorGateParameters = PAPER_TABLE_I
               ) -> TimingCircuit:
    """A NOR3 feeding a 2-input NOR — mixed-width MIS conditioning.

    The 3-input gate reduces ``a``–``c`` into ``n1``; a paper NOR2
    combines ``n1`` with input ``d`` into ``y``, so the root delay
    depends on a Δ-vector at the first level and a scalar Δ at the
    second.
    """
    circuit = TimingCircuit(["a", "b", "c", "d"])
    circuit.add_mis_gate(
        "g0", ["a", "b", "c"], "n1",
        GeneralizedNorChannel(paper_generalized(3, params)))
    circuit.add_hybrid_nor("g1", "n1", "d", "y",
                           HybridNorChannel(params))
    return circuit


def demo_wire_line(segments: int = 3) -> WireTree:
    """The default inter-stage wire of ``chain_wire``: a 3-stage
    2 kΩ / 0.4 fF-per-segment line (≈ 1.2 fF total — twice the
    paper's intrinsic ``co``, a realistically heavy route)."""
    return WireTree.line(segments=segments, resistance=2e3,
                         capacitance=0.4e-15)


def demo_wire_fanout() -> WireTree:
    """The default fanout wire of ``tree_wire``: one stem segment
    splitting into two 2-segment branches (same per-segment RC as
    :func:`demo_wire_line`)."""
    return WireTree.fanout(branches=2, stem=1, segments=2,
                           resistance=2e3, capacitance=0.4e-15)


def nor_chain_wire(params: NorGateParameters = PAPER_TABLE_I,
                   stages: int = 2,
                   tree: WireTree | None = None) -> TimingCircuit:
    """The ``chain`` circuit with RC wire between the stages.

    Stage *i* is a tied-input NOR (``Δ = 0`` MIS point) driving
    ``o<i+1>``; every stage but the last feeds a copy of *tree*
    whose sink signal ``m<i+1>`` drives the next stage.  Driving
    gates carry :func:`repro.wire.loaded_params` so the hybrid model
    prices the wire capacitance; the transistor-level counterpart is
    :func:`repro.wire.spice.wired_nor_chain`.

    Parameters
    ----------
    params : NorGateParameters, optional
        Electrical parameters of every gate (before wire loading).
    stages : int, optional
        Number of NOR stages (default 2, at least 2).
    tree : WireTree, optional
        Inter-stage wire (default :func:`demo_wire_line`; must have
        exactly one sink).
    """
    if stages < 2:
        raise ParameterError("a wired chain needs at least 2 stages")
    tree = tree if tree is not None else demo_wire_line()
    if len(tree.sinks) != 1:
        raise ParameterError("chain wires need exactly one sink")
    driving = loaded_params(params, tree)
    circuit = TimingCircuit(["a"])
    previous = "a"
    for index in range(stages):
        last = index == stages - 1
        output = "y" if last else f"o{index + 1}"
        circuit.add_hybrid_nor(
            f"g{index}", previous, previous, output,
            HybridNorChannel(params if last else driving))
        if not last:
            wired = f"m{index + 1}"
            circuit.add_wire(f"w{index + 1}", output, tree, wired)
            previous = wired
    return circuit


def nor_tree_wire(params: NorGateParameters = PAPER_TABLE_I,
                  tree: WireTree | None = None) -> TimingCircuit:
    """A NOR2 driving a fanout wire into two tied-input receivers.

    The driver NORs ``a`` and ``b`` into ``o`` (wire-loaded
    parameters); the fanout *tree* taps ``o`` into sink signals
    ``m1``/``m2``, each NORed with itself into endpoints
    ``y1``/``y2``.  The transistor-level counterpart is
    :func:`repro.wire.spice.wired_nor_tree`.

    Parameters
    ----------
    params : NorGateParameters, optional
        Electrical parameters of every gate (before wire loading).
    tree : WireTree, optional
        Fanout wire (default :func:`demo_wire_fanout`; must have
        exactly two sinks).
    """
    tree = tree if tree is not None else demo_wire_fanout()
    if len(tree.sinks) != 2:
        raise ParameterError("tree_wire needs a two-sink fanout "
                             "tree")
    circuit = TimingCircuit(["a", "b"])
    circuit.add_hybrid_nor("g0", "a", "b", "o",
                           HybridNorChannel(loaded_params(params,
                                                          tree)))
    circuit.add_wire("w0", "o", tree, ("m1", "m2"))
    circuit.add_hybrid_nor("r1", "m1", "m1", "y1",
                           HybridNorChannel(params))
    circuit.add_hybrid_nor("r2", "m2", "m2", "y2",
                           HybridNorChannel(params))
    return circuit


#: Named circuit builders accepted by :func:`sta_circuit` and the
#: CLI's ``repro sta --circuit`` flag.
STA_CIRCUITS = {
    "nor2": single_nor,
    "chain": nor_chain,
    "tree": nor_tree,
    "nor3": single_nor3,
    "nor3_mixed": nor3_mixed,
    "chain_wire": nor_chain_wire,
    "tree_wire": nor_tree_wire,
}


def sta_circuit(name: str,
                params: NorGateParameters = PAPER_TABLE_I
                ) -> TimingCircuit:
    """Build a named test circuit.

    Parameters
    ----------
    name : str
        A key of :data:`STA_CIRCUITS`.
    params : NorGateParameters, optional
        Electrical parameters for every gate (default: the paper's
        Table I).

    Raises
    ------
    ValueError
        If *name* is not a registered circuit.
    """
    try:
        builder = STA_CIRCUITS[name]
    except KeyError:
        raise ValueError(
            f"unknown circuit {name!r}; available: "
            f"{', '.join(sorted(STA_CIRCUITS))}") from None
    return builder(params)


def demo_corners(count: int, signals, seed: int = 0,
                 base: NorGateParameters = PAPER_TABLE_I):
    """The demo/benchmark corner grid shared by CLI and benches.

    Four process variants (the pull-down resistances scaled by
    0.9/1.0/1.1/1.2) assigned round-robin over the corner axis,
    crossed with uniformly random input-arrival offsets in
    ``[0, 40 ps]`` for each listed signal — the workload
    ``repro sta --corners`` reports and ``benchmarks/bench_sta.py``
    records in ``BENCH_sta.json``.

    Parameters
    ----------
    count : int
        Number of corners.
    signals : iterable of str
        Primary-input names that receive random arrival offsets.
    seed : int, optional
        RNG seed for the arrival axis (default 0).
    base : NorGateParameters, optional
        Parameter set the variants scale from.

    Returns
    -------
    tuple
        ``(params, arrivals)`` ready to pass to
        :func:`repro.sta.sweep.sweep_corners`.
    """
    rng = np.random.default_rng(seed)
    scales = (0.9, 1.0, 1.1, 1.2)
    variants = [base.replace(r3=base.r3 * scale, r4=base.r4 * scale)
                for scale in scales]
    params = [variants[index % len(variants)]
              for index in range(count)]
    arrivals = {signal: rng.uniform(0.0, 40.0 * PS, count)
                for signal in signals}
    return params, arrivals
