"""Arrival propagation, slack, and critical-path extraction.

The analyzer walks a :class:`~repro.sta.graph.TimingGraph` in
topological order and computes, per ``(signal, transition)`` node,
the worst-case (``max``) or best-case (``min``) arrival time, with
every MIS arc conditioned on the *sibling-input arrival offset*
``Δ = t_B − t_A`` exactly as the paper's two-input model prescribes:

* a **parallel-network** transition (NOR fall / NAND rise) crosses at
  ``min(t_A, t_B) + δ(Δ)`` — referenced to the *earlier* input;
* a **series-network** transition (NOR rise / NAND fall) crosses at
  ``max(t_A, t_B) + δ(Δ)`` — referenced to the *later* input.

Arrival conventions: ``+inf`` means *never switches* and ``−inf``
means *switched long ago* — both flow through the MIS arithmetic
naturally (a sibling that never rises puts the arc on its SIS
plateau ``δ(±∞)``), so constant side-inputs need no special casing.

Required times back-propagate from endpoint constraints and give
per-node slack; ranked critical paths fall out of a best-first
backward search over the recorded per-arc candidates.

The propagation core is *array-native*: arrivals are NumPy arrays
over a corner axis, and each arc costs one batched delay-model call
per distinct parameter corner — this is what
:mod:`repro.sta.sweep` exploits to make a 1000-corner sweep a
handful of engine calls instead of a thousand scalar analyses.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math

import numpy as np

from ..core.multi_input import sibling_offsets
from ..core.parameters import NorGateParameters
from ..errors import ParameterError, SimulationError
from .graph import DIRECTION, TimingArc, TimingGraph, TimingNode

__all__ = ["analyze", "StaResult", "TimingPath", "PathStep",
           "input_arrival_nodes"]

#: Cap on heap expansions during top-K path extraction.
_MAX_PATH_EXPANSIONS = 100_000


# ----------------------------------------------------------------------
# arrival specification
# ----------------------------------------------------------------------

def input_arrival_nodes(graph: TimingGraph,
                        arrivals=None) -> dict[TimingNode, float]:
    """Resolve an input-arrival spec into per-node times.

    Parameters
    ----------
    graph : TimingGraph
        The graph whose primary inputs are being constrained.
    arrivals : mapping, optional
        ``{signal: spec}`` where *spec* is either a single number
        (both transitions) or a ``(rise, fall)`` *tuple* — the same
        rule :func:`repro.sta.sweep.sweep_corners` applies, where
        non-tuple sequences mean a corner axis instead.  Missing
        signals default to ``(0.0, 0.0)``; use ``math.inf`` for a
        transition that never happens and ``-math.inf`` for one that
        happened long ago (a settled constant).

    Returns
    -------
    dict of TimingNode to float
        Arrival time per primary-input node.

    Raises
    ------
    ParameterError
        If *arrivals* names a signal that is not a primary input,
        or a spec is neither a number nor a 2-tuple.
    """
    arrivals = dict(arrivals or {})
    unknown = set(arrivals) - set(graph.inputs)
    if unknown:
        raise ParameterError(
            f"arrivals given for non-input signal(s): "
            f"{sorted(unknown)}; inputs are {list(graph.inputs)}")
    out: dict[TimingNode, float] = {}
    for signal in graph.inputs:
        spec = arrivals.get(signal, 0.0)
        if isinstance(spec, (int, float)):
            rise = fall = float(spec)
        elif isinstance(spec, tuple) and len(spec) == 2:
            rise, fall = (float(spec[0]), float(spec[1]))
        else:
            raise ParameterError(
                f"arrival spec for {signal!r} must be a number or a "
                f"(rise, fall) tuple, got {spec!r}")
        out[TimingNode(signal, "rise")] = rise
        out[TimingNode(signal, "fall")] = fall
    return out


# ----------------------------------------------------------------------
# the array-native propagation core
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _ArcRecord:
    """Per-arc evaluation record (arrays over the corner axis)."""

    arc: TimingArc
    delta: np.ndarray       # sibling separation(s) fed to the model:
                            # (corners,) scalar-Δ, (corners, n−1)
                            # Δ-vector arcs
    delay: np.ndarray       # model delay (NaN where not evaluated)
    candidate: np.ndarray   # arc's output-crossing candidate time
    through: np.ndarray     # candidate − arrival(source)


def _record_delta(record: _ArcRecord, corner: int = 0):
    """The conditioning Δ of one corner lane — a float for scalar-Δ
    arcs, a tuple of sibling offsets for Δ-vector arcs."""
    value = record.delta[corner]
    if np.ndim(value):
        return tuple(float(v) for v in value)
    return float(value)


def _group_lanes(axis):
    """Group one lane-indexed parameter axis by distinct set."""
    groups: dict[NorGateParameters, list[int]] = {}
    for lane, params in enumerate(axis):
        groups.setdefault(params, []).append(lane)
    return [(params, np.asarray(lanes))
            for params, lanes in groups.items()]


def _corner_groups(corner_params):
    """Group corner lanes by parameter set, once per propagation.

    ``corner_params`` is ``None`` (no re-targeting), a sequence of
    parameter sets one per corner lane (shared by every instance), or
    a mapping ``{instance name: sequence}`` for *per-instance*
    corners (independent process variation).  Returns ``None``, a
    list of ``(params, lane_index_array)`` pairs in first-appearance
    order, or a dict of such lists keyed by instance name.  Hashing
    every lane per *arc* was the sweep's second hottest path — the
    grouping depends only on the corner axis, so every arc of a
    propagation shares this one pass.
    """
    if corner_params is None:
        return None
    if isinstance(corner_params, dict):
        return {name: _group_lanes(axis)
                for name, axis in corner_params.items()}
    return _group_lanes(corner_params)


def _grouped_delays(arc: TimingArc, deltas: np.ndarray,
                    corner_groups) -> np.ndarray:
    """Evaluate an arc's delay model, batched per parameter corner.

    *deltas* is the scalar separation per lane (2-input and
    single-input arcs) or a ``(lanes, n−1)`` Δ-vector matrix
    (n-input arcs) — the matching model entry point is picked here.
    ``corner_groups`` is ``None`` (no re-targeting) or the
    :func:`_corner_groups` precompute — per-instance (dict) groupings
    re-target each arc with its own instance's axis; lanes sharing a
    parameter set are evaluated in a single model call.  NaN lanes
    (no crossing to condition on) are left NaN.
    """
    direction = DIRECTION[arc.target.transition]
    if deltas.ndim == 2:
        valid = ~np.isnan(deltas).any(axis=1)
        evaluate = arc.model.delays_n
    else:
        valid = ~np.isnan(deltas)
        evaluate = arc.model.delays
    delays = np.full(valid.shape, math.nan)
    groups = (corner_groups.get(arc.instance)
              if isinstance(corner_groups, dict) else corner_groups)
    if groups is None or not arc.model.retargetable:
        if valid.any():
            delays[valid] = evaluate(direction, deltas[valid])
        return delays
    for params, lanes in groups:
        index = lanes[valid[lanes]]
        if index.size:
            delays[index] = evaluate(direction, deltas[index],
                                     params=params)
    return delays


def _propagate(graph: TimingGraph,
               input_arrivals: dict[TimingNode, np.ndarray],
               mode: str,
               corner_params=None,
               keep_records: bool = True):
    """Forward arrival propagation over the corner axis.

    Returns ``(arrivals, records)`` where *arrivals* maps every node
    to an array over corners and *records* maps target nodes to their
    incoming :class:`_ArcRecord` lists (empty when *keep_records* is
    false).
    """
    if mode not in ("max", "min"):
        raise ParameterError(f"mode must be 'max' or 'min', got "
                             f"{mode!r}")
    arrival: dict[TimingNode, np.ndarray] = dict(input_arrivals)
    shape = next(iter(arrival.values())).shape
    records: dict[TimingNode, list[_ArcRecord]] = {}
    corner_groups = _corner_groups(corner_params)

    for signal in graph.signal_order:
        for transition in ("rise", "fall"):
            node = TimingNode(signal, transition)
            arcs = graph.incoming(node)
            if not arcs:
                # The gate function cannot produce this transition.
                arrival[node] = np.full(shape, math.inf)
                continue
            node_records: list[_ArcRecord] = []
            candidates: list[np.ndarray] = []
            # MIS pairs share one joint (Δ, δ, crossing) evaluation.
            pair_cache: dict[tuple[str, TimingNode], tuple] = {}
            for arc in arcs:
                t_source = arrival[arc.source]
                if arc.is_mis:
                    key = (arc.instance, arc.target)
                    if key not in pair_cache:
                        times = np.stack([arrival[pin_node]
                                          for pin_node
                                          in arc.pin_nodes])
                        if arc.reference == "earlier":
                            reference = times.min(axis=0)
                        else:
                            reference = times.max(axis=0)
                        finite = np.isfinite(reference)
                        if len(arc.pin_nodes) == 2:
                            with np.errstate(invalid="ignore"):
                                delta = times[1] - times[0]
                            lookup = np.where(finite, delta,
                                              math.nan)
                        else:
                            # Per-sibling ±inf encodings: offsets
                            # are clipped around the (finite)
                            # reference far past the settling
                            # region, so never/long-ago siblings
                            # land on the SIS plateaus.
                            anchor = np.where(finite, reference,
                                              0.0)
                            offsets = sibling_offsets(times, anchor)
                            delta = np.where(finite[:, None],
                                             offsets, math.nan)
                            lookup = delta
                        delay = _grouped_delays(arc, lookup,
                                                corner_groups)
                        candidate = np.where(
                            finite,
                            reference + np.nan_to_num(delay),
                            reference)
                        pair_cache[key] = (delta, delay, candidate)
                    delta, delay, candidate = pair_cache[key]
                else:
                    delta = np.zeros(shape)
                    delay = _grouped_delays(arc, delta,
                                            corner_groups)
                    candidate = t_source + delay
                candidates.append(candidate)
                if keep_records:
                    with np.errstate(invalid="ignore"):
                        through = candidate - t_source
                    node_records.append(_ArcRecord(
                        arc=arc, delta=delta, delay=delay,
                        candidate=candidate, through=through))
            stacked = np.stack(candidates)
            if mode == "max":
                # +inf candidates mean "this cause never fires" — they
                # must not masquerade as a late arrival.  If *every*
                # cause never fires, the node never switches (+inf).
                masked = np.where(np.isposinf(stacked), -math.inf,
                                  stacked)
                value = np.where(np.isposinf(stacked).all(axis=0),
                                 math.inf, masked.max(axis=0))
            else:
                value = stacked.min(axis=0)
            arrival[node] = value
            if keep_records:
                records[node] = node_records
    return arrival, records


# ----------------------------------------------------------------------
# result containers
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PathStep:
    """One arc traversal of a reported timing path.

    Parameters
    ----------
    arc : TimingArc
        The traversed arc.
    delta : float or tuple of float
        Sibling-input separation ``Δ`` the arc delay was conditioned
        on, seconds (0 for single-input arcs); Δ-vector arcs report
        the full tuple of sibling offsets relative to pin 0.
    delay : float
        The model delay ``δ(Δ)`` in seconds.
    arrival : float
        Path arrival time at the arc's target node, seconds.
    """

    arc: TimingArc
    delta: float | tuple[float, ...]
    delay: float
    arrival: float


@dataclasses.dataclass(frozen=True)
class TimingPath:
    """One ranked source-to-endpoint path.

    Parameters
    ----------
    endpoint : TimingNode
        The endpoint node the path terminates at.
    arrival : float
        Path arrival time at the endpoint, seconds.
    slack : float
        Signed slack of this path against the endpoint requirement
        (positive = met; see :class:`StaResult`), seconds; ``inf``
        when unconstrained.
    source : TimingNode
        The primary-input node the path starts at.
    steps : tuple of PathStep
        Arc traversals in source-to-endpoint order.
    """

    endpoint: TimingNode
    arrival: float
    slack: float
    source: TimingNode
    steps: tuple[PathStep, ...]

    def describe(self) -> str:
        """Multi-line human-readable rendering of the path."""
        from ..units import to_ps
        slack = ("unconstrained" if math.isinf(self.slack)
                 else f"slack {to_ps(self.slack):+.2f} ps")
        lines = [f"path to {self.endpoint}: arrival "
                 f"{to_ps(self.arrival):.2f} ps, {slack}",
                 f"  start {self.source}"]
        for step in self.steps:
            if not step.arc.is_mis:
                mis = ""
            elif isinstance(step.delta, tuple):
                rendered = ", ".join(f"{to_ps(v):+.2f}"
                                     for v in step.delta)
                mis = f", Δ = ({rendered}) ps"
            else:
                mis = f", Δ = {to_ps(step.delta):+.2f} ps"
            lines.append(
                f"  -> {step.arc.target}  via {step.arc.instance} "
                f"[{step.arc.model.name}]  δ = "
                f"{to_ps(step.delay):.2f} ps{mis}  @ "
                f"{to_ps(step.arrival):.2f} ps")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class StaResult:
    """Outcome of one static timing analysis.

    Parameters
    ----------
    graph : TimingGraph
        The analyzed graph.
    mode : str
        ``"max"`` (late/setup) or ``"min"`` (early) analysis.
    arrivals : dict of TimingNode to float
        Arrival time per node, seconds (``±inf`` per the
        never/long-ago conventions).
    required : dict of TimingNode to float
        Required arrival time per node (``+inf`` where
        unconstrained in ``max`` mode, ``-inf`` in ``min`` mode).
    slacks : dict of TimingNode to float
        Signed slack per node — positive always means the
        constraint is met (``required − arrival`` in ``max`` mode,
        ``arrival − required`` in ``min`` mode; ``inf`` where
        unconstrained).
    paths : tuple of TimingPath
        Ranked critical paths (worst first).
    """

    graph: TimingGraph
    mode: str
    arrivals: dict[TimingNode, float]
    required: dict[TimingNode, float]
    slacks: dict[TimingNode, float]
    paths: tuple[TimingPath, ...]

    def endpoint_nodes(self) -> list[TimingNode]:
        """Endpoint nodes with a finite arrival."""
        return [TimingNode(signal, transition)
                for signal in self.graph.endpoints
                for transition in ("rise", "fall")
                if math.isfinite(self.arrivals[
                    TimingNode(signal, transition)])]

    @property
    def worst_slack(self) -> float:
        """The smallest endpoint slack, seconds."""
        slacks = [self.slacks[node] for node in self.endpoint_nodes()]
        return min(slacks) if slacks else math.inf

    @property
    def critical_path(self) -> TimingPath | None:
        """The worst (first-ranked) path, or ``None`` if none exist."""
        return self.paths[0] if self.paths else None

    def to_dict(self) -> dict:
        """Plain-JSON representation (seconds throughout).

        Non-finite times (never / long-ago arrivals, unconstrained
        required times and slacks, SIS-edge ``±inf`` separations)
        serialize as ``null`` so the payload stays RFC-8259 valid
        for strict parsers.
        """
        def time(value):
            if isinstance(value, tuple):
                return [time(v) for v in value]
            return float(value) if math.isfinite(value) else None

        def times(mapping):
            return {str(node): time(value)
                    for node, value in sorted(mapping.items())}
        return {
            "mode": self.mode,
            "endpoints": list(self.graph.endpoints),
            "arrivals_s": times(self.arrivals),
            "required_s": times(self.required),
            "slacks_s": times(self.slacks),
            "worst_slack_s": time(self.worst_slack),
            "paths": [
                {
                    "endpoint": str(path.endpoint),
                    "source": str(path.source),
                    "arrival_s": time(path.arrival),
                    "slack_s": time(path.slack),
                    "steps": [
                        {
                            "instance": step.arc.instance,
                            "from": str(step.arc.source),
                            "to": str(step.arc.target),
                            "model": step.arc.model.name,
                            "delta_s": time(step.delta),
                            "delay_s": time(step.delay),
                            "arrival_s": time(step.arrival),
                        }
                        for step in path.steps
                    ],
                }
                for path in self.paths
            ],
        }


# ----------------------------------------------------------------------
# required times and paths
# ----------------------------------------------------------------------

def _required_times(graph: TimingGraph,
                    arrivals: dict[TimingNode, float],
                    records: dict[TimingNode, list[_ArcRecord]],
                    required, mode: str) -> dict[TimingNode, float]:
    """Back-propagate endpoint required times against the arcs.

    ``max`` mode is the setup view — the endpoint must arrive *no
    later than* the requirement, so required times tighten downward
    (``min``) on the way back.  ``min`` mode is the hold view — the
    endpoint must arrive *no earlier than* the requirement, so they
    tighten upward (``max``) and unconstrained nodes sit at ``-inf``.
    """
    unconstrained = math.inf if mode == "max" else -math.inf
    tighten = min if mode == "max" else max
    req: dict[TimingNode, float] = {node: unconstrained
                                    for node in arrivals}
    if required is None:
        constraint: dict[str, float] = {}
    elif isinstance(required, (int, float)):
        constraint = {signal: float(required)
                      for signal in graph.endpoints}
    else:
        unknown = set(required) - set(graph.endpoints)
        if unknown:
            raise ParameterError(
                f"required times given for non-endpoint signal(s): "
                f"{sorted(unknown)}; endpoints are "
                f"{list(graph.endpoints)}")
        constraint = {signal: float(value)
                      for signal, value in required.items()}
    for signal, value in constraint.items():
        for transition in ("rise", "fall"):
            req[TimingNode(signal, transition)] = value
    for signal in reversed(graph.signal_order):
        for transition in ("rise", "fall"):
            node = TimingNode(signal, transition)
            for record in records.get(node, []):
                through = float(record.through[0])
                if not math.isfinite(through):
                    continue
                source = record.arc.source
                req[source] = tighten(req[source],
                                      req[node] - through)
    return req


def _slack(arrival: float, required: float, mode: str) -> float:
    """Signed slack: positive always means the constraint is met.

    ``max`` mode: ``required − arrival`` (must be no later).
    ``min`` mode: ``arrival − required`` (must be no earlier).
    """
    if not (math.isfinite(required) and math.isfinite(arrival)):
        return math.inf
    return (required - arrival if mode == "max"
            else arrival - required)


def _extract_paths(graph: TimingGraph,
                   arrivals: dict[TimingNode, float],
                   records: dict[TimingNode, list[_ArcRecord]],
                   required: dict[TimingNode, float],
                   top: int, mode: str) -> tuple[TimingPath, ...]:
    """Best-first backward enumeration of the worst *top* paths.

    A partial path (backward from an endpoint) is scored with
    ``arrival(frontier) + Σ through`` — an exact bound on any
    completion, because ``arrival(target)`` is the max (min mode:
    min) of ``arrival(source) + through`` over incoming arcs — so
    complete paths pop off the heap in true criticality order.
    """
    sign = -1.0 if mode == "max" else 1.0
    counter = itertools.count()
    heap: list = []
    for signal in graph.endpoints:
        for transition in ("rise", "fall"):
            node = TimingNode(signal, transition)
            if math.isfinite(arrivals[node]):
                heapq.heappush(heap, (sign * arrivals[node],
                                      next(counter), node, (), 0.0))
    paths: list[TimingPath] = []
    expansions = 0
    while heap and len(paths) < top \
            and expansions < _MAX_PATH_EXPANSIONS:
        expansions += 1
        keyed, _tie, frontier, chain, suffix = heapq.heappop(heap)
        score = sign * keyed
        incoming = records.get(frontier)
        if not incoming:
            # Reached a primary input: the path is complete.  The
            # chain is stored endpoint-first; unwind it forward.
            endpoint = chain[0].arc.target if chain else frontier
            steps: list[PathStep] = []
            t = arrivals[frontier]
            for record in reversed(chain):
                t = t + float(record.through[0])
                steps.append(PathStep(
                    arc=record.arc,
                    delta=_record_delta(record),
                    delay=float(record.delay[0]),
                    arrival=t))
            slack = _slack(score, required[endpoint], mode)
            paths.append(TimingPath(endpoint=endpoint, arrival=score,
                                    slack=slack, source=frontier,
                                    steps=tuple(steps)))
            continue
        for record in incoming:
            through = float(record.through[0])
            source_arrival = arrivals[record.arc.source]
            if not (math.isfinite(through)
                    and math.isfinite(source_arrival)):
                continue
            new_suffix = suffix + through
            heapq.heappush(heap, (
                sign * (source_arrival + new_suffix),
                next(counter), record.arc.source,
                chain + (record,), new_suffix))
    return tuple(paths)


# ----------------------------------------------------------------------
# the public entry point
# ----------------------------------------------------------------------

def analyze(graph: TimingGraph, arrivals=None, required=None,
            mode: str = "max", top_paths: int = 3) -> StaResult:
    """Run a static timing analysis over a timing graph.

    Parameters
    ----------
    graph : TimingGraph
        Lowered circuit (:func:`repro.sta.graph.build_timing_graph`).
    arrivals : mapping, optional
        Input arrival spec — see :func:`input_arrival_nodes`.
    required : float or mapping, optional
        Required arrival time at the endpoints: one number for all,
        or ``{signal: time}``.  In ``max`` mode it is the *latest
        allowed* arrival (setup view); in ``min`` mode the *earliest
        allowed* (hold view).  ``None`` leaves slacks unconstrained
        (``inf``).
    mode : str, optional
        ``"max"`` (default) for latest arrivals — the setup/critical
        view; ``"min"`` for earliest arrivals.
    top_paths : int, optional
        Number of ranked critical paths to extract (default 3;
        0 skips extraction).

    Returns
    -------
    StaResult
        Arrivals, required times, slacks, and ranked paths.

    Raises
    ------
    SimulationError
        If the propagation produced a NaN arrival (malformed ±inf
        input-arrival combination).
    """
    node_arrivals = input_arrival_nodes(graph, arrivals)
    arrays = {node: np.asarray([value], dtype=float)
              for node, value in node_arrivals.items()}
    arrival_arrays, records = _propagate(graph, arrays, mode)
    arrival = {node: float(value[0])
               for node, value in arrival_arrays.items()}
    for node, value in arrival.items():
        if math.isnan(value):
            raise SimulationError(
                f"arrival at {node} is NaN — check the ±inf input "
                "arrival combination")
    req = _required_times(graph, arrival, records, required, mode)
    slacks = {node: _slack(arrival[node], req[node], mode)
              for node in arrival}
    paths = (_extract_paths(graph, arrival, records, req, top_paths,
                            mode)
             if top_paths > 0 else ())
    return StaResult(graph=graph, mode=mode, arrivals=arrival,
                     required=req, slacks=slacks, paths=paths)
