"""Vectorized corner sweeps: one batched pass, thousands of corners.

A *corner* is one point of a design-space grid: an electrical
parameter set for the MIS cells (process/voltage variants, Monte-Carlo
samples) together with an input-arrival scenario.  The scalar way to
sweep corners is to re-run :func:`repro.sta.analysis.analyze` per
corner — and every run pays the per-call overhead of its one-point
engine evaluations.

:func:`sweep_corners` instead propagates *arrays* of arrival times
through the timing graph: every node's arrival is a vector over the
corner axis, every MIS arc computes its Δ vector in one subtraction,
and each arc's delays are fetched with **one batched engine call per
distinct parameter set** (corners sharing parameters are evaluated
together).  A 1000-corner sweep of an N-gate circuit thus costs on
the order of ``N × distinct-parameter-sets`` engine calls instead of
``N × 1000`` — the speedup is recorded in ``BENCH_sta.json`` by
``benchmarks/bench_sta.py`` (acceptance: ≥ 10×).

:func:`sweep_corners_scalar` is the reference per-corner loop, kept
for parity tests and as the benchmark baseline.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..core.parameters import NorGateParameters
from ..errors import ParameterError
from .analysis import _propagate
from .graph import TimingGraph, TimingNode

__all__ = ["CornerSweepResult", "sweep_corners",
           "sweep_corners_scalar"]


def _resolve_corner_axes(graph: TimingGraph, params, arrivals):
    """Broadcast the params / arrival axes to one corner count.

    Returns ``(count, corner_params, node_arrays)`` where
    *corner_params* is ``None``, a list with one parameter set per
    corner, or — for per-instance variation — a dict of such lists
    keyed by instance name, and *node_arrays* maps every input node
    to a ``(count,)`` arrival array.
    """
    count: int | None = None

    def merge(n: int, what: str) -> None:
        nonlocal count
        if count is None or count == 1:
            count = n if count is None else max(count, n)
        elif n not in (1, count):
            raise ParameterError(
                f"{what} axis has {n} corners, but another axis has "
                f"{count}; axes must broadcast")

    def as_axis(spec, what: str) -> list:
        axis = [spec] if isinstance(spec, NorGateParameters) \
            else list(spec)
        if not axis:
            raise ParameterError(f"{what} axis must not be empty")
        merge(len(axis), what)
        return axis

    corner_params = None
    if isinstance(params, dict):
        instances = {inst.name for inst in graph.circuit.instances}
        unknown = set(params) - instances
        if unknown:
            raise ParameterError(
                f"per-instance params given for unknown instance(s): "
                f"{sorted(unknown)}; instances are "
                f"{sorted(instances)}")
        corner_params = {name: as_axis(spec, f"params[{name}]")
                         for name, spec in params.items()}
    elif params is not None:
        corner_params = as_axis(params, "params")

    arrivals = dict(arrivals or {})
    unknown = set(arrivals) - set(graph.inputs)
    if unknown:
        raise ParameterError(
            f"arrivals given for non-input signal(s): "
            f"{sorted(unknown)}; inputs are {list(graph.inputs)}")
    per_node: dict[TimingNode, np.ndarray] = {}
    for signal in graph.inputs:
        spec = arrivals.get(signal, 0.0)
        # Same rule as input_arrival_nodes: a *tuple* of two is a
        # (rise, fall) pair; any other sequence is a corner axis
        # shared by both transitions.
        if isinstance(spec, tuple):
            if len(spec) != 2:
                raise ParameterError(
                    f"arrival spec for {signal!r}: a tuple must be "
                    f"a (rise, fall) pair, got {len(spec)} entries")
            rise, fall = spec
        else:
            rise = fall = spec
        for transition, values in (("rise", rise), ("fall", fall)):
            array = np.atleast_1d(np.asarray(values, dtype=float))
            if array.ndim != 1:
                raise ParameterError(
                    f"arrival spec for {signal!r} must be scalar or "
                    "1-D over corners")
            if array.size > 1:
                merge(array.size, f"arrival[{signal}]")
            per_node[TimingNode(signal, transition)] = array

    count = count or 1
    node_arrays = {node: (np.broadcast_to(array, (count,)).astype(float)
                          if array.size == 1 else array)
                   for node, array in per_node.items()}
    for node, array in node_arrays.items():
        if array.shape != (count,):
            raise ParameterError(
                f"arrival axis for {node} has {array.shape[0]} "
                f"corners, expected {count}")
    if isinstance(corner_params, dict):
        corner_params = {name: (axis * count if len(axis) == 1
                                else axis)
                         for name, axis in corner_params.items()}
    elif corner_params is not None and len(corner_params) == 1:
        corner_params = corner_params * count
    return count, corner_params, node_arrays


@dataclasses.dataclass(frozen=True)
class CornerSweepResult:
    """Per-corner arrivals and slacks of one vectorized sweep.

    Parameters
    ----------
    graph : TimingGraph
        The swept graph.
    mode : str
        ``"max"`` or ``"min"`` analysis.
    corners : int
        Number of corners on the sweep axis.
    arrivals : dict of TimingNode to numpy.ndarray
        Arrival-time vector (seconds) per node, shape ``(corners,)``.
    required : float or None
        The scalar endpoint requirement the slacks are against
        (``None`` when unconstrained).
    """

    graph: TimingGraph
    mode: str
    corners: int
    arrivals: dict[TimingNode, np.ndarray]
    required: float | None = None

    def endpoint_arrivals(self) -> dict[TimingNode, np.ndarray]:
        """Arrival vectors of the endpoint nodes only."""
        return {TimingNode(signal, transition):
                self.arrivals[TimingNode(signal, transition)]
                for signal in self.graph.endpoints
                for transition in ("rise", "fall")}

    def worst_arrival(self) -> np.ndarray:
        """Per-corner worst finite endpoint arrival, seconds.

        "Worst" follows the analysis mode: the latest arrival in
        ``max`` mode, the earliest in ``min`` mode.  Corners where
        no endpoint transition occurs report NaN.
        """
        stacked = np.stack(list(self.endpoint_arrivals().values()))
        if self.mode == "max":
            masked = np.where(np.isfinite(stacked), stacked,
                              -math.inf)
            worst = masked.max(axis=0)
        else:
            masked = np.where(np.isfinite(stacked), stacked,
                              math.inf)
            worst = masked.min(axis=0)
        return np.where(np.isfinite(worst), worst, math.nan)

    def worst_slack(self) -> np.ndarray:
        """Per-corner worst endpoint slack (``inf`` unconstrained).

        Positive always means the requirement is met:
        ``required − arrival`` in ``max`` mode (latest allowed),
        ``arrival − required`` in ``min`` mode (earliest allowed).
        """
        if self.required is None:
            return np.full(self.corners, math.inf)
        if self.mode == "max":
            return self.required - self.worst_arrival()
        return self.worst_arrival() - self.required

    def summary(self) -> dict[str, float]:
        """Distribution statistics of the worst endpoint arrival.

        Returns
        -------
        dict of str to float
            ``min`` / ``mean`` / ``p95`` / ``max`` of the per-corner
            worst arrival, in seconds.
        """
        worst = self.worst_arrival()
        finite = worst[np.isfinite(worst)]
        if finite.size == 0:
            nan = math.nan
            return {"min": nan, "mean": nan, "p95": nan, "max": nan}
        return {
            "min": float(finite.min()),
            "mean": float(finite.mean()),
            "p95": float(np.percentile(finite, 95.0)),
            "max": float(finite.max()),
        }


def sweep_corners(graph: TimingGraph, params=None, arrivals=None,
                  mode: str = "max",
                  required: float | None = None) -> CornerSweepResult:
    """Evaluate the whole graph across a corner axis in one pass.

    Parameters
    ----------
    graph : TimingGraph
        Lowered circuit.  Re-targetable (engine-backed) arcs are
        re-evaluated per distinct parameter set; table/fixed arcs
        keep their characterized delays.
    params : NorGateParameters, sequence, or mapping, optional
        The parameter-corner axis: one set per corner (a single set
        broadcasts).  A mapping ``{instance name: axis}`` re-targets
        each listed instance with its *own* axis — independent
        per-instance process variation (unlisted instances keep
        their built-in parameters).  ``None`` keeps every arc on its
        built-in parameters.
    arrivals : mapping, optional
        Input-arrival scenarios: ``{signal: spec}`` where *spec* is
        a scalar, a ``(rise, fall)`` *tuple* (whose entries may
        themselves be scalars or corner arrays), or a non-tuple 1-D
        array over corners shared by both transitions (scalars
        broadcast) — tuples always mean the transition pair, exactly
        as in :func:`repro.sta.analysis.analyze`.
    mode : str, optional
        ``"max"`` (default) or ``"min"``.
    required : float, optional
        Endpoint requirement used by
        :meth:`CornerSweepResult.worst_slack`.

    Returns
    -------
    CornerSweepResult
        Per-corner arrival vectors for every node.

    Raises
    ------
    ParameterError
        If the corner axes do not broadcast to one length.
    """
    count, corner_params, node_arrays = _resolve_corner_axes(
        graph, params, arrivals)
    arrival_arrays, _records = _propagate(
        graph, node_arrays, mode, corner_params=corner_params,
        keep_records=False)
    return CornerSweepResult(graph=graph, mode=mode, corners=count,
                             arrivals=arrival_arrays,
                             required=required)


def sweep_corners_scalar(graph: TimingGraph, params=None,
                         arrivals=None, mode: str = "max",
                         required: float | None = None
                         ) -> CornerSweepResult:
    """Reference per-corner loop (one :func:`analyze` per corner).

    Same signature and result type as :func:`sweep_corners`; kept as
    the parity baseline and the benchmark's scalar contender.  Note
    that parameter corners require every re-targetable arc to be
    rebuilt per corner, which this loop emulates by passing the
    corner's parameter set through the arc models' ``params``
    override.
    """
    count, corner_params, node_arrays = _resolve_corner_axes(
        graph, params, arrivals)
    columns: dict[TimingNode, list[float]] = {}
    for corner in range(count):
        spec = {node: np.asarray([array[corner]])
                for node, array in node_arrays.items()}
        if isinstance(corner_params, dict):
            lane_params = {name: [axis[corner]]
                           for name, axis in corner_params.items()}
        elif corner_params is not None:
            lane_params = [corner_params[corner]]
        else:
            lane_params = None
        arrival_arrays, _records = _propagate(
            graph, spec, mode, corner_params=lane_params,
            keep_records=False)
        for node, value in arrival_arrays.items():
            columns.setdefault(node, []).append(float(value[0]))
    arrivals_out = {node: np.asarray(values)
                    for node, values in columns.items()}
    return CornerSweepResult(graph=graph, mode=mode, corners=count,
                             arrivals=arrivals_out,
                             required=required)
