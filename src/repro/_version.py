"""The single source of the package version.

Everything that needs a version string reads it from here:
``repro.__version__`` re-exports it, ``pyproject.toml`` resolves it
through ``[tool.setuptools.dynamic]``, and the CLI's ``--version``
flag / ``version`` subcommand render it.  Bump it in this file only.
"""

__version__ = "1.10.0"
