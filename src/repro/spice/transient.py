"""Adaptive transient analysis for the MNA system.

Integration methods: backward Euler (``'be'``) and the trapezoidal rule
(``'trap'``, default).  The step controller is a classic
predictor-based local-error scheme: the forward (explicit) prediction
``v_prev + h * vdot_prev`` is compared against the implicit solution;
the mismatch estimates the local curvature error and drives the next
step size.  Steps are snapped to source breakpoints so input edges are
never straddled, and the first step after a breakpoint falls back to
backward Euler, damping the derivative discontinuity (the standard
SPICE trick against trapezoidal ringing).

The returned :class:`TransientResult` carries the full waveform matrix
plus helpers used throughout the analysis layer (value interpolation,
threshold crossings).
"""

from __future__ import annotations

import bisect
import dataclasses
import math

import numpy as np

from ..errors import ConvergenceError, SimulationError
from .dc import dc_operating_point, newton_solve
from .mna import MnaSystem
from .netlist import Circuit

__all__ = ["TransientOptions", "TransientResult", "transient_analysis"]


@dataclasses.dataclass(frozen=True)
class TransientOptions:
    """Knobs of the transient integrator.

    Attributes:
        dt_initial: step used at t = 0 and right after breakpoints.
        dt_min: refusal threshold — below this the run aborts.
        dt_max: ceiling for idle stretches.
        reltol: target predictor error relative to the voltage scale.
        v_scale: the voltage scale (supply voltage is a good choice).
        method: ``'trap'`` or ``'be'``.
        store_every: keep every k-th accepted point (1 = all).
    """

    dt_initial: float = 0.05e-12
    dt_min: float = 1e-18
    dt_max: float = 50e-12
    reltol: float = 2e-4
    v_scale: float = 1.0
    method: str = "trap"
    store_every: int = 1

    def __post_init__(self) -> None:
        if self.method not in ("trap", "be"):
            raise SimulationError(f"unknown method {self.method!r}")
        if not (0 < self.dt_min <= self.dt_initial <= self.dt_max):
            raise SimulationError("need dt_min <= dt_initial <= dt_max")


@dataclasses.dataclass
class TransientResult:
    """Dense waveforms produced by :func:`transient_analysis`."""

    times: np.ndarray
    voltages: np.ndarray  # shape (num_points, n_nodes)
    node_index: dict[str, int]
    statistics: dict[str, float]

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of one node."""
        return self.voltages[:, self.node_index[node]]

    def value_at(self, node: str, t: float) -> float:
        """Linearly interpolated node voltage at time *t*."""
        return float(np.interp(t, self.times, self.voltage(node)))

    def crossings(self, node: str, threshold: float,
                  direction: int | None = None) -> list[float]:
        """Times where a node crosses *threshold* (interpolated).

        Args:
            direction: +1 rising only, -1 falling only, None both.
        """
        t = self.times
        v = self.voltage(node)
        above = v >= threshold
        flips = np.nonzero(above[1:] != above[:-1])[0]
        out: list[float] = []
        for i in flips:
            rising = not above[i]
            if direction == 1 and not rising:
                continue
            if direction == -1 and rising:
                continue
            dv = v[i + 1] - v[i]
            if dv == 0.0:  # pragma: no cover - flat flip impossible
                continue
            out.append(float(t[i] + (threshold - v[i]) / dv
                             * (t[i + 1] - t[i])))
        return out


def transient_analysis(circuit: Circuit, t_stop: float,
                       options: TransientOptions | None = None,
                       system: MnaSystem | None = None) -> TransientResult:
    """Run an adaptive transient simulation from the DC operating point.

    Args:
        circuit: the netlist to simulate.
        t_stop: end time, seconds.
        options: integrator options (defaults are tuned for the 15 nm
            workloads of this study).
        system: pre-compiled MNA system (avoids recompilation in sweeps).

    Returns:
        A :class:`TransientResult` with every accepted time point.
    """
    if options is None:
        options = TransientOptions()
    if system is None:
        system = MnaSystem(circuit)
    n = system.n

    x = dc_operating_point(system, t=0.0)
    vdot = np.zeros(n)

    breakpoints = system.breakpoints(t_stop)
    times = [0.0]
    solutions = [x[:n].copy()]

    t = 0.0
    dt = options.dt_initial
    force_be = False  # one BE step after each discontinuity
    tol = options.reltol * options.v_scale
    newton_failures = 0
    rejected = 0
    steps = 0

    while t < t_stop - 1e-24:
        # --- clip the step to the next breakpoint / end time ---------
        dt = min(dt, options.dt_max, t_stop - t)
        idx = bisect.bisect_right(breakpoints, t + 1e-24)
        hit_breakpoint = False
        if idx < len(breakpoints):
            gap = breakpoints[idx] - t
            if dt >= gap - 1e-24:
                dt = gap
                hit_breakpoint = True

        method = "be" if (force_be or options.method == "be") else "trap"
        t_new = t + dt
        v_prev = x[:n]

        def step_residual(x_new: np.ndarray, h=dt, tn=t_new, m=method):
            residual, jacobian = system.static_residual_jacobian(x_new, tn)
            if m == "be":
                residual[:n] += system.c @ ((x_new[:n] - v_prev) / h)
                jacobian[:n, :n] += system.c / h
            else:
                residual[:n] += system.c @ (
                    2.0 * (x_new[:n] - v_prev) / h - vdot)
                jacobian[:n, :n] += 2.0 * system.c / h
            return residual, jacobian

        try:
            x_new = newton_solve(step_residual, x, n)
        except ConvergenceError:
            newton_failures += 1
            dt *= 0.25
            if dt < options.dt_min:
                raise SimulationError(
                    f"transient stalled at t = {t:.3e} s (Newton)")
            force_be = True
            continue

        # --- local error estimate via the explicit predictor ---------
        v_new = x_new[:n]
        predicted = v_prev + vdot * dt
        error = float(np.max(np.abs(v_new - predicted)))
        if error > 10.0 * tol and dt > options.dt_min and \
                not hit_breakpoint and dt > 2.0 * options.dt_min:
            rejected += 1
            dt = max(options.dt_min, dt * 0.4)
            continue

        # --- accept ---------------------------------------------------
        if method == "be":
            vdot = (v_new - v_prev) / dt
        else:
            vdot = 2.0 * (v_new - v_prev) / dt - vdot
        x = x_new
        t = t_new
        steps += 1
        times.append(t)
        solutions.append(v_new.copy())

        if hit_breakpoint:
            dt = options.dt_initial
            force_be = True
        else:
            force_be = False
            if error > 0.0:
                factor = 0.85 * math.sqrt(tol / error)
                dt = dt * min(2.5, max(0.3, factor))
            else:
                dt = dt * 2.5

    result_times = np.array(times)
    result_voltages = np.array(solutions)
    if options.store_every > 1:
        keep = np.arange(0, len(times), options.store_every)
        if keep[-1] != len(times) - 1:
            keep = np.append(keep, len(times) - 1)
        result_times = result_times[keep]
        result_voltages = result_voltages[keep]

    return TransientResult(
        times=result_times,
        voltages=result_voltages,
        node_index=dict(system.node_index),
        statistics={
            "steps": float(steps),
            "rejected": float(rejected),
            "newton_failures": float(newton_failures),
        },
    )
