"""Analog golden-reference substrate: a small MNA transient simulator.

Replaces the paper's Spectre + Nangate FreePDK15 stack (see DESIGN.md
§2).  Public surface: netlist construction (:class:`Circuit` + device
classes), technology cards and cell builders, and the DC/transient
analyses.
"""

from .devices import Capacitor, Mosfet, MosfetModel, Resistor, VoltageSource
from .dc import dc_operating_point
from .measure import crossing_after, gate_delay, slew_time
from .mna import MnaSystem
from .netlist import Circuit
from .technology import (
    BULK65,
    FINFET15,
    TechnologyCard,
    build_inverter,
    build_inverter_chain,
    build_nand2,
    build_nor2,
)
from .transient import TransientOptions, TransientResult, transient_analysis
from .waveforms import Dc, EdgeTrain, Pwl, Waveform

__all__ = [
    "BULK65",
    "Capacitor",
    "Circuit",
    "Dc",
    "EdgeTrain",
    "FINFET15",
    "MnaSystem",
    "Mosfet",
    "MosfetModel",
    "Pwl",
    "Resistor",
    "TechnologyCard",
    "TransientOptions",
    "TransientResult",
    "VoltageSource",
    "Waveform",
    "build_inverter",
    "build_inverter_chain",
    "build_nand2",
    "build_nor2",
    "crossing_after",
    "dc_operating_point",
    "gate_delay",
    "slew_time",
    "transient_analysis",
]
