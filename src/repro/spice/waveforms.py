"""Time-domain source waveforms for the analog simulator.

A waveform is a callable ``f(t) -> volts`` that additionally reports its
*breakpoints* — instants where the waveform or one of its derivatives is
discontinuous.  The transient integrator snaps time steps to breakpoints
so that edges are never stepped over.

The paper drives the NOR gate with fixed-shape rising/falling input
waveforms ``f↑/↓(t − t_X)`` where ``t_X`` is the input threshold-crossing
time; :class:`EdgeTrain` reproduces this: it takes a list of digital
transitions (threshold-crossing times) and synthesizes raised-cosine (or
linear) edges centered on them.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["Waveform", "Dc", "Pwl", "EdgeTrain"]


class Waveform:
    """Base class of all source waveforms."""

    def __call__(self, t: float) -> float:
        raise NotImplementedError

    def breakpoints(self) -> list[float]:
        """Sorted instants of (derivative) discontinuities."""
        return []

    def sample(self, times) -> np.ndarray:
        """Vectorized evaluation (reference implementation: loop)."""
        return np.array([self(float(t)) for t in np.ravel(times)])


class Dc(Waveform):
    """A constant voltage."""

    def __init__(self, value: float):
        self.value = float(value)

    def __call__(self, t: float) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Dc({self.value!r})"


class Pwl(Waveform):
    """Piece-wise linear waveform through ``(time, value)`` points.

    Holds the first value before the first point and the last value after
    the last point, like SPICE's PWL source.
    """

    def __init__(self, points: Sequence[tuple[float, float]]):
        if not points:
            raise ParameterError("PWL needs at least one point")
        times = [float(p[0]) for p in points]
        values = [float(p[1]) for p in points]
        # NaN compares False against everything, so the monotonicity
        # check below would silently accept it — reject non-finite
        # entries explicitly before ordering.
        for index, (t, v) in enumerate(zip(times, values)):
            if not math.isfinite(t):
                raise ParameterError(
                    f"PWL point {index}: time must be finite, "
                    f"got {t}")
            if not math.isfinite(v):
                raise ParameterError(
                    f"PWL point {index}: value must be finite, "
                    f"got {v}")
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ParameterError("PWL times must be strictly increasing")
        self.times = times
        self.values = values

    def __call__(self, t: float) -> float:
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        i = bisect.bisect_right(times, t) - 1
        t0, t1 = times[i], times[i + 1]
        v0, v1 = values[i], values[i + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self) -> list[float]:
        return list(self.times)


class EdgeTrain(Waveform):
    """Digital transitions rendered as smooth analog edges.

    Args:
        transitions: ``(time, value)`` pairs with value in {0, 1}; *time*
            is the instant the edge crosses ``Vdd/2`` (the paper's
            ``t_A``/``t_B`` convention).  Times must be increasing and
            values alternating.
        vdd: logic-high voltage.
        edge_time: full 0-to-100 % transition time of one edge.
        initial: logic value before the first transition; inferred from
            the first transition if omitted.
        shape: ``'raised-cosine'`` (default, C¹-smooth) or ``'linear'``.

    Edges are symmetric around their crossing time.  Overlapping edges
    (separation below ``edge_time``) are evaluated by letting the newer
    edge take over from the older one's instantaneous value, which keeps
    the waveform continuous even for runt pulses.
    """

    def __init__(self, transitions: Sequence[tuple[float, int]],
                 vdd: float, edge_time: float,
                 initial: int | None = None,
                 shape: str = "raised-cosine"):
        if edge_time <= 0.0:
            raise ParameterError("edge_time must be positive")
        if shape not in ("raised-cosine", "linear"):
            raise ParameterError(f"unknown edge shape {shape!r}")
        times = [t for t, _ in transitions]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ParameterError("transition times must be increasing")
        self.transitions = [(float(t), int(v)) for t, v in transitions]
        self.vdd = float(vdd)
        self.edge_time = float(edge_time)
        self.shape = shape
        if initial is None:
            initial = 1 - self.transitions[0][1] if self.transitions else 0
        self.initial = int(initial)

    def _edge_fraction(self, phase: float) -> float:
        """Normalized edge profile: 0 at phase<=0, 1 at phase>=1."""
        if phase <= 0.0:
            return 0.0
        if phase >= 1.0:
            return 1.0
        if self.shape == "linear":
            return phase
        return 0.5 * (1.0 - math.cos(math.pi * phase))

    def __call__(self, t: float) -> float:
        value = float(self.initial) * self.vdd
        half = self.edge_time / 2.0
        for time, target in self.transitions:
            start = time - half
            if t <= start:
                break
            phase = (t - start) / self.edge_time
            frac = self._edge_fraction(phase)
            value = value + (target * self.vdd - value) * frac
        return value

    def breakpoints(self) -> list[float]:
        half = self.edge_time / 2.0
        points: list[float] = []
        for time, _ in self.transitions:
            points.extend((time - half, time, time + half))
        return sorted(points)
