"""DC operating point and the shared Newton–Raphson solver.

The Newton solver is used by both the DC analysis (capacitors open) and
every implicit transient step.  It applies per-iteration voltage step
limiting — the classic SPICE damping heuristic that keeps the square-law
MOSFET model from overshooting into absurd operating points — plus a
gmin-stepping fallback for stubborn operating points.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..errors import ConvergenceError
from .mna import MnaSystem

__all__ = ["newton_solve", "dc_operating_point"]

#: Largest allowed voltage change per Newton iteration, volts.
MAX_VOLTAGE_STEP = 0.5


def newton_solve(residual_jacobian: Callable[[np.ndarray],
                                             tuple[np.ndarray, np.ndarray]],
                 x0: np.ndarray,
                 n_voltage: int,
                 max_iterations: int = 60,
                 vtol: float = 1e-9,
                 itol: float = 1e-12) -> np.ndarray:
    """Damped Newton–Raphson for ``f(x) = 0``.

    Args:
        residual_jacobian: callable returning ``(f, J)`` at a point.
        x0: starting point (not modified).
        n_voltage: number of leading entries of ``x`` that are node
            voltages (step limiting applies only to those).
        max_iterations: iteration budget.
        vtol: convergence threshold on the voltage update, volts.
        itol: convergence threshold on the KCL residual, amperes.

    Returns:
        The converged solution vector.

    Raises:
        ConvergenceError: no convergence within the budget, or a
            singular Jacobian.
    """
    x = np.array(x0, dtype=float)
    last_update = np.inf
    for iteration in range(1, max_iterations + 1):
        residual, jacobian = residual_jacobian(x)
        try:
            delta = np.linalg.solve(jacobian, -residual)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError("singular Jacobian in Newton solve",
                                   iterations=iteration) from exc
        v_step = delta[:n_voltage]
        worst = float(np.max(np.abs(v_step))) if n_voltage else 0.0
        if worst > MAX_VOLTAGE_STEP:
            delta = delta * (MAX_VOLTAGE_STEP / worst)
            worst = MAX_VOLTAGE_STEP
        x = x + delta
        last_update = worst
        residual_norm = float(np.max(np.abs(residual[:n_voltage]))) \
            if n_voltage else float(np.max(np.abs(residual)))
        if worst < vtol and residual_norm < itol * max(
                1.0, float(np.max(np.abs(x[:n_voltage]))) if n_voltage
                else 1.0):
            return x
        if worst < vtol and iteration >= 2:
            # Voltage settled; accept even if tiny residual noise remains.
            return x
    raise ConvergenceError(
        f"Newton did not converge in {max_iterations} iterations "
        f"(last voltage update {last_update:.3e} V)",
        iterations=max_iterations, residual=last_update)


def dc_operating_point(system: MnaSystem, t: float = 0.0,
                       x0: np.ndarray | None = None) -> np.ndarray:
    """DC operating point (capacitors open) at source time *t*.

    Tries a plain Newton solve first, then falls back to gmin stepping:
    the solve is repeated with a large artificial conductance to ground
    that is reduced geometrically, re-using each solution as the next
    start point.
    """
    if x0 is None:
        x0 = np.zeros(system.size)

    def plain(x: np.ndarray):
        return system.static_residual_jacobian(x, t)

    try:
        return newton_solve(plain, x0, system.n)
    except ConvergenceError:
        pass

    x = np.array(x0, dtype=float)
    for gshunt in (1e-3, 1e-5, 1e-7, 1e-9, 1e-12, 0.0):
        def stepped(xx: np.ndarray, g=gshunt):
            residual, jacobian = system.static_residual_jacobian(xx, t)
            residual[:system.n] += g * xx[:system.n]
            jacobian[:system.n, :system.n] += g * np.eye(system.n)
            return residual, jacobian

        x = newton_solve(stepped, x, system.n, max_iterations=120)
    return x
