"""Circuit devices for the MNA analog simulator.

Devices fall into four stamp categories, mirroring how they enter the
modified-nodal-analysis equations:

* **linear conductances** (:class:`Resistor`) — stamped once into the
  constant conductance matrix ``G0``;
* **linear capacitances** (:class:`Capacitor`) — stamped once into the
  constant capacitance matrix ``C``;
* **voltage sources** (:class:`VoltageSource`) — one extra MNA branch row
  each, with a time-dependent right-hand side;
* **nonlinear elements** (:class:`Mosfet`) — re-evaluated each Newton
  iteration, contributing currents and Jacobian (``gm``, ``gds``)
  entries.

The MOSFET is the classic Shichman–Hodges (SPICE level 1) square-law
model with channel-length modulation and symmetric drain/source reversal.
Device capacitances (Cgs/Cgd/Cdb) are *not* part of the MOSFET device:
cell builders add them as explicit linear :class:`Capacitor` instances
(see :mod:`repro.spice.technology`), which keeps the dynamic part of the
system linear — exactly the structure the paper's hybrid model
approximates with its fixed C_N and C_O.
"""

from __future__ import annotations

import dataclasses
import math

from ..errors import ParameterError
from .waveforms import Dc, Waveform

__all__ = ["Device", "Resistor", "Capacitor", "VoltageSource",
           "MosfetModel", "Mosfet"]


class Device:
    """Base class: every device knows its terminal node names."""

    name: str

    @property
    def nodes(self) -> tuple[str, ...]:
        raise NotImplementedError


class Resistor(Device):
    """A linear resistor between two nodes."""

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 resistance: float):
        if resistance <= 0.0 or not math.isfinite(resistance):
            raise ParameterError(f"resistance must be positive, got "
                                 f"{resistance!r}")
        self.name = name
        self.node_pos = node_pos
        self.node_neg = node_neg
        self.resistance = float(resistance)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_pos, self.node_neg)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


class Capacitor(Device):
    """A linear capacitor between two nodes."""

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 capacitance: float):
        if capacitance < 0.0 or not math.isfinite(capacitance):
            raise ParameterError(f"capacitance must be non-negative, got "
                                 f"{capacitance!r}")
        self.name = name
        self.node_pos = node_pos
        self.node_neg = node_neg
        self.capacitance = float(capacitance)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_pos, self.node_neg)


class VoltageSource(Device):
    """An ideal voltage source (MNA branch element).

    ``waveform`` may be a float (treated as DC) or a
    :class:`~repro.spice.waveforms.Waveform`.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 waveform: Waveform | float):
        self.name = name
        self.node_pos = node_pos
        self.node_neg = node_neg
        if isinstance(waveform, (int, float)):
            waveform = Dc(float(waveform))
        self.waveform = waveform

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.node_pos, self.node_neg)

    def value(self, t: float) -> float:
        return self.waveform(t)


@dataclasses.dataclass(frozen=True)
class MosfetModel:
    """Square-law MOSFET model card.

    Attributes:
        polarity: ``'n'`` or ``'p'``.
        vt: threshold voltage magnitude, volts (positive for both types).
        k: transconductance factor ``µ Cox W/L``, A/V².
        lam: channel-length modulation, 1/V.
        cgs: gate-source capacitance, farads (used by cell builders).
        cgd: gate-drain (overlap/Miller) capacitance, farads.
        cdb: drain-bulk junction capacitance, farads.
    """

    polarity: str
    vt: float
    k: float
    lam: float = 0.0
    cgs: float = 0.0
    cgd: float = 0.0
    cdb: float = 0.0

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ParameterError("polarity must be 'n' or 'p'")
        if self.vt <= 0.0 or self.k <= 0.0:
            raise ParameterError("vt and k must be positive")
        if self.lam < 0.0 or min(self.cgs, self.cgd, self.cdb) < 0.0:
            raise ParameterError("lam and capacitances must be >= 0")

    def scaled(self, width_factor: float) -> "MosfetModel":
        """Return a copy with ``k`` and capacitances scaled by width."""
        if width_factor <= 0.0:
            raise ParameterError("width_factor must be positive")
        return dataclasses.replace(
            self,
            k=self.k * width_factor,
            cgs=self.cgs * width_factor,
            cgd=self.cgd * width_factor,
            cdb=self.cdb * width_factor,
        )


def _square_law(vgs: float, vds: float, vt: float, k: float,
                lam: float) -> tuple[float, float, float]:
    """Drain current and derivatives for ``vds >= 0`` (NMOS convention).

    Returns:
        ``(id, gm, gds)`` with ``gm = ∂id/∂vgs`` and ``gds = ∂id/∂vds``.
    """
    vov = vgs - vt
    if vov <= 0.0:
        return (0.0, 0.0, 0.0)
    clm = 1.0 + lam * vds
    if vds < vov:  # triode / linear region
        ids = k * (vov * vds - 0.5 * vds * vds) * clm
        gm = k * vds * clm
        gds = (k * (vov - vds) * clm
               + k * (vov * vds - 0.5 * vds * vds) * lam)
    else:  # saturation
        ids = 0.5 * k * vov * vov * clm
        gm = k * vov * clm
        gds = 0.5 * k * vov * vov * lam
    return (ids, gm, gds)


class Mosfet(Device):
    """A MOSFET instance (drain, gate, source terminals).

    The bulk is implicitly tied to the source rail; body effect is not
    modeled (the paper's RC abstraction has none either).  The device is
    symmetric: for reversed ``vds`` the terminal roles swap.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 model: MosfetModel, width_factor: float = 1.0):
        self.name = name
        self.drain = drain
        self.gate = gate
        self.source = source
        self.model = (model if width_factor == 1.0
                      else model.scaled(width_factor))

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.drain, self.gate, self.source)

    def evaluate(self, vd: float, vg: float,
                 vs: float) -> tuple[float, float, float, float]:
        """Current into the drain terminal and its derivatives.

        Returns:
            ``(id, d_id/d_vd, d_id/d_vg, d_id/d_vs)`` — the current
            flowing *into* the drain node (out of the source node).
        """
        model = self.model
        if model.polarity == "n":
            if vd >= vs:
                ids, gm, gds = _square_law(vg - vs, vd - vs,
                                           model.vt, model.k, model.lam)
                # id flows drain->source; derivative bookkeeping:
                return (ids, gds, gm, -gm - gds)
            ids, gm, gds = _square_law(vg - vd, vs - vd,
                                       model.vt, model.k, model.lam)
            # Roles swapped: current flows source->drain.
            return (-ids, gm + gds, -gm, -gds)
        # PMOS: mirror all voltages.
        if vd <= vs:
            ids, gm, gds = _square_law(vs - vg, vs - vd,
                                       model.vt, model.k, model.lam)
            # Current flows source->drain internally; into drain: -(-ids)
            return (-ids, gds, gm, -gm - gds)
        ids, gm, gds = _square_law(vd - vg, vd - vs,
                                   model.vt, model.k, model.lam)
        return (ids, gm + gds, -gm, -gds)
