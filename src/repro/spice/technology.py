"""Technology cards and standard-cell builders.

The paper's golden reference is a Spectre simulation of a NOR2 cell from
the Nangate 15 nm FreePDK15 FinFET library (VDD = 0.8 V), with parasitics
extracted from a placed-and-routed layout; a 65 nm bulk library
(VDD = 1.2 V) is used as a cross-check.  Neither library is public in a
form usable here, so this module defines *synthetic* technology cards
whose NOR2 reproduces the paper's delay landscape:

* SIS delays of a few tens of ps (15 nm card) with
  ``δ↑(∞) < δ↑(−∞)`` and ``δ↓(0) ≪ δ↓(±∞)``;
* the falling-output MIS *speed-up* from the parallel nMOS pair;
* the rising-output MIS *slow-down* peak near ``Δ = 0`` caused by
  input-to-N gate-overlap coupling (the effect the paper's ideal-switch
  model cannot capture);
* local falling-delay maxima at medium ``|Δ|`` from input-to-output
  coupling.

The structural sources of these effects (stack topology, internal node,
Miller caps) are modeled exactly; only absolute numbers are tuned, which
is all the reproduction needs (see DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses

from ..errors import ParameterError
from ..units import FF, PS
from .devices import MosfetModel
from .netlist import Circuit
from .waveforms import Waveform

__all__ = ["TechnologyCard", "FINFET15", "BULK65",
           "build_nor2", "build_nand2", "build_inverter",
           "build_inverter_chain"]


@dataclasses.dataclass(frozen=True)
class TechnologyCard:
    """Everything needed to instantiate cells of one technology.

    Attributes:
        name: card identifier.
        vdd: supply voltage, volts.
        nmos: NMOS model card (per unit-width device).
        pmos: PMOS model card (per unit-width device).
        input_edge_time: 0-to-100 % input transition time, seconds.
        cn_extra: extra wiring parasitic at the NOR's internal node N.
        output_load: default load capacitance at cell outputs, farads.
    """

    name: str
    vdd: float
    nmos: MosfetModel
    pmos: MosfetModel
    input_edge_time: float
    cn_extra: float
    output_load: float

    @property
    def vth(self) -> float:
        """Logic threshold ``VDD/2`` used for all digitization."""
        return self.vdd / 2.0


#: Synthetic 15 nm-class FinFET card (paper's primary technology).
#:
#: Calibrated against the paper's Fig. 2 landscape:
#: δ↓ ≈ 38.0 / 26.6 / 39.4 ps (paper ≈ 38 / 28 / 39.5, MIS speed-up
#: −30 % vs −28 %); δ↑ ≈ 56.3 / peak 59.5 / 53.7 ps with the correct
#: ordering δ↑(−∞) > δ↑(∞) and a slow-down peak near Δ = 0.
FINFET15 = TechnologyCard(
    name="finfet15",
    vdd=0.8,
    nmos=MosfetModel(polarity="n", vt=0.38, k=330e-6, lam=0.08,
                     cgs=0.045 * FF, cgd=0.030 * FF, cdb=0.050 * FF),
    pmos=MosfetModel(polarity="p", vt=0.37, k=365e-6, lam=0.08,
                     cgs=0.010 * FF, cgd=0.008 * FF, cdb=0.045 * FF),
    input_edge_time=60.0 * PS,
    cn_extra=0.025 * FF,
    output_load=1.50 * FF,
)

#: Synthetic 65 nm-class bulk card (paper's footnote-2 cross-check).
#: Same structure, ~4x slower, VDD = 1.2 V.
BULK65 = TechnologyCard(
    name="bulk65",
    vdd=1.2,
    nmos=MosfetModel(polarity="n", vt=0.55, k=300e-6, lam=0.06,
                     cgs=0.18 * FF, cgd=0.12 * FF, cdb=0.20 * FF),
    pmos=MosfetModel(polarity="p", vt=0.54, k=340e-6, lam=0.06,
                     cgs=0.04 * FF, cgd=0.032 * FF, cdb=0.18 * FF),
    input_edge_time=180.0 * PS,
    cn_extra=0.10 * FF,
    output_load=5.0 * FF,
)


def build_nor2(tech: TechnologyCard, wave_a: Waveform | float,
               wave_b: Waveform | float,
               output_load: float | None = None,
               name: str = "nor2") -> Circuit:
    """Transistor-level NOR2 driven by the given input waveforms.

    The topology matches the paper's Fig. 1: series pMOS ``T1`` (gate A,
    VDD side) and ``T2`` (gate B) with internal node ``n``; parallel
    nMOS ``T3`` (gate A) and ``T4`` (gate B); explicit parasitic
    capacitance at ``n`` and load at ``o``; gate-overlap (Miller) and
    junction capacitances per device.

    Nodes: ``vdd, a, b, n, o`` (+ ground).
    """
    if output_load is None:
        output_load = tech.output_load
    if output_load < 0.0:
        raise ParameterError("output_load must be non-negative")

    nmos, pmos = tech.nmos, tech.pmos
    circuit = Circuit(name)
    circuit.voltage_source("Vdd", "vdd", "0", tech.vdd)
    circuit.voltage_source("Va", "a", "0", wave_a)
    circuit.voltage_source("Vb", "b", "0", wave_b)

    circuit.mosfet("T1", drain="n", gate="a", source="vdd", model=pmos)
    circuit.mosfet("T2", drain="o", gate="b", source="n", model=pmos)
    circuit.mosfet("T3", drain="o", gate="a", source="0", model=nmos)
    circuit.mosfet("T4", drain="o", gate="b", source="0", model=nmos)

    # Gate-overlap coupling capacitances (the Charlie-effect carriers).
    circuit.capacitor("Cgd1", "a", "n", pmos.cgd)
    circuit.capacitor("Cgs2", "b", "n", pmos.cgs)
    circuit.capacitor("Cgd2", "b", "o", pmos.cgd)
    circuit.capacitor("Cgd3", "a", "o", nmos.cgd)
    circuit.capacitor("Cgd4", "b", "o", nmos.cgd)
    # Junction capacitances (to the respective bulk rails).
    circuit.capacitor("Cdb1", "n", "vdd", pmos.cdb)
    circuit.capacitor("Csb2", "n", "vdd", pmos.cdb)
    circuit.capacitor("Cdb2", "o", "vdd", pmos.cdb)
    circuit.capacitor("Cdb3", "o", "0", nmos.cdb)
    circuit.capacitor("Cdb4", "o", "0", nmos.cdb)
    # Wiring parasitics and output load.
    circuit.capacitor("Cn", "n", "0", tech.cn_extra)
    circuit.capacitor("Co", "o", "0", output_load)
    return circuit


def build_nand2(tech: TechnologyCard, wave_a: Waveform | float,
                wave_b: Waveform | float,
                output_load: float | None = None,
                name: str = "nand2") -> Circuit:
    """Transistor-level NAND2 — the NOR's CMOS mirror dual.

    Series nMOS stack with internal node ``m`` (gate A on the rail
    side, matching the NOR's T1 convention), parallel pMOS pair, and
    the mirrored set of coupling/junction capacitances.

    Nodes: ``vdd, a, b, m, o`` (+ ground).
    """
    if output_load is None:
        output_load = tech.output_load
    if output_load < 0.0:
        raise ParameterError("output_load must be non-negative")

    nmos, pmos = tech.nmos, tech.pmos
    circuit = Circuit(name)
    circuit.voltage_source("Vdd", "vdd", "0", tech.vdd)
    circuit.voltage_source("Va", "a", "0", wave_a)
    circuit.voltage_source("Vb", "b", "0", wave_b)

    circuit.mosfet("N1", drain="m", gate="a", source="0", model=nmos)
    circuit.mosfet("N2", drain="o", gate="b", source="m", model=nmos)
    circuit.mosfet("P3", drain="o", gate="a", source="vdd", model=pmos)
    circuit.mosfet("P4", drain="o", gate="b", source="vdd", model=pmos)

    circuit.capacitor("Cgd1", "a", "m", nmos.cgd)
    circuit.capacitor("Cgs2", "b", "m", nmos.cgs)
    circuit.capacitor("Cgd2", "b", "o", nmos.cgd)
    circuit.capacitor("Cgd3", "a", "o", pmos.cgd)
    circuit.capacitor("Cgd4", "b", "o", pmos.cgd)
    circuit.capacitor("Cdb1", "m", "0", nmos.cdb)
    circuit.capacitor("Csb2", "m", "0", nmos.cdb)
    circuit.capacitor("Cdb2", "o", "0", nmos.cdb)
    circuit.capacitor("Cdb3", "o", "vdd", pmos.cdb)
    circuit.capacitor("Cdb4", "o", "vdd", pmos.cdb)
    circuit.capacitor("Cm", "m", "0", tech.cn_extra)
    circuit.capacitor("Co", "o", "0", output_load)
    return circuit


def build_inverter(tech: TechnologyCard, wave_in: Waveform | float,
                   output_load: float | None = None,
                   name: str = "inverter") -> Circuit:
    """A CMOS inverter (used by examples and simulator tests).

    Nodes: ``vdd, a, o`` (+ ground).
    """
    if output_load is None:
        output_load = tech.output_load
    circuit = Circuit(name)
    circuit.voltage_source("Vdd", "vdd", "0", tech.vdd)
    circuit.voltage_source("Va", "a", "0", wave_in)
    circuit.mosfet("Mp", drain="o", gate="a", source="vdd",
                   model=tech.pmos)
    circuit.mosfet("Mn", drain="o", gate="a", source="0",
                   model=tech.nmos)
    circuit.capacitor("Cgdp", "a", "o", tech.pmos.cgd)
    circuit.capacitor("Cgdn", "a", "o", tech.nmos.cgd)
    circuit.capacitor("Cdbp", "o", "vdd", tech.pmos.cdb)
    circuit.capacitor("Cdbn", "o", "0", tech.nmos.cdb)
    circuit.capacitor("Co", "o", "0", output_load)
    return circuit


def build_inverter_chain(tech: TechnologyCard, wave_in: Waveform | float,
                         stages: int = 4,
                         output_load: float | None = None,
                         name: str = "inverter_chain") -> Circuit:
    """A chain of identical inverters (single-input benchmark circuit).

    Nodes: ``vdd, a, s1 .. s<stages>`` where ``s<stages>`` is the output.
    """
    if stages < 1:
        raise ParameterError("stages must be >= 1")
    if output_load is None:
        output_load = tech.output_load
    circuit = Circuit(name)
    circuit.voltage_source("Vdd", "vdd", "0", tech.vdd)
    circuit.voltage_source("Va", "a", "0", wave_in)
    node_in = "a"
    for i in range(1, stages + 1):
        node_out = f"s{i}"
        circuit.mosfet(f"Mp{i}", drain=node_out, gate=node_in,
                       source="vdd", model=tech.pmos)
        circuit.mosfet(f"Mn{i}", drain=node_out, gate=node_in,
                       source="0", model=tech.nmos)
        circuit.capacitor(f"Cgdp{i}", node_in, node_out, tech.pmos.cgd)
        circuit.capacitor(f"Cgdn{i}", node_in, node_out, tech.nmos.cgd)
        circuit.capacitor(f"Cdbp{i}", node_out, "vdd", tech.pmos.cdb)
        circuit.capacitor(f"Cdbn{i}", node_out, "0", tech.nmos.cdb)
        load = output_load if i == stages else 0.3 * FF
        circuit.capacitor(f"Cl{i}", node_out, "0", load)
        node_in = node_out
    return circuit
