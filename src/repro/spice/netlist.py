"""Circuit container for the analog simulator.

A :class:`Circuit` is a flat netlist: named nodes plus devices from
:mod:`repro.spice.devices`.  Node ``'0'`` (alias ``'gnd'``) is ground.
The circuit is *compiled* (node indices assigned, constant matrices
stamped) by :class:`repro.spice.mna.MnaSystem`.
"""

from __future__ import annotations

from collections import Counter

from ..errors import NetlistError
from .devices import (Capacitor, Device, Mosfet, Resistor, VoltageSource)
from .waveforms import Waveform

__all__ = ["GROUND_NAMES", "Circuit"]

GROUND_NAMES = ("0", "gnd", "GND")


class Circuit:
    """A named collection of devices.

    Example:
        >>> circuit = Circuit("divider")
        >>> circuit.voltage_source("Vin", "in", "0", 1.0)
        >>> circuit.resistor("R1", "in", "out", 1e3)
        >>> circuit.resistor("R2", "out", "0", 1e3)
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.devices: list[Device] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def add(self, device: Device) -> Device:
        """Add a pre-built device (unique name enforced)."""
        if device.name in self._names:
            raise NetlistError(f"duplicate device name {device.name!r}")
        self._names.add(device.name)
        self.devices.append(device)
        return device

    def resistor(self, name: str, node_pos: str, node_neg: str,
                 resistance: float) -> Resistor:
        """Add a resistor and return it."""
        return self.add(Resistor(name, node_pos, node_neg, resistance))

    def capacitor(self, name: str, node_pos: str, node_neg: str,
                  capacitance: float) -> Capacitor:
        """Add a capacitor and return it."""
        return self.add(Capacitor(name, node_pos, node_neg, capacitance))

    def voltage_source(self, name: str, node_pos: str, node_neg: str,
                       waveform: Waveform | float) -> VoltageSource:
        """Add an ideal voltage source and return it."""
        return self.add(VoltageSource(name, node_pos, node_neg, waveform))

    def mosfet(self, name: str, drain: str, gate: str, source: str,
               model, width_factor: float = 1.0) -> Mosfet:
        """Add a MOSFET and return it."""
        return self.add(Mosfet(name, drain, gate, source, model,
                               width_factor))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        """All non-ground node names in first-use order."""
        seen: list[str] = []
        for device in self.devices:
            for node in device.nodes:
                if node in GROUND_NAMES or node in seen:
                    continue
                seen.append(node)
        return seen

    def devices_of_type(self, kind: type) -> list[Device]:
        """All devices that are instances of *kind*."""
        return [d for d in self.devices if isinstance(d, kind)]

    def validate(self) -> None:
        """Check structural sanity of the netlist.

        Raises :class:`NetlistError` for a circuit without devices, a
        node that appears on only one device terminal (dangling), or a
        circuit with no ground reference.
        """
        if not self.devices:
            raise NetlistError(f"circuit {self.name!r} has no devices")
        grounded = any(node in GROUND_NAMES
                       for device in self.devices
                       for node in device.nodes)
        if not grounded:
            raise NetlistError(f"circuit {self.name!r} has no ground node")
        counts: Counter[str] = Counter()
        for device in self.devices:
            for node in set(device.nodes):
                counts[node] += 1
        dangling = [node for node, count in counts.items()
                    if count < 2 and node not in GROUND_NAMES]
        if dangling:
            raise NetlistError(
                f"dangling nodes in {self.name!r}: {sorted(dangling)}")

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, {len(self.devices)} devices, "
                f"{len(self.node_names)} nodes)")
