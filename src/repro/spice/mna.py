"""Modified nodal analysis (MNA) assembly.

Unknown vector ``x = [v_1 .. v_n, i_1 .. i_m]``: the ``n`` non-ground
node voltages followed by the ``m`` voltage-source branch currents.

The static KCL/branch residual is::

    f(x, t) = [ G0 v + I_mos(v) + A i ]   (node rows)
              [ Aᵀ v − V_src(t)       ]   (branch rows)

with ``G0`` the constant conductance matrix (resistors + gmin), ``A``
the source incidence matrix and ``I_mos`` the nonlinear MOSFET currents.
Linear capacitors live in the constant matrix ``C`` (node rows only);
the transient integrator adds the appropriate companion terms.

Everything is dense numpy — the circuits of this study have fewer than
ten nodes, where dense assembly beats any sparse machinery.
"""

from __future__ import annotations

import numpy as np

from ..errors import NetlistError
from .devices import Capacitor, Mosfet, Resistor, VoltageSource
from .netlist import GROUND_NAMES, Circuit

__all__ = ["MnaSystem"]

#: Conductance from every node to ground, for numerical robustness.
DEFAULT_GMIN = 1e-12


class MnaSystem:
    """Compiled MNA representation of a :class:`Circuit`.

    Attributes:
        circuit: the source netlist.
        node_index: mapping node name -> row index (ground absent).
        n: number of node unknowns.
        m: number of voltage-source branch unknowns.
        g0: constant conductance matrix, shape ``(n, n)``.
        c: constant capacitance matrix, shape ``(n, n)``.
    """

    def __init__(self, circuit: Circuit, gmin: float = DEFAULT_GMIN):
        circuit.validate()
        self.circuit = circuit
        self.gmin = float(gmin)

        names = circuit.node_names
        self.node_index: dict[str, int] = {name: i
                                           for i, name in enumerate(names)}
        self.n = len(names)
        self.sources: list[VoltageSource] = circuit.devices_of_type(
            VoltageSource)
        self.m = len(self.sources)
        self.size = self.n + self.m

        self.g0 = np.zeros((self.n, self.n))
        self.c = np.zeros((self.n, self.n))
        self._incidence = np.zeros((self.n, self.m))
        self._stamp_constants()

        self.mosfets: list[Mosfet] = circuit.devices_of_type(Mosfet)
        self._mosfet_nodes = [
            tuple(self._index_or_ground(node) for node in
                  (fet.drain, fet.gate, fet.source))
            for fet in self.mosfets
        ]

    # ------------------------------------------------------------------

    def _index_or_ground(self, node: str) -> int:
        """Node row index, or -1 for ground."""
        if node in GROUND_NAMES:
            return -1
        try:
            return self.node_index[node]
        except KeyError as exc:  # pragma: no cover - defensive
            raise NetlistError(f"unknown node {node!r}") from exc

    def _stamp_two_terminal(self, matrix: np.ndarray, i: int, j: int,
                            value: float) -> None:
        """Standard two-terminal stamp between node rows *i* and *j*."""
        if i >= 0:
            matrix[i, i] += value
        if j >= 0:
            matrix[j, j] += value
        if i >= 0 and j >= 0:
            matrix[i, j] -= value
            matrix[j, i] -= value

    def _stamp_constants(self) -> None:
        for device in self.circuit.devices:
            if isinstance(device, Resistor):
                i = self._index_or_ground(device.node_pos)
                j = self._index_or_ground(device.node_neg)
                self._stamp_two_terminal(self.g0, i, j, device.conductance)
            elif isinstance(device, Capacitor):
                i = self._index_or_ground(device.node_pos)
                j = self._index_or_ground(device.node_neg)
                self._stamp_two_terminal(self.c, i, j, device.capacitance)
        self.g0[np.diag_indices(self.n)] += self.gmin
        for k, source in enumerate(self.sources):
            i = self._index_or_ground(source.node_pos)
            j = self._index_or_ground(source.node_neg)
            if i >= 0:
                self._incidence[i, k] = 1.0
            if j >= 0:
                self._incidence[j, k] = -1.0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def source_values(self, t: float) -> np.ndarray:
        """Voltage source values at time *t*, shape ``(m,)``."""
        return np.array([src.value(t) for src in self.sources])

    def static_residual_jacobian(
            self, x: np.ndarray,
            t: float) -> tuple[np.ndarray, np.ndarray]:
        """Residual ``f(x, t)`` and Jacobian of the static system.

        Capacitor currents are *not* included; the integrator adds them.
        """
        v = x[:self.n]
        i_src = x[self.n:]

        residual = np.zeros(self.size)
        jacobian = np.zeros((self.size, self.size))

        residual[:self.n] = self.g0 @ v + self._incidence @ i_src
        jacobian[:self.n, :self.n] = self.g0
        jacobian[:self.n, self.n:] = self._incidence
        jacobian[self.n:, :self.n] = self._incidence.T
        residual[self.n:] = self._incidence.T @ v - self.source_values(t)

        for fet, (d, g, s) in zip(self.mosfets, self._mosfet_nodes):
            vd = v[d] if d >= 0 else 0.0
            vg = v[g] if g >= 0 else 0.0
            vs = v[s] if s >= 0 else 0.0
            ids, did_dvd, did_dvg, did_dvs = fet.evaluate(vd, vg, vs)
            if d >= 0:
                residual[d] += ids
                for col, deriv in ((d, did_dvd), (g, did_dvg),
                                   (s, did_dvs)):
                    if col >= 0:
                        jacobian[d, col] += deriv
            if s >= 0:
                residual[s] -= ids
                for col, deriv in ((d, did_dvd), (g, did_dvg),
                                   (s, did_dvs)):
                    if col >= 0:
                        jacobian[s, col] -= deriv
        return residual, jacobian

    def capacitor_current(self, dv_dt: np.ndarray) -> np.ndarray:
        """Capacitor node currents for a voltage slew ``dv/dt``."""
        return self.c @ dv_dt

    def breakpoints(self, t_stop: float) -> list[float]:
        """Merged, sorted source breakpoints within ``(0, t_stop)``."""
        points: set[float] = set()
        for source in self.sources:
            for point in source.waveform.breakpoints():
                if 0.0 < point < t_stop:
                    points.add(float(point))
        return sorted(points)

    def voltages(self, x: np.ndarray) -> dict[str, float]:
        """Node-name -> voltage mapping from a solution vector."""
        return {name: float(x[i]) for name, i in self.node_index.items()}
