"""Measurement helpers on transient waveforms.

Small, composable utilities that turn :class:`TransientResult` waveforms
into the quantities the paper reports: threshold-crossing times, gate
delays between an input and an output crossing, and slew times.
"""

from __future__ import annotations

from ..errors import SimulationError
from .transient import TransientResult

__all__ = ["crossing_after", "gate_delay", "slew_time"]


def crossing_after(result: TransientResult, node: str, threshold: float,
                   after: float, direction: int | None = None) -> float:
    """First crossing of *node* through *threshold* at time > *after*.

    Raises:
        SimulationError: if no such crossing exists in the waveform.
    """
    for t in result.crossings(node, threshold, direction):
        if t > after:
            return t
    raise SimulationError(
        f"node {node!r} never crosses {threshold} V after {after} s")


def gate_delay(result: TransientResult, node_in: str, node_out: str,
               threshold: float, edge_out: int,
               t_in: float | None = None,
               edge_in: int | None = None) -> float:
    """Delay from an input crossing to the next output crossing.

    Args:
        result: the simulated waveforms.
        node_in: input node name (ignored when *t_in* is given).
        node_out: output node name.
        threshold: measurement threshold (``VDD/2`` in the paper).
        edge_out: output edge direction, +1 rising / -1 falling.
        t_in: explicit input reference time; if ``None``, the first
            *edge_in* crossing of *node_in* is used.
        edge_in: input edge direction (defaults to the opposite of
            *edge_out*, the usual single-input case).

    Returns:
        ``t_out − t_in`` in seconds.
    """
    if t_in is None:
        if edge_in is None:
            edge_in = -edge_out
        t_in = crossing_after(result, node_in, threshold, 0.0, edge_in)
    t_out = crossing_after(result, node_out, threshold, t_in, edge_out)
    return t_out - t_in


def slew_time(result: TransientResult, node: str, v_low: float,
              v_high: float, after: float = 0.0,
              rising: bool = True) -> float:
    """Transition time between two voltage levels on one edge."""
    if v_low >= v_high:
        raise SimulationError("need v_low < v_high")
    if rising:
        t0 = crossing_after(result, node, v_low, after, +1)
        t1 = crossing_after(result, node, v_high, t0, +1)
    else:
        t0 = crossing_after(result, node, v_high, after, -1)
        t1 = crossing_after(result, node, v_low, t0, -1)
    return t1 - t0
